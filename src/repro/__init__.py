"""repro — layered quantum-circuit simulation stack for conf_sc_PatelST22.

Layering (each layer depends only on the ones above it)::

    repro.utils        exceptions, RNG plumbing, bitstring conventions
    repro.circuit      operation-instruction IR (Gate, Channel, Parameter,
                       Instruction, Circuit, Circuit.bind/stats) + dynamic
                       ops: Measure, Reset, Conditional (if_bit), clbits
    repro.gates        registry-backed standard gate library + unitary gates
    repro.noise        Kraus channel library, readout error, NoiseModel
    repro.transpile    pass-manager optimisation (fusion, cancellation)
    repro.plan         compiled ExecutionPlans: compile once, bind/run many,
                       batched sweeps, process-wide plan cache; dynamic ops
                       lower to MeasureOp/ResetOp/ConditionalOp
    repro.analysis     static analysis: circuit lint rules (analyze),
                       compiled-plan verification (verify_plan), transpile
                       certification (certify_rewrite -> Certificate), and
                       the runtime numerical sanitizer — wired into
                       execute() via RunOptions(validate=/certify=/sanitize=)
    repro.sim          backend registry: statevector + density-matrix +
                       Monte-Carlo trajectory + Pauli-transfer-matrix
                       engines executing plans through one shared
                       (sanitizer-instrumentable) loop
    repro.sampling     shot sampling -> Counts (any backend, readout noise)
    repro.observables  Pauli / PauliSum observables, (batched) expectations
    repro.execution    execute() front door: RunOptions, Job, Result/BatchResult
    repro.service      parallel worker pool (process sharding of shots,
                       sweeps, batches) + execute_async() bounded job queue
    repro.bench        benchmark workloads + JSON-reporting harness

The public API re-exported here is the supported surface; module internals
may move between PRs.
"""

from repro.analysis import (
    AnalysisContext,
    AnalysisReport,
    Diagnostic,
    analyze,
    verify_plan,
)
from repro.bench import run_suite
from repro.circuit import (
    Channel,
    Circuit,
    CircuitStats,
    Conditional,
    Gate,
    Instruction,
    Measure,
    Parameter,
    Reset,
)
from repro.execution import BatchResult, Job, Result, RunOptions, execute, submit
from repro.gates import (
    available_gates,
    gate_arity,
    get_gate,
    register_gate,
    unitary_gate,
)
from repro.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.observables import Pauli, PauliSum, expectation, expectation_batched
from repro.plan import (
    ExecutionPlan,
    clear_plan_cache,
    compile_plan,
    plan_cache_info,
    run_batched_sweep,
)
from repro.sampling import Counts, sample_counts, sample_memory
from repro.service import (
    ExecutionService,
    configure_default_service,
    execute_async,
)
from repro.sim import (
    Backend,
    BaseBackend,
    DensityMatrix,
    DensityMatrixBackend,
    PauliVector,
    PTMBackend,
    Statevector,
    StatevectorBackend,
    TrajectoryBackend,
    available_backends,
    get_backend,
    register_backend,
    run,
)

# NB: re-exporting the ``transpile`` *function* shadows the ``repro.transpile``
# submodule attribute on this package (``repro.transpile(circuit)`` works;
# ``import repro.transpile`` still works too, but attribute access on the
# package resolves to the function).  This mirrors qiskit's ``transpile``
# ergonomics and is deliberate — reach submodule internals via
# ``from repro.transpile import ...``.
from repro.transpile import (
    CancelInversePairs,
    DropIdentities,
    FuseAdjacentGates,
    Pass,
    PassManager,
    transpile,
)
from repro.utils import (
    AnalysisError,
    CertificationError,
    CircuitError,
    ExecutionError,
    ExecutionQueueFullError,
    ExecutionTimeoutError,
    NoiseModelError,
    ParallelExecutionError,
    ReproError,
    SanitizerError,
    SimulationError,
    TranspilerError,
    all_bitstrings,
    bitstring_to_index,
    derive_seed,
    ensure_rng,
    flip_bit,
    hamming_weight,
    index_to_bitstring,
    iter_bitstrings,
    spawn_rngs,
    spawn_seeds,
)

__version__ = "0.8.0"

__all__ = [
    "__version__",
    # circuit IR
    "Channel",
    "Circuit",
    "CircuitStats",
    "Conditional",
    "Gate",
    "Instruction",
    "Measure",
    "Parameter",
    "Reset",
    # gate library
    "available_gates",
    "gate_arity",
    "get_gate",
    "register_gate",
    "unitary_gate",
    # noise
    "NoiseModel",
    "ReadoutError",
    "amplitude_damping",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "phase_damping",
    "phase_flip",
    # transpilation
    "CancelInversePairs",
    "DropIdentities",
    "FuseAdjacentGates",
    "Pass",
    "PassManager",
    "transpile",
    # simulation
    "Backend",
    "BaseBackend",
    "DensityMatrix",
    "DensityMatrixBackend",
    "PTMBackend",
    "PauliVector",
    "Statevector",
    "StatevectorBackend",
    "TrajectoryBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "run",
    # sampling
    "Counts",
    "sample_counts",
    "sample_memory",
    # observables
    "Pauli",
    "PauliSum",
    "expectation",
    "expectation_batched",
    # compiled plans
    "ExecutionPlan",
    "clear_plan_cache",
    "compile_plan",
    "plan_cache_info",
    "run_batched_sweep",
    # static analysis
    "AnalysisContext",
    "AnalysisReport",
    "Diagnostic",
    "analyze",
    "verify_plan",
    # execution
    "BatchResult",
    "Job",
    "Result",
    "RunOptions",
    "execute",
    "submit",
    # parallel / async service
    "ExecutionService",
    "configure_default_service",
    "execute_async",
    # benchmarks
    "run_suite",
    # utils: exceptions
    "ReproError",
    "AnalysisError",
    "CertificationError",
    "SanitizerError",
    "CircuitError",
    "TranspilerError",
    "SimulationError",
    "NoiseModelError",
    "ExecutionError",
    "ExecutionQueueFullError",
    "ExecutionTimeoutError",
    "ParallelExecutionError",
    # utils: bitstrings
    "all_bitstrings",
    "bitstring_to_index",
    "flip_bit",
    "hamming_weight",
    "index_to_bitstring",
    "iter_bitstrings",
    # utils: rng
    "derive_seed",
    "ensure_rng",
    "spawn_rngs",
    "spawn_seeds",
]
