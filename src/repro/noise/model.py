"""The :class:`NoiseModel`: attach channels to gates without editing circuits.

A noise model is the declarative alternative to appending
:class:`~repro.circuit.Channel` instructions by hand: rules of the form
"after every ``cx``, depolarize both qubits" are matched against each gate
instruction at simulation time by the density-matrix backend, plus an
optional classical :class:`~repro.noise.readout.ReadoutError` applied by
the sampling layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit import Channel, Instruction
from repro.noise.readout import ReadoutError
from repro.utils.exceptions import NoiseModelError


class _Rule:
    """One (channel, gate-name filter, qubit filter) attachment."""

    __slots__ = ("channel", "gates", "qubits")

    def __init__(
        self,
        channel: Channel,
        gates: "Optional[frozenset[str]]",
        qubits: "Optional[frozenset[int]]",
    ) -> None:
        self.channel = channel
        self.gates = gates
        self.qubits = qubits


class NoiseModel:
    """An ordered set of channel-attachment rules plus optional readout error.

    Rules fire *after* the gate they match, in the order they were added.
    A one-qubit channel matched to a multi-qubit gate is applied
    independently to each of the gate's qubits; a ``k``-qubit channel only
    fires on ``k``-qubit gates (on the gate's qubit tuple).  Channel
    instructions already present in a circuit never accumulate extra noise.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name
        self._rules: List[_Rule] = []
        self._readout: Optional[ReadoutError] = None

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def readout_error(self) -> Optional[ReadoutError]:
        return self._readout

    @property
    def has_gate_noise(self) -> bool:
        """Whether any channel rule is registered (readout error aside)."""
        return bool(self._rules)

    def add_channel(
        self,
        channel: Channel,
        gates: Optional[Sequence[str]] = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> "NoiseModel":
        """Attach ``channel`` after matching gates; returns ``self`` to chain.

        Parameters
        ----------
        channel:
            The :class:`Channel` to apply.
        gates:
            Gate names the rule fires on; ``None`` matches every gate the
            channel's arity fits.
        qubits:
            For one-qubit channels, restrict application to these qubit
            indices; for wider channels, the rule fires only when the
            gate's qubits are all in this set.  ``None`` matches all.
        """
        if not isinstance(channel, Channel):
            raise NoiseModelError(
                f"expected a Channel, got {type(channel).__name__}"
            )
        gate_filter = None
        if gates is not None:
            gate_filter = frozenset(str(g).lower() for g in gates)
            if not gate_filter:
                raise NoiseModelError("gates filter must not be empty")
        qubit_filter = None
        if qubits is not None:
            qubit_filter = frozenset(int(q) for q in qubits)
            if not qubit_filter or any(q < 0 for q in qubit_filter):
                raise NoiseModelError(
                    f"qubits filter must be non-empty and non-negative, got {qubits}"
                )
        self._rules.append(_Rule(channel, gate_filter, qubit_filter))
        return self

    def set_readout_error(self, error: ReadoutError) -> "NoiseModel":
        """Set the classical readout error; returns ``self`` to chain."""
        if not isinstance(error, ReadoutError):
            raise NoiseModelError(
                f"expected a ReadoutError, got {type(error).__name__}"
            )
        self._readout = error
        return self

    def channels_for(
        self, instruction: Instruction
    ) -> List[Tuple[Channel, Tuple[int, ...]]]:
        """The ``(channel, qubits)`` applications fired by ``instruction``.

        Returns an empty list for channel instructions (noise is not
        noised) and for gates no rule matches.
        """
        if instruction.is_channel:
            return []
        out: List[Tuple[Channel, Tuple[int, ...]]] = []
        name = instruction.operation.name
        for rule in self._rules:
            if rule.gates is not None and name not in rule.gates:
                continue
            if rule.channel.num_qubits == 1:
                for q in instruction.qubits:
                    if rule.qubits is None or q in rule.qubits:
                        out.append((rule.channel, (q,)))
            elif rule.channel.num_qubits == len(instruction.qubits):
                if rule.qubits is None or set(instruction.qubits) <= rule.qubits:
                    out.append((rule.channel, instruction.qubits))
            # Arity mismatch (e.g. a 2-qubit channel on a 1-qubit gate):
            # the rule simply does not fit this instruction.
        return out

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        readout = ", readout" if self._readout is not None else ""
        return f"NoiseModel({len(self._rules)} rule(s){readout}{label})"
