"""Standard Kraus channels: the noise-library counterpart of ``repro.gates``.

Each builder returns an immutable :class:`~repro.circuit.Channel` whose
Kraus set is trace-preserving by construction (and re-validated by the
``Channel`` constructor, so a typo in a coefficient fails at build time,
not as probability leaking out of a long simulation).

Probability conventions follow Nielsen & Chuang: ``p`` is the total error
probability of the channel, ``gamma``/``lam`` the damping strengths.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

from repro.circuit import Channel
from repro.utils.exceptions import NoiseModelError

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_PAULIS = (_I, _X, _Y, _Z)


def _check_probability(name: str, value: float, upper: float = 1.0) -> float:
    value = float(value)
    if not 0.0 <= value <= upper:
        raise NoiseModelError(
            f"{name} must lie in [0, {upper:g}], got {value}"
        )
    return value


def _pauli_string(indices: Sequence[int]) -> np.ndarray:
    matrix = _PAULIS[indices[0]]
    for i in indices[1:]:
        matrix = np.kron(matrix, _PAULIS[i])
    return matrix


def depolarizing(p: float, num_qubits: int = 1) -> Channel:
    """The ``num_qubits``-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` the state is replaced by the maximally mixed
    state: Kraus operators are ``sqrt(1 - p*(d**2-1)/d**2) I`` plus
    ``sqrt(p/d**2) P`` for every non-identity Pauli string ``P``
    (``d = 2**num_qubits``).
    """
    p = _check_probability("depolarizing probability", p)
    if num_qubits < 1:
        raise NoiseModelError(f"channel needs >= 1 qubit, got {num_qubits}")
    if p == 0.0:
        return Channel(
            "depolarizing", num_qubits, [np.eye(1 << num_qubits)], params=(p,)
        )
    dim_sq = 4**num_qubits
    kraus = [np.sqrt(1.0 - p * (dim_sq - 1) / dim_sq) * np.eye(1 << num_qubits)]
    coeff = np.sqrt(p / dim_sq)
    for indices in product(range(4), repeat=num_qubits):
        if any(indices):  # skip the all-identity string (already in kraus[0])
            kraus.append(coeff * _pauli_string(indices))
    return Channel("depolarizing", num_qubits, kraus, params=(p,))


def bit_flip(p: float) -> Channel:
    """Flip the qubit (apply X) with probability ``p``."""
    p = _check_probability("bit-flip probability", p)
    return Channel(
        "bit_flip", 1, [np.sqrt(1.0 - p) * _I, np.sqrt(p) * _X], params=(p,)
    )


def phase_flip(p: float) -> Channel:
    """Flip the phase (apply Z) with probability ``p``."""
    p = _check_probability("phase-flip probability", p)
    return Channel(
        "phase_flip", 1, [np.sqrt(1.0 - p) * _I, np.sqrt(p) * _Z], params=(p,)
    )


def bit_phase_flip(p: float) -> Channel:
    """Apply Y (bit and phase flip together) with probability ``p``."""
    p = _check_probability("bit-phase-flip probability", p)
    return Channel(
        "bit_phase_flip", 1, [np.sqrt(1.0 - p) * _I, np.sqrt(p) * _Y], params=(p,)
    )


def amplitude_damping(gamma: float) -> Channel:
    """Energy relaxation (T1 decay): ``|1>`` decays to ``|0>`` with
    probability ``gamma``."""
    gamma = _check_probability("damping strength gamma", gamma)
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return Channel("amplitude_damping", 1, [k0, k1], params=(gamma,))


def phase_damping(lam: float) -> Channel:
    """Pure dephasing (T2 decay) with probability ``lam``: off-diagonal
    coherences shrink, populations are untouched."""
    lam = _check_probability("dephasing strength lambda", lam)
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, np.sqrt(lam)]], dtype=complex)
    return Channel("phase_damping", 1, [k0, k1], params=(lam,))
