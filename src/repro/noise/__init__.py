"""Noise layer: standard Kraus channels, readout error, and noise models.

Quantum noise is expressed as :class:`~repro.circuit.Channel` objects —
CPTP maps in Kraus form, validated trace-preserving — built by the channel
library here (:func:`depolarizing`, :func:`amplitude_damping`, ...).
Channels reach a simulation either embedded in the circuit
(``Circuit.channel``) or declaratively through a :class:`NoiseModel`
consumed by the density-matrix backend; classical :class:`ReadoutError`
corrupts sampled probabilities in ``repro.sampling``.
"""

from repro.noise.channels import (
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError

__all__ = [
    "NoiseModel",
    "ReadoutError",
    "amplitude_damping",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "phase_damping",
    "phase_flip",
]
