"""Classical readout (measurement-assignment) error.

Readout error is not a quantum channel: it corrupts the *classical* record
after the Born-rule measurement, so it composes with any backend and is
applied by the sampling layer to the probability vector, never to the
simulated state.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import NoiseModelError


class ReadoutError:
    """Independent per-qubit misassignment of measurement outcomes.

    Parameters
    ----------
    p1_given_0:
        Probability of recording ``1`` when the true outcome is ``0``.
    p0_given_1:
        Probability of recording ``0`` when the true outcome is ``1``.
    """

    __slots__ = ("_p1_given_0", "_p0_given_1", "_confusion")

    def __init__(self, p1_given_0: float, p0_given_1: float) -> None:
        for label, value in (
            ("p1_given_0", p1_given_0),
            ("p0_given_1", p0_given_1),
        ):
            if not 0.0 <= float(value) <= 1.0:
                raise NoiseModelError(
                    f"{label} must lie in [0, 1], got {value}"
                )
        self._p1_given_0 = float(p1_given_0)
        self._p0_given_1 = float(p0_given_1)
        # Column-stochastic confusion matrix: column = true bit, row =
        # observed bit, so observed = confusion @ true per qubit axis.
        confusion = np.array(
            [
                [1.0 - self._p1_given_0, self._p0_given_1],
                [self._p1_given_0, 1.0 - self._p0_given_1],
            ]
        )
        confusion.setflags(write=False)
        self._confusion = confusion

    def __setstate__(self, state: tuple) -> None:
        # Default __slots__ pickling restores attributes but loses the
        # confusion matrix's read-only flag (numpy arrays unpickle
        # writeable); re-freeze to keep the immutability contract.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        self._confusion.setflags(write=False)

    @property
    def p1_given_0(self) -> float:
        return self._p1_given_0

    @property
    def p0_given_1(self) -> float:
        return self._p0_given_1

    @property
    def confusion_matrix(self) -> np.ndarray:
        """The (read-only) 2x2 column-stochastic confusion matrix."""
        return self._confusion

    def apply(self, probs: np.ndarray, num_qubits: int) -> np.ndarray:
        """Corrupt a length-``2**num_qubits`` probability vector.

        The confusion matrix is contracted onto every qubit axis of the
        ``(2,) * n`` probability tensor — the classical analogue of the
        simulator's gate contraction; no ``2**n x 2**n`` stochastic matrix
        is ever built.
        """
        probs = np.asarray(probs, dtype=np.float64)
        if probs.size != 1 << num_qubits:
            raise NoiseModelError(
                f"probability vector of length {probs.size} does not match "
                f"{num_qubits} qubit(s)"
            )
        tensor = probs.reshape((2,) * num_qubits)
        for axis in range(num_qubits):
            tensor = np.moveaxis(
                np.tensordot(self._confusion, tensor, axes=(1, axis)), 0, axis
            )
        return tensor.reshape(-1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadoutError):
            return NotImplemented
        return (
            self._p1_given_0 == other._p1_given_0
            and self._p0_given_1 == other._p0_given_1
        )

    def __repr__(self) -> str:
        return (
            f"ReadoutError(p1_given_0={self._p1_given_0:g}, "
            f"p0_given_1={self._p0_given_1:g})"
        )
