"""Cheap instruction-stream cleanups: identity drops and inverse-pair cancels."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuit import Circuit, Gate, Instruction
from repro.transpile.base import Pass
from repro.utils.exceptions import TranspilerError


class DropIdentities(Pass):
    """Remove gates whose matrix is the identity within tolerance.

    Catches zero-angle rotations (``rz(0)``, ``rx(0)``...), explicit
    ``id`` gates, and user unitaries that happen to be trivial.  By
    default only exact (phase-free) identities are dropped so the pass
    preserves the statevector bit-for-bit; ``up_to_global_phase=True``
    additionally drops ``e^{i\\phi} I`` gates (e.g. ``rz(2*pi) = -I``),
    which changes the state only by an unobservable global phase.
    """

    def __init__(self, atol: float = 1e-9, up_to_global_phase: bool = False) -> None:
        if atol < 0:
            raise TranspilerError(f"atol must be non-negative, got {atol}")
        self.atol = float(atol)
        self.up_to_global_phase = bool(up_to_global_phase)

    def _is_droppable(self, matrix: np.ndarray) -> bool:
        # rtol=0: np.allclose's default relative tolerance (1e-5) would
        # silently dominate a tight atol and drop measurably non-trivial
        # gates; the advertised tolerance must be absolute and exact.
        dim = matrix.shape[0]
        eye = np.eye(dim)
        if np.allclose(matrix, eye, rtol=0.0, atol=self.atol):
            return True
        if self.up_to_global_phase:
            phase = matrix[0, 0]
            return abs(abs(phase) - 1.0) <= self.atol and np.allclose(
                matrix, phase * eye, rtol=0.0, atol=self.atol
            )
        return False

    def run(self, circuit: Circuit) -> Circuit:
        out = Circuit(circuit.num_qubits, circuit.name, num_clbits=circuit.num_clbits)
        out._clbits_pinned = circuit.clbits_pinned
        for instruction in circuit:
            # Channels are never identities (they are irreversible maps);
            # parametric gates have no matrix to test until bound; dynamic
            # ops (measure/reset/if_bit) are irreversible or classically
            # controlled.  Keep all of them verbatim.
            if (
                instruction.is_channel
                or instruction.is_parametric
                or instruction.is_dynamic
                or not self._is_droppable(instruction.gate.matrix)
            ):
                out.append(instruction.operation, instruction.qubits)
        return out


class CancelInversePairs(Pass):
    """Cancel adjacent gate pairs that compose to the identity.

    "Adjacent" is causal, not positional: a gate cancels against the most
    recent surviving gate touching any of its qubits, provided that gate
    sits on exactly the same qubit tuple — anything emitted in between is
    then supported on disjoint qubits and commutes past the pair.  The
    registry's inverse rules (``s``/``sdg``, ``rx(t)``/``rx(-t)``...)
    give a fast name-level match; pairs the registry does not know fall
    back to a numeric ``U2 @ U1 == I`` check, so ``h·h`` and ``cx·cx``
    cancel too.  Cancellations cascade (``h h h h`` vanishes entirely).
    """

    def __init__(self, atol: float = 1e-9) -> None:
        if atol < 0:
            raise TranspilerError(f"atol must be non-negative, got {atol}")
        self.atol = float(atol)

    def _are_inverse(self, first: Gate, second: Gate) -> bool:
        """True when ``second`` applied after ``first`` is the identity."""
        if first.num_qubits != second.num_qubits:
            return False
        from repro.gates.registry import resolve_inverse

        candidate = resolve_inverse(first.name, first.params)
        if candidate is not None and candidate == second:
            return True
        dim = first.matrix.shape[0]
        # rtol=0 as in DropIdentities: the tolerance is absolute.
        return bool(
            np.allclose(
                second.matrix @ first.matrix, np.eye(dim), rtol=0.0, atol=self.atol
            )
        )

    def run(self, circuit: Circuit) -> Circuit:
        kept: List[Instruction] = []
        for instruction in circuit:
            blocker: Optional[int] = None
            qubits = set(instruction.qubits)
            for i in range(len(kept) - 1, -1, -1):
                if qubits & set(kept[i].qubits):
                    blocker = i
                    break
            if (
                blocker is not None
                and kept[blocker].qubits == instruction.qubits
                # Channels neither cancel nor are cancelled: a channel is
                # not the inverse of anything, and a channel blocker pins
                # the gates behind it (no commuting past irreversible maps).
                # Parametric gates likewise: without a matrix there is no
                # inverse test, so they block like channels.  Dynamic ops
                # (measure/reset/if_bit) are barriers for the same reason
                # channels are: collapse is irreversible and a classical
                # branch only resolves at execution time.
                and not instruction.is_channel
                and not kept[blocker].is_channel
                and not instruction.is_parametric
                and not kept[blocker].is_parametric
                and not instruction.is_dynamic
                and not kept[blocker].is_dynamic
                and self._are_inverse(kept[blocker].gate, instruction.gate)
            ):
                kept.pop(blocker)
            else:
                kept.append(instruction)
        out = Circuit(circuit.num_qubits, circuit.name, num_clbits=circuit.num_clbits)
        out._clbits_pinned = circuit.clbits_pinned
        for instruction in kept:
            out.append(instruction.operation, instruction.qubits)
        return out
