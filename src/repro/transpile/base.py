"""Pass-manager core: the :class:`Pass` contract and pipeline driver.

Passes are pure rewrites: they consume a :class:`~repro.circuit.Circuit`
and return a new one over the same register width, never mutating their
input.  The :class:`PassManager` enforces that contract between stages so
a buggy pass fails loudly at its own boundary instead of corrupting the
circuit for every pass downstream.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.circuit import Circuit
from repro.utils.exceptions import TranspilerError

if TYPE_CHECKING:
    from repro.analysis.certify import Certificate


class Pass(abc.ABC):
    """A single circuit-rewrite stage.

    Subclasses implement :meth:`run`; configuration (tolerances, width
    caps) lives on the instance so one configured pass can be reused
    across many circuits.
    """

    @property
    def name(self) -> str:
        """Human-readable pass name (defaults to the class name)."""
        return type(self).__name__

    @abc.abstractmethod
    def run(self, circuit: Circuit) -> Circuit:
        """Return the rewritten circuit; must not mutate ``circuit``."""

    def __call__(self, circuit: Circuit) -> Circuit:
        return self.run(circuit)

    def __repr__(self) -> str:
        return f"{self.name}()"


class PassStats:
    """Before/after snapshot of one pass application.

    When the run was certified, :attr:`certificate` carries the
    :class:`~repro.analysis.Certificate` proving this pass's rewrite
    equivalent (``None`` on uncertified runs).
    """

    __slots__ = (
        "pass_name",
        "gates_before",
        "gates_after",
        "depth_before",
        "depth_after",
        "certificate",
    )

    def __init__(
        self,
        pass_name: str,
        gates_before: int,
        gates_after: int,
        depth_before: int,
        depth_after: int,
        certificate: Optional["Certificate"] = None,
    ) -> None:
        self.pass_name = pass_name
        self.gates_before = gates_before
        self.gates_after = gates_after
        self.depth_before = depth_before
        self.depth_after = depth_after
        self.certificate = certificate

    def as_dict(self) -> dict:
        certificate: Optional[dict] = None
        if self.certificate is not None:
            certificate = self.certificate.as_dict()
        return {
            "pass": self.pass_name,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "depth_before": self.depth_before,
            "depth_after": self.depth_after,
            "certificate": certificate,
        }

    def __repr__(self) -> str:
        return (
            f"PassStats({self.pass_name}: gates {self.gates_before}->"
            f"{self.gates_after}, depth {self.depth_before}->{self.depth_after})"
        )


class PassManager:
    """An ordered pipeline of :class:`Pass` stages.

    ``run`` applies each pass in order, validating that every stage hands
    back a :class:`Circuit` of unchanged register width.  Statistics for
    the most recent :meth:`run` are kept on :attr:`last_stats` so callers
    (e.g. the bench harness) can report per-pass gate/depth deltas without
    re-measuring.

    With ``certify=True`` (set here or per :meth:`run`), every pass
    application is proven semantically equivalent by
    :func:`repro.analysis.certify_rewrite` before the pipeline moves on;
    the per-pass :class:`~repro.analysis.Certificate` lands on
    ``last_stats[i].certificate`` and an unprovable rewrite raises
    :class:`~repro.utils.exceptions.CertificationError` at the failing
    pass's own boundary.
    """

    def __init__(self, passes: Iterable[Pass] = (), *, certify: bool = False) -> None:
        self._passes: List[Pass] = []
        self._last_stats: Tuple[PassStats, ...] = ()
        self.certify = bool(certify)
        for p in passes:
            self.append(p)

    @property
    def passes(self) -> Tuple[Pass, ...]:
        return tuple(self._passes)

    @property
    def last_stats(self) -> Tuple[PassStats, ...]:
        """Per-pass statistics from the most recent :meth:`run`."""
        return self._last_stats

    def last_stats_dicts(self) -> Tuple[dict, ...]:
        """The most recent run's statistics as JSON-serialisable dicts.

        The plan layer stores this on every compiled
        :class:`~repro.plan.ExecutionPlan` (``plan.pass_stats``) so a
        plan can report how the circuit it lowered was rewritten without
        the caller keeping the :class:`PassManager` alive.
        """
        return tuple(stats.as_dict() for stats in self._last_stats)

    def append(self, pass_: Pass) -> "PassManager":
        if not isinstance(pass_, Pass):
            raise TranspilerError(
                f"PassManager accepts Pass instances, got {type(pass_).__name__}"
            )
        self._passes.append(pass_)
        return self

    def run(self, circuit: Circuit, certify: Optional[bool] = None) -> Circuit:
        """Run every pass in order and return the final circuit.

        ``certify`` overrides the manager's default for this run only;
        ``None`` keeps :attr:`certify`.
        """
        if not isinstance(circuit, Circuit):
            raise TranspilerError(
                f"expected a Circuit, got {type(circuit).__name__}"
            )
        do_certify = self.certify if certify is None else bool(certify)
        if do_certify:
            # Lazy upward import (whitelisted in tools/check_layers.py):
            # certification is opt-in, so uncertified transpiles never
            # touch the analysis layer.
            from repro.analysis.certify import certify_rewrite
        stats: List[PassStats] = []
        current = circuit
        for pass_ in self._passes:
            gates_before, depth_before = len(current), current.depth()
            result = pass_.run(current)
            if not isinstance(result, Circuit):
                raise TranspilerError(
                    f"pass {pass_.name} returned {type(result).__name__}, "
                    "expected a Circuit"
                )
            if result.num_qubits != current.num_qubits:
                raise TranspilerError(
                    f"pass {pass_.name} changed register width "
                    f"{current.num_qubits} -> {result.num_qubits}"
                )
            certificate = None
            if do_certify:
                certificate = certify_rewrite(
                    current, result, pass_.name
                ).raise_if_failed()
            stats.append(
                PassStats(
                    pass_.name,
                    gates_before,
                    len(result),
                    depth_before,
                    result.depth(),
                    certificate,
                )
            )
            current = result
        self._last_stats = tuple(stats)
        return current

    def __len__(self) -> int:
        return len(self._passes)

    def __repr__(self) -> str:
        inner = ", ".join(p.name for p in self._passes)
        return f"PassManager([{inner}])"


def default_passes(max_fused_width: int = 2) -> Tuple[Pass, ...]:
    """The default optimisation pipeline, cheapest rewrites first.

    Identity drops and inverse-pair cancellation shrink the instruction
    stream before fusion pays the (matrix-product) cost of merging what
    remains into explicit ``unitary`` instructions of width at most
    ``max_fused_width``.
    """
    from repro.transpile.cleanup import CancelInversePairs, DropIdentities
    from repro.transpile.fusion import FuseAdjacentGates

    return (
        DropIdentities(),
        CancelInversePairs(),
        FuseAdjacentGates(max_width=max_fused_width),
    )


def transpile(
    circuit: Circuit,
    passes: Union[None, PassManager, Sequence[Pass]] = None,
    max_fused_width: int = 2,
    pass_manager_out: Optional[List[PassManager]] = None,
    lower: Optional[Callable[[Circuit], Any]] = None,
    certify: bool = False,
) -> Any:
    """Optimise ``circuit`` through a pass pipeline.

    Parameters
    ----------
    circuit:
        The circuit to rewrite; never mutated.
    passes:
        ``None`` for the default pipeline (see :func:`default_passes`), a
        sequence of :class:`Pass` instances, or a prebuilt
        :class:`PassManager`.
    max_fused_width:
        Width cap for :class:`~repro.transpile.FuseAdjacentGates` when the
        default pipeline is used; ignored if ``passes`` is given.
    pass_manager_out:
        Optional list; when provided, the :class:`PassManager` actually
        used is appended so callers can inspect ``last_stats``.
    lower:
        Optional lowering hook: a callable applied to the optimised
        circuit, whose return value replaces the circuit as this
        function's result.  ``repro.plan.compile_plan`` routes its
        circuit-to-:class:`~repro.plan.ExecutionPlan` lowering through
        this hook so "transpile then lower" is a single pipeline stage.
    certify:
        Prove every pass application semantically equivalent (see
        :meth:`PassManager.run`); per-pass certificates land on the
        manager's ``last_stats`` and an unprovable rewrite raises
        :class:`~repro.utils.exceptions.CertificationError`.
    """
    if isinstance(passes, PassManager):
        manager = passes
    elif passes is None:
        manager = PassManager(default_passes(max_fused_width))
    else:
        manager = PassManager(passes)
    if pass_manager_out is not None:
        pass_manager_out.append(manager)
    result = manager.run(circuit, certify=certify or None)
    if lower is not None:
        return lower(result)
    return result
