"""Gate fusion: merge runs of adjacent gates into explicit unitaries.

The payoff is in the simulator's cost model: applying a ``k``-qubit gate
to an ``n``-qubit statevector costs O(2**n * 2**k), so collapsing ``m``
small adjacent gates into one fused unitary replaces ``m`` sweeps over
the 2**n amplitude array with a single sweep — the matrix products that
build the fused gate happen in the tiny ``2**k``-dimensional gate space,
off the hot path entirely.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuit import Circuit, Instruction
from repro.transpile.base import Pass
from repro.utils.exceptions import TranspilerError


def embed_matrix(
    matrix: np.ndarray, positions: Sequence[int], width: int
) -> np.ndarray:
    """Embed a ``k``-qubit gate matrix into a ``width``-qubit operator.

    ``positions[i]`` is the index-bit slot (0 = most significant, matching
    the library convention) that gate qubit ``i`` occupies in the widened
    operator; all other slots act as identity.
    """
    k = len(positions)
    if width < k:
        raise TranspilerError(f"cannot embed {k} qubits into width {width}")
    if sorted(positions) != sorted(set(positions)) or any(
        p < 0 or p >= width for p in positions
    ):
        raise TranspilerError(
            f"invalid embedding positions {tuple(positions)} for width {width}"
        )
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (1 << k, 1 << k):
        raise TranspilerError(
            f"matrix shape {matrix.shape} does not match {k} embedding position(s)"
        )
    if k == width and tuple(positions) == tuple(range(width)):
        return matrix
    # Treat the identity on the widened space as a (2,)*(2*width) tensor
    # (output axes first) and contract the gate onto the output axes at
    # ``positions`` — the same contraction the simulator uses on states.
    full = np.eye(1 << width, dtype=complex).reshape((2,) * (2 * width))
    gate = matrix.reshape((2,) * (2 * k))
    full = np.tensordot(gate, full, axes=(tuple(range(k, 2 * k)), tuple(positions)))
    full = np.moveaxis(full, tuple(range(k)), tuple(positions))
    return full.reshape(1 << width, 1 << width)


class _FusionGroup:
    """Accumulator for one run of overlapping instructions."""

    __slots__ = ("qubits", "matrix", "members")

    def __init__(self, instruction: Instruction) -> None:
        self.qubits: List[int] = list(instruction.qubits)
        self.matrix: np.ndarray = np.asarray(instruction.gate.matrix, dtype=complex)
        self.members: List[Instruction] = [instruction]

    def union_with(self, instruction: Instruction) -> List[int]:
        return self.qubits + [q for q in instruction.qubits if q not in self.qubits]

    def absorb(self, instruction: Instruction, union: List[int]) -> None:
        if len(union) > len(self.qubits):
            # Existing qubits keep their slots (a prefix of ``union``), so
            # widening is a plain kron with identity on the new low bits.
            grow = len(union) - len(self.qubits)
            self.matrix = np.kron(self.matrix, np.eye(1 << grow, dtype=complex))
            self.qubits = union
        positions = [self.qubits.index(q) for q in instruction.qubits]
        incoming = embed_matrix(instruction.gate.matrix, positions, len(self.qubits))
        # ``instruction`` runs after the accumulated run: left-multiply.
        self.matrix = incoming @ self.matrix
        self.members.append(instruction)


class FuseAdjacentGates(Pass):
    """Greedily merge program-order runs of overlapping gates.

    Walking the instruction list once, each instruction joins the current
    fusion group when it shares at least one qubit with it and the merged
    support stays within ``max_width`` qubits; otherwise the group is
    flushed and a new one starts.  Groups that captured two or more gates
    are emitted as a single explicit-matrix ``unitary`` instruction over
    the group's qubits (first-touch order); singleton groups pass through
    unchanged so un-fusable circuits come back structurally identical.

    ``max_width`` trades fused-matrix cost (``4**max_width`` entries)
    against amplitude-array sweeps saved; 2 is a good default for the
    tensordot backend.
    """

    def __init__(self, max_width: int = 2) -> None:
        if max_width < 1:
            raise TranspilerError(f"max_width must be >= 1, got {max_width}")
        self.max_width = int(max_width)

    def run(self, circuit: Circuit) -> Circuit:
        from repro.gates import unitary_gate

        out = Circuit(circuit.num_qubits, circuit.name, num_clbits=circuit.num_clbits)
        out._clbits_pinned = circuit.clbits_pinned
        group: Optional[_FusionGroup] = None

        def flush() -> None:
            nonlocal group
            if group is None:
                return
            if len(group.members) == 1:
                instruction = group.members[0]
                out.append(instruction.gate, instruction.qubits)
            else:
                out.append(
                    unitary_gate(group.matrix, validate=False), tuple(group.qubits)
                )
            group = None

        for instruction in circuit:
            # Channels are fusion barriers: a Kraus map has no single
            # matrix to fold into a unitary product, and reordering noise
            # relative to gates changes the simulated distribution.
            # Parametric gates are barriers too — there is no matrix to
            # fold until the parameters are bound — and so are dynamic ops
            # (no unitary may commute across a collapse or a classical
            # branch).
            if (
                instruction.is_channel
                or instruction.is_parametric
                or instruction.is_dynamic
                or len(instruction.qubits) > self.max_width
            ):
                flush()
                out.append(instruction.operation, instruction.qubits)
                continue
            if group is None:
                group = _FusionGroup(instruction)
                continue
            union = group.union_with(instruction)
            overlaps = len(union) < len(group.qubits) + len(instruction.qubits)
            if overlaps and len(union) <= self.max_width:
                group.absorb(instruction, union)
            else:
                flush()
                group = _FusionGroup(instruction)
        flush()
        return out

    def __repr__(self) -> str:
        return f"FuseAdjacentGates(max_width={self.max_width})"
