"""Circuit optimisation: a pass-manager pipeline over the circuit IR.

A :class:`Pass` is a pure ``Circuit -> Circuit`` rewrite; a
:class:`PassManager` chains passes and records per-pass statistics;
:func:`transpile` is the convenience front door running the default
pipeline (drop identities, cancel inverse pairs, fuse adjacent gates).

The layer depends only on ``repro.circuit``/``repro.gates`` — simulators
opt in via ``RunOptions(optimize=True)``, which routes
through :func:`transpile` without the transpiler ever importing a backend.
"""

from repro.transpile.base import Pass, PassManager, PassStats, transpile, default_passes
from repro.transpile.cleanup import CancelInversePairs, DropIdentities
from repro.transpile.fusion import FuseAdjacentGates, embed_matrix

__all__ = [
    "CancelInversePairs",
    "DropIdentities",
    "FuseAdjacentGates",
    "Pass",
    "PassManager",
    "PassStats",
    "default_passes",
    "embed_matrix",
    "transpile",
]
