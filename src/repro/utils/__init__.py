"""Shared utilities: error types, RNG handling, bitstring helpers."""

from repro.utils.exceptions import (
    AnalysisError,
    CertificationError,
    CircuitError,
    ExecutionError,
    ExecutionQueueFullError,
    ExecutionTimeoutError,
    NoiseModelError,
    ParallelExecutionError,
    ReproError,
    SanitizerError,
    SimulationError,
    TranspilerError,
)
from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs, spawn_seeds
from repro.utils.bitstrings import (
    bitstring_to_index,
    flip_bit,
    hamming_weight,
    index_to_bitstring,
    iter_bitstrings,
    all_bitstrings,
)

__all__ = [
    "ReproError",
    "AnalysisError",
    "CertificationError",
    "SanitizerError",
    "CircuitError",
    "TranspilerError",
    "SimulationError",
    "NoiseModelError",
    "ExecutionError",
    "ExecutionQueueFullError",
    "ExecutionTimeoutError",
    "ParallelExecutionError",
    "derive_seed",
    "ensure_rng",
    "spawn_rngs",
    "spawn_seeds",
    "index_to_bitstring",
    "bitstring_to_index",
    "hamming_weight",
    "all_bitstrings",
    "iter_bitstrings",
    "flip_bit",
]
