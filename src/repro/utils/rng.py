"""Deterministic random-number-generator plumbing.

All stochastic components of the library (shot sampling, random circuit
generation, benchmark workloads) accept either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  ``ensure_rng`` normalises
these into a ``Generator``.  ``spawn_rngs``/``spawn_seeds`` derive
independent child streams so that work farmed out to worker processes stays
reproducible regardless of scheduling order.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {seed!r}")


def spawn_seeds(seed: SeedLike, count: int) -> Sequence[int]:
    """Derive ``count`` statistically independent integer seeds from ``seed``.

    Children are spawned through :class:`numpy.random.SeedSequence`, so the
    same ``(seed, count)`` always yields the same list and distinct children
    never collide.  Integer seeds (rather than Generators) are returned
    because they are cheap to pickle across process boundaries.  Note that
    passing a ``Generator`` consumes one draw from its stream to derive the
    child entropy; ``count == 0`` short-circuits and consumes nothing.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        # Short-circuit before touching the seed: deriving entropy from a
        # Generator below would consume a draw and mutate the caller's
        # stream for what is a no-op.
        return []
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a stable entropy value from the generator stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    children = seq.spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` independent Generators from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


def derive_seed(seed: Optional[int], *components: int) -> Optional[int]:
    """Mix integer ``components`` into ``seed`` to obtain a stable derived seed.

    The components become the :class:`~numpy.random.SeedSequence` spawn key,
    so the mapping is pure: the same ``(seed, *components)`` always returns
    the same derived seed, different component tuples give independent
    streams, and no global state is consumed.  Used to give each
    ``(experiment, repetition)`` pair its own stream without the caller
    having to pre-spawn every seed.  Returns ``None`` if ``seed`` is ``None``
    (i.e. non-deterministic mode propagates).
    """
    if seed is None:
        return None
    seq = np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(c) for c in components))
    return int(seq.generate_state(1, dtype=np.uint64)[0])
