"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library errors without masking programming errors (``TypeError`` etc.).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class TranspilerError(ReproError):
    """Raised when a transpilation pass cannot produce a valid circuit."""


class SimulationError(ReproError):
    """Raised when a simulator is asked to do something unsupported."""


class NoiseModelError(ReproError):
    """Raised for inconsistent noise-model or calibration specifications."""


class AnalysisError(ReproError):
    """Raised by the static-analysis layer (:mod:`repro.analysis`).

    Covers invalid rule registrations, malformed analyzer inputs, and —
    under ``RunOptions.validate="strict"`` — circuits or compiled plans
    that carry error-severity diagnostics.  The offending diagnostics
    ride along on :attr:`diagnostics` so callers can render them without
    re-parsing the message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class CertificationError(AnalysisError):
    """Raised when ``transpile(certify=True)`` cannot prove a pass correct.

    Carries the failing pass's :class:`~repro.analysis.Certificate` on
    :attr:`certificate` (``None`` when the failure predates certificate
    construction) and the error diagnostics on ``diagnostics``, so
    callers can report exactly which rewrite site broke equivalence.
    """

    def __init__(
        self, message: str, diagnostics: tuple = (), certificate: object = None
    ) -> None:
        super().__init__(message, diagnostics)
        self.certificate = certificate


class SanitizerError(AnalysisError):
    """Raised by the runtime sanitizer under ``sanitize="strict"``.

    Fired from inside the shared ``execute_plan`` loop the moment a
    numerical invariant breaks — NaN/Inf amplitudes, norm/trace drift,
    dtype promotion, or a final probability distribution that does not
    sum to one.  The triggering diagnostics ride on ``diagnostics``.
    """


class ExecutionError(ReproError):
    """Raised by the execution/observables layer for invalid requests.

    Covers malformed :class:`~repro.execution.RunOptions`, inconsistent
    ``execute()`` batches or parameter sweeps, and ill-formed
    :class:`~repro.observables.Pauli` observables.
    """


class ExecutionQueueFullError(ExecutionError):
    """Raised when the async job queue is at capacity (backpressure).

    ``execute_async`` refuses new jobs instead of buffering without bound;
    callers should retry later, raise their own 429, or widen the queue
    via :func:`repro.service.configure_default_service`.
    """


class ExecutionTimeoutError(ExecutionError):
    """Raised by ``Job.result(timeout=...)`` when the job does not finish
    within the timeout.  The job keeps running; a later ``result()`` call
    can still collect it."""


class ParallelExecutionError(ExecutionError):
    """Raised when the worker pool cannot run a job: unpicklable payloads
    (plans, options, noise models crossing the process boundary) or a
    broken/terminated worker process."""
