"""Bitstring <-> basis-state-index conventions.

Convention used throughout the library:

* A computational-basis state of an ``n``-qubit register is written as a
  string of ``n`` characters, character ``i`` (left to right) being the value
  of **qubit i**, e.g. ``"011"`` means qubit 0 = 0, qubit 1 = 1, qubit 2 = 1.
* The corresponding statevector index treats qubit 0 as the most significant
  bit: ``index = sum_q bit_q << (n - 1 - q)``.  Equivalently a statevector of
  length ``2**n`` reshaped to ``(2,) * n`` has axis ``q`` indexing qubit ``q``.
"""

from __future__ import annotations

from typing import Iterator, List


def index_to_bitstring(index: int, num_qubits: int) -> str:
    """Convert a basis-state index to its bitstring (qubit 0 leftmost)."""
    if index < 0 or index >= (1 << num_qubits):
        raise ValueError(f"index {index} out of range for {num_qubits} qubits")
    return format(index, f"0{num_qubits}b")


def bitstring_to_index(bitstring: str) -> int:
    """Convert a bitstring (qubit 0 leftmost) to its basis-state index."""
    if not bitstring or any(c not in "01" for c in bitstring):
        raise ValueError(f"invalid bitstring {bitstring!r}")
    return int(bitstring, 2)


def hamming_weight(bitstring: str) -> int:
    """Number of '1' characters in ``bitstring``."""
    return bitstring.count("1")


def all_bitstrings(num_qubits: int) -> List[str]:
    """All ``2**num_qubits`` bitstrings in index order."""
    return [index_to_bitstring(i, num_qubits) for i in range(1 << num_qubits)]


def iter_bitstrings(num_qubits: int) -> Iterator[str]:
    """Iterate bitstrings in index order without materialising the list."""
    for i in range(1 << num_qubits):
        yield index_to_bitstring(i, num_qubits)


def flip_bit(bitstring: str, position: int) -> str:
    """Return ``bitstring`` with the bit of qubit ``position`` flipped."""
    if position < 0 or position >= len(bitstring):
        raise ValueError(f"position {position} out of range")
    flipped = "1" if bitstring[position] == "0" else "0"
    return bitstring[:position] + flipped + bitstring[position + 1 :]
