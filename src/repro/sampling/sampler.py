"""Born-rule shot sampling of circuits and simulated states.

Sampling never loops over shots: outcomes are drawn with a single vectorised
``Generator.multinomial`` (for counts) or ``Generator.choice`` (for per-shot
memory) over the ``2**n`` probability vector.  Sources may be circuits
(simulated on any registered backend via ``backend=``), pure
:class:`~repro.sim.Statevector` states, or mixed
:class:`~repro.sim.DensityMatrix` / :class:`~repro.sim.PauliVector`
states — mixed-state sampling reads the Born probabilities straight off
the density-matrix diagonal (or the I/Z Pauli components), so a
noiseless mixed-state run reproduces the statevector backend's counts
exactly under the same seed.

Noise: a :class:`~repro.noise.NoiseModel` passed as ``noise_model=``
applies its gate channels during simulation (circuit sources only; this
requires the density-matrix backend) and its classical readout error to
the probability vector just before the draw.

Reproducibility contract: an integer ``seed`` plus a ``repetition`` index is
mixed through :func:`repro.utils.rng.derive_seed`, so repeated runs of the
same ``(seed, repetition)`` return identical results while different
repetitions get independent streams — regardless of the order in which they
execute (see ``repro.parallel``, future work).

This module is also the sampling primitive of the execution layer:
:func:`repro.execute` draws through the same
:func:`readout_probabilities` / :func:`counts_from_probabilities` /
:func:`memory_from_probabilities` helpers, which is why
``execute(circuit, shots=s, seed=k).counts`` reproduces
``sample_counts(circuit, s, seed=k)`` bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro.circuit import Circuit
from repro.sampling.counts import Counts
from repro.sim import DensityMatrix, PauliVector, Statevector, run
from repro.sim.registry import BackendLike
from repro.utils.bitstrings import index_to_bitstring
from repro.utils.exceptions import SimulationError
from repro.utils.rng import SeedLike, derive_seed, ensure_rng

if TYPE_CHECKING:
    from repro.noise import NoiseModel

Source = Union[Circuit, Statevector, DensityMatrix, PauliVector]


def _resolve_state(
    source: Source, backend: BackendLike, noise_model: Optional["NoiseModel"]
) -> Union[Statevector, DensityMatrix, PauliVector]:
    if isinstance(source, Circuit):
        if source.has_dynamic_ops():
            raise SimulationError(
                "sample_counts/sample_memory cannot sample dynamic "
                "circuits (measure/reset/if_bit): one simulated state "
                "does not determine the outcome distribution — use "
                "repro.execute(circuit, shots=...)"
            )
        from repro.execution.options import RunOptions

        return run(source, backend=backend, options=RunOptions(noise_model=noise_model))
    if isinstance(source, (Statevector, DensityMatrix, PauliVector)):
        if noise_model is not None and noise_model.has_gate_noise:
            raise SimulationError(
                "gate noise applies during simulation; pass the Circuit "
                "itself (not an already-computed state) with a noise model"
            )
        return source
    raise SimulationError(
        f"cannot sample from {type(source).__name__}; "
        "expected a Circuit, Statevector, DensityMatrix, or PauliVector"
    )


def _resolve_rng(seed: SeedLike, repetition: int) -> np.random.Generator:
    if repetition < 0:
        raise SimulationError(f"repetition must be non-negative, got {repetition}")
    if isinstance(seed, np.random.SeedSequence):
        # Collapse to a stable integer (generate_state is pure) so the
        # repetition mixing below applies to SeedSequence seeds too.
        seed = int(seed.generate_state(1, dtype=np.uint64)[0])
    if isinstance(seed, (int, np.integer)):
        seed = derive_seed(int(seed), repetition)
    return ensure_rng(seed)


def readout_probabilities(
    state: Union[Statevector, DensityMatrix, PauliVector],
    noise_model: Optional["NoiseModel"] = None,
) -> np.ndarray:
    """Normalised Born probabilities of ``state``, readout error applied.

    float64 even for complex64 states; drift is normalised away so the
    vector sums to exactly 1 for multinomial/choice.
    """
    probs = state.probabilities().astype(np.float64)
    if noise_model is not None and noise_model.readout_error is not None:
        probs = noise_model.readout_error.apply(probs, state.num_qubits)
    return probs / probs.sum()


def counts_from_probabilities(
    probs: np.ndarray, shots: int, rng: np.random.Generator, num_qubits: int
) -> Counts:
    """One vectorised multinomial draw of ``shots``, tallied into Counts."""
    draws = rng.multinomial(shots, probs)
    (indices,) = np.nonzero(draws)
    return Counts(
        {
            index_to_bitstring(int(i), num_qubits): int(draws[i])
            for i in indices
        },
        num_qubits=num_qubits,
    )


def memory_from_probabilities(
    probs: np.ndarray, shots: int, rng: np.random.Generator, num_qubits: int
) -> List[str]:
    """One vectorised per-shot draw, preserving shot order."""
    indices = rng.choice(probs.size, size=shots, p=probs)
    return [index_to_bitstring(int(i), num_qubits) for i in indices]


def _prepare(
    source: Source,
    shots: int,
    seed: SeedLike,
    repetition: int,
    backend: BackendLike,
    noise_model: Optional["NoiseModel"],
) -> Tuple[
    Union[Statevector, DensityMatrix, PauliVector],
    np.random.Generator,
    np.ndarray,
]:
    """Shared sampling preamble: validate, simulate, corrupt, seed, normalise."""
    if shots < 1:
        raise SimulationError(f"shots must be positive, got {shots}")
    state = _resolve_state(source, backend, noise_model)
    rng = _resolve_rng(seed, repetition)
    return state, rng, readout_probabilities(state, noise_model)


def sample_counts(
    source: Source,
    shots: int,
    seed: SeedLike = None,
    repetition: int = 0,
    backend: BackendLike = None,
    noise_model: Optional["NoiseModel"] = None,
) -> Counts:
    """Sample ``shots`` measurement outcomes, aggregated into :class:`Counts`.

    Parameters
    ----------
    source:
        A :class:`Circuit` (simulated on ``backend``), or an already
        computed :class:`Statevector` / :class:`DensityMatrix` /
        :class:`PauliVector`.
    shots:
        Number of measurement shots (must be positive).
    seed:
        Integer seeds are mixed with ``repetition`` via ``derive_seed``;
        ``None`` samples fresh entropy; an explicit ``Generator`` is used
        as-is (``repetition`` then only validates).
    repetition:
        Index of this repetition of the experiment; distinct repetitions of
        the same integer seed draw from independent streams.
    backend:
        Backend name or instance for circuit sources (default
        ``"statevector"``); ignored when ``source`` is a state.
    noise_model:
        Optional :class:`~repro.noise.NoiseModel`: gate channels applied
        during simulation (circuit sources, density-matrix backend),
        readout error applied to the probabilities before drawing.
    """
    state, rng, probs = _prepare(source, shots, seed, repetition, backend, noise_model)
    return counts_from_probabilities(probs, shots, rng, state.num_qubits)


def sample_memory(
    source: Source,
    shots: int,
    seed: SeedLike = None,
    repetition: int = 0,
    backend: BackendLike = None,
    noise_model: Optional["NoiseModel"] = None,
) -> List[str]:
    """Sample ``shots`` outcomes preserving per-shot order (a "memory" list).

    Accepts the same ``backend=`` / ``noise_model=`` configuration as
    :func:`sample_counts`.
    """
    state, rng, probs = _prepare(source, shots, seed, repetition, backend, noise_model)
    return memory_from_probabilities(probs, shots, rng, state.num_qubits)
