"""Born-rule shot sampling of circuits and statevectors.

Sampling never loops over shots: outcomes are drawn with a single vectorised
``Generator.multinomial`` (for counts) or ``Generator.choice`` (for per-shot
memory) over the ``2**n`` probability vector.

Reproducibility contract: an integer ``seed`` plus a ``repetition`` index is
mixed through :func:`repro.utils.rng.derive_seed`, so repeated runs of the
same ``(seed, repetition)`` return identical results while different
repetitions get independent streams — regardless of the order in which they
execute (see ``repro.parallel``, future work).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.circuit import Circuit
from repro.sampling.counts import Counts
from repro.sim import Statevector, run
from repro.utils.bitstrings import index_to_bitstring
from repro.utils.exceptions import SimulationError
from repro.utils.rng import SeedLike, derive_seed, ensure_rng


def _resolve_state(source: Union[Circuit, Statevector]) -> Statevector:
    if isinstance(source, Circuit):
        return run(source)
    if isinstance(source, Statevector):
        return source
    raise SimulationError(
        f"cannot sample from {type(source).__name__}; "
        "expected a Circuit or Statevector"
    )


def _resolve_rng(seed: SeedLike, repetition: int) -> np.random.Generator:
    if repetition < 0:
        raise SimulationError(f"repetition must be non-negative, got {repetition}")
    if isinstance(seed, np.random.SeedSequence):
        # Collapse to a stable integer (generate_state is pure) so the
        # repetition mixing below applies to SeedSequence seeds too.
        seed = int(seed.generate_state(1, dtype=np.uint64)[0])
    if isinstance(seed, (int, np.integer)):
        seed = derive_seed(int(seed), repetition)
    return ensure_rng(seed)


def _prepare(
    source: Union[Circuit, Statevector],
    shots: int,
    seed: SeedLike,
    repetition: int,
):
    """Shared sampling preamble: validate, simulate, seed, normalise."""
    if shots < 1:
        raise SimulationError(f"shots must be positive, got {shots}")
    state = _resolve_state(source)
    rng = _resolve_rng(seed, repetition)
    # float64 even for complex64 states; guard against drift so the
    # probability vector sums to exactly 1 for multinomial/choice.
    probs = state.probabilities().astype(np.float64)
    return state, rng, probs / probs.sum()


def sample_counts(
    source: Union[Circuit, Statevector],
    shots: int,
    seed: SeedLike = None,
    repetition: int = 0,
) -> Counts:
    """Sample ``shots`` measurement outcomes, aggregated into :class:`Counts`.

    Parameters
    ----------
    source:
        A :class:`Circuit` (simulated on the default backend) or an already
        computed :class:`Statevector`.
    shots:
        Number of measurement shots (must be positive).
    seed:
        Integer seeds are mixed with ``repetition`` via ``derive_seed``;
        ``None`` samples fresh entropy; an explicit ``Generator`` is used
        as-is (``repetition`` then only validates).
    repetition:
        Index of this repetition of the experiment; distinct repetitions of
        the same integer seed draw from independent streams.
    """
    state, rng, probs = _prepare(source, shots, seed, repetition)
    draws = rng.multinomial(shots, probs)
    (indices,) = np.nonzero(draws)
    counts = {
        index_to_bitstring(int(i), state.num_qubits): int(draws[i])
        for i in indices
    }
    return Counts(counts, num_qubits=state.num_qubits)


def sample_memory(
    source: Union[Circuit, Statevector],
    shots: int,
    seed: SeedLike = None,
    repetition: int = 0,
) -> List[str]:
    """Sample ``shots`` outcomes preserving per-shot order (a "memory" list)."""
    state, rng, probs = _prepare(source, shots, seed, repetition)
    indices = rng.choice(probs.size, size=shots, p=probs)
    return [index_to_bitstring(int(i), state.num_qubits) for i in indices]
