"""Shot-sampling pipeline: Born-rule measurement of simulated states.

Sampling is driven through ``ensure_rng``/``derive_seed`` so that every
``(circuit, repetition)`` pair owns an independent, reproducible stream.
"""

from repro.sampling.counts import Counts
from repro.sampling.sampler import sample_counts, sample_memory

__all__ = ["Counts", "sample_counts", "sample_memory"]
