"""The :class:`Counts` result mapping: bitstring -> observed shot count."""

from __future__ import annotations

from typing import Dict, Mapping, NoReturn

from repro.utils.bitstrings import bitstring_to_index
from repro.utils.exceptions import SimulationError


class Counts(Dict[str, int]):
    """Measurement outcomes keyed by bitstring (qubit 0 leftmost).

    A thin ``dict`` subclass so it behaves like the plain mappings users
    expect, plus shot bookkeeping and probability/mode helpers.  Keys are
    validated on construction; zero-count outcomes are dropped.
    """

    def __init__(self, data: Mapping[str, int] = (), num_qubits: int = 0) -> None:
        items = dict(data)
        for key, value in items.items():
            try:
                bitstring_to_index(key)  # validates characters
            except ValueError as exc:
                raise SimulationError(str(exc)) from None
            if value < 0:
                raise SimulationError(f"negative count for {key!r}: {value}")
            if int(value) != value:
                raise SimulationError(
                    f"non-integer count for {key!r}: {value!r} "
                    "(counts are shot tallies, not probabilities)"
                )
        surviving = {k: int(v) for k, v in items.items() if v > 0}
        # Width consistency is judged on surviving keys only — zero-count
        # outcomes are dropped and must not veto an otherwise valid mapping.
        widths = {len(k) for k in surviving}
        if num_qubits:
            widths.add(num_qubits)
        if len(widths) > 1:
            raise SimulationError(
                f"inconsistent bitstring widths in counts: {sorted(widths)}"
            )
        super().__init__(surviving)
        self._num_qubits = widths.pop() if widths else 0

    # Counts are a measurement *result*: freeze the dict mutators so the
    # constructor's validation cannot be bypassed after the fact.
    def _read_only(self, *args: object, **kwargs: object) -> "NoReturn":
        raise TypeError("Counts is read-only; build a new Counts or use merged()")

    __setitem__ = _read_only
    __delitem__ = _read_only
    __ior__ = _read_only  # c |= other calls dict.__ior__ directly, not update
    clear = _read_only
    pop = _read_only
    popitem = _read_only
    setdefault = _read_only
    update = _read_only

    def copy(self) -> "Counts":
        """A Counts copy (not a plain dict), preserving ``num_qubits``."""
        return Counts(dict(self), num_qubits=self._num_qubits)

    def __reduce__(self) -> tuple:
        # Default dict-subclass pickling restores items through
        # ``__setitem__``, which this class freezes; rebuild through the
        # validating constructor instead so a round-trip crosses process
        # boundaries (worker-pool results) and stays read-only.
        return (Counts, (dict(self), self._num_qubits))

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def shots(self) -> int:
        """Total number of shots recorded."""
        return sum(self.values())

    def probabilities(self) -> Dict[str, float]:
        """Empirical outcome frequencies (sums to 1 when shots > 0)."""
        total = self.shots
        if total == 0:
            return {}
        return {k: v / total for k, v in self.items()}

    def most_frequent(self) -> str:
        """The modal bitstring; ties broken by index order."""
        if not self:
            raise SimulationError("no counts recorded")
        return min(self.items(), key=lambda kv: (-kv[1], bitstring_to_index(kv[0])))[0]

    def int_outcomes(self) -> Dict[int, int]:
        """Counts keyed by basis-state index instead of bitstring."""
        return {bitstring_to_index(k): v for k, v in self.items()}

    def merged(self, other: "Counts") -> "Counts":
        """Combine two counts objects shot-wise (e.g. across repetitions)."""
        if other._num_qubits and self._num_qubits and other._num_qubits != self._num_qubits:
            raise SimulationError(
                f"cannot merge counts over {self._num_qubits} and "
                f"{other._num_qubits} qubits"
            )
        merged: Dict[str, int] = dict(self)
        for key, value in other.items():
            merged[key] = merged.get(key, 0) + value
        return Counts(merged, num_qubits=self._num_qubits or other._num_qubits)

    def __repr__(self) -> str:
        body = ", ".join(f"{k!r}: {v}" for k, v in sorted(self.items()))
        return f"Counts({{{body}}}, shots={self.shots})"
