"""Diagnostic value objects: what the static-analysis layer reports.

A :class:`Diagnostic` is one finding — severity, a stable kebab-case
code, a human-readable message, and an optional *site* (the instruction
index in a circuit, or the op index in an :class:`~repro.plan.ExecutionPlan`,
distinguished by :attr:`Diagnostic.scope`).  Rules yield them;
:func:`repro.analysis.analyze` and :func:`repro.analysis.verify_plan`
collect them into an :class:`AnalysisReport`, an immutable sequence with
severity filters and a ``raise_if_errors`` gate for strict-mode callers.

Codes are API: tests, CI gates and ``Result.metadata`` consumers match
on them, so a code never changes meaning once shipped.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro.utils.exceptions import AnalysisError

#: Severity levels, most severe first.  ``ERROR`` means the circuit/plan
#: cannot execute correctly; ``WARNING`` flags a likely bug that still
#: runs; ``INFO`` is advisory (performance hints).
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: Where a diagnostic's ``site`` index points.
_SCOPES = ("circuit", "plan")


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Parameters
    ----------
    severity:
        ``"error"``, ``"warning"`` or ``"info"``.
    code:
        Stable kebab-case identifier of the rule/check that fired
        (e.g. ``"unused-qubit"``, ``"plan-axis-range"``).
    message:
        Human-readable description of the finding.
    site:
        Instruction index (``scope="circuit"``) or plan-op index
        (``scope="plan"``) the finding anchors to; ``None`` for
        register- or plan-level findings.
    scope:
        ``"circuit"`` or ``"plan"`` — what ``site`` indexes into.
    """

    severity: str
    code: str
    message: str
    site: Optional[int] = None
    scope: str = "circuit"

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise AnalysisError(
                f"diagnostic severity must be one of "
                f"{sorted(_SEVERITY_RANK)}, got {self.severity!r}"
            )
        if not isinstance(self.code, str) or not self.code:
            raise AnalysisError(
                f"diagnostic code must be a non-empty string, got {self.code!r}"
            )
        if not isinstance(self.message, str) or not self.message:
            raise AnalysisError(
                f"diagnostic message must be a non-empty string, "
                f"got {self.message!r}"
            )
        if self.scope not in _SCOPES:
            raise AnalysisError(
                f"diagnostic scope must be one of {_SCOPES}, got {self.scope!r}"
            )
        if self.site is not None:
            if not isinstance(self.site, numbers.Integral) or isinstance(
                self.site, bool
            ):
                raise AnalysisError(
                    f"diagnostic site must be an int or None, got {self.site!r}"
                )
            if self.site < 0:
                raise AnalysisError(
                    f"diagnostic site must be non-negative, got {self.site}"
                )
            object.__setattr__(self, "site", int(self.site))

    @property
    def severity_rank(self) -> int:
        """0 for errors, 1 for warnings, 2 for infos (sorts most-severe first)."""
        return _SEVERITY_RANK[self.severity]

    def as_dict(self) -> dict:
        """A JSON-serialisable view of this diagnostic."""
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "site": self.site,
            "scope": self.scope,
        }

    def __str__(self) -> str:
        where = ""
        if self.site is not None:
            noun = "instruction" if self.scope == "circuit" else "op"
            where = f" @ {noun} {self.site}"
        return f"{self.severity}[{self.code}]{where}: {self.message}"


class AnalysisReport:
    """An immutable, ordered collection of :class:`Diagnostic` findings.

    Behaves as a sequence (iteration, ``len``, indexing) and adds the
    severity views callers actually branch on: :attr:`errors`,
    :attr:`warnings`, :attr:`infos`, :attr:`has_errors`, plus
    :meth:`raise_if_errors` for strict-mode gating.  Reports merge with
    ``+`` so circuit- and plan-level findings combine into one object.
    """

    __slots__ = ("_diagnostics",)

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        items = tuple(diagnostics)
        for item in items:
            if not isinstance(item, Diagnostic):
                raise AnalysisError(
                    f"AnalysisReport holds Diagnostic objects, got "
                    f"{type(item).__name__}"
                )
        self._diagnostics = items

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return self._diagnostics

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self._diagnostics)

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        """Every finding carrying ``code``, in report order."""
        return tuple(d for d in self._diagnostics if d.code == code)

    def codes(self) -> Tuple[str, ...]:
        """Distinct diagnostic codes present, in first-appearance order."""
        seen = {}
        for d in self._diagnostics:
            seen.setdefault(d.code, None)
        return tuple(seen)

    def raise_if_errors(self, subject: str = "circuit") -> "AnalysisReport":
        """Raise :class:`AnalysisError` when any error-severity finding exists.

        The raised error carries every error diagnostic on its
        ``diagnostics`` attribute; warnings/infos never raise.  Returns
        ``self`` so the call chains.
        """
        errors = self.errors
        if errors:
            details = "; ".join(str(d) for d in errors)
            raise AnalysisError(
                f"static analysis found {len(errors)} error(s) in {subject}: "
                f"{details}",
                diagnostics=errors,
            )
        return self

    def as_dicts(self) -> Tuple[dict, ...]:
        """JSON-serialisable rows, one per diagnostic."""
        return tuple(d.as_dict() for d in self._diagnostics)

    def __add__(self, other: "AnalysisReport") -> "AnalysisReport":
        if not isinstance(other, AnalysisReport):
            return NotImplemented
        return AnalysisReport(self._diagnostics + other._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __getitem__(self, index: int) -> Diagnostic:
        return self._diagnostics[index]

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnalysisReport):
            return NotImplemented
        return self._diagnostics == other._diagnostics

    def __hash__(self) -> int:
        return hash(self._diagnostics)

    def __repr__(self) -> str:
        return (
            f"AnalysisReport({len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s))"
        )
