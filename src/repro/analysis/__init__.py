"""Static analysis: lint circuits and verify compiled plans before running.

The execution stack compiles circuits into cached
:class:`~repro.plan.ExecutionPlan` objects that cross process boundaries
and run in a tight contraction loop — so a wiring bug surfaces late, deep
inside a worker shard.  This package moves those failures to *before*
execution:

- :func:`analyze` runs a registry of :class:`Rule` objects over a circuit
  and returns an :class:`AnalysisReport` of :class:`Diagnostic` findings
  (unused qubits/clbits, read-before-write and dead conditionals,
  measurement overwrites, non-CPTP channels, fusion-barrier density,
  memory-footprint estimates).
- :func:`verify_plan` statically checks every op of a compiled plan
  (tensor shapes vs. arity, contraction axes, dtype, clbit ranges,
  bindability of parametric slots).
- ``RunOptions(validate="warn"|"strict")`` wires both into
  :func:`repro.execute`: ``warn`` routes findings into
  ``Result.metadata["diagnostics"]``, ``strict`` raises
  :class:`~repro.utils.exceptions.AnalysisError` on error-severity
  findings.
- :func:`certify_rewrite` statically *proves* a transpile-pass rewrite
  semantically equivalent to its input (local unitary comparison on each
  rewrite's support — never a dense ``2^n`` operator — plus dataflow and
  channel-preservation checks), producing a per-pass :class:`Certificate`.
  ``transpile(certify=True)`` / ``RunOptions(certify=True)`` wire it into
  every pass application.
- :class:`Sanitizer` watches the live ``execute_plan`` evolution for
  numerical violations (norm drift, NaN/Inf, dtype promotion, probability
  sums) under ``RunOptions(sanitize="warn"|"strict")`` or the
  ``REPRO_SANITIZE`` environment variable.
- ``python -m repro.analysis`` lints the bench workloads from the
  command line and exits non-zero on errors; ``--certify`` certifies the
  default pass pipeline over every workload instead.

The layer sits below the simulation stack: it imports circuit/plan IR
only, so frontends (e.g. a QASM ingester) can lint untrusted input
without pulling in backends.  The certifier and sanitizer submodules are
re-exported **lazily** (PEP 562): importing :mod:`repro.analysis` — which
the ``repro`` facade does eagerly — must not load them, because the
``certify=False`` / ``sanitize="off"`` hot paths guarantee those modules
are never imported at all.
"""

from typing import Any

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.plan_verifier import verify_plan
from repro.analysis.rules import (
    AnalysisContext,
    Rule,
    analyze,
    available_rules,
    get_rule,
    register_rule,
)
from repro.utils.exceptions import AnalysisError

# Lazy (PEP 562) exports: resolved on first attribute access so the
# default execution paths never pay for — or even import — the certifier
# and sanitizer machinery.  tests/analysis/test_lazy_imports.py pins this.
_LAZY_EXPORTS = {
    "Certificate": ("repro.analysis.certify", "Certificate"),
    "certify_rewrite": ("repro.analysis.certify", "certify_rewrite"),
    "Sanitizer": ("repro.analysis.sanitize", "Sanitizer"),
    "SanitizerWarning": ("repro.analysis.sanitize", "SanitizerWarning"),
    "sanitize_batch": ("repro.analysis.sanitize", "sanitize_batch"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


__all__ = [
    "Diagnostic",
    "AnalysisReport",
    "AnalysisContext",
    "AnalysisError",
    "Rule",
    "analyze",
    "verify_plan",
    "register_rule",
    "get_rule",
    "available_rules",
    "Certificate",
    "certify_rewrite",
    "Sanitizer",
    "SanitizerWarning",
    "sanitize_batch",
    "ERROR",
    "WARNING",
    "INFO",
]
