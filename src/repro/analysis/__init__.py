"""Static analysis: lint circuits and verify compiled plans before running.

The execution stack compiles circuits into cached
:class:`~repro.plan.ExecutionPlan` objects that cross process boundaries
and run in a tight contraction loop — so a wiring bug surfaces late, deep
inside a worker shard.  This package moves those failures to *before*
execution:

- :func:`analyze` runs a registry of :class:`Rule` objects over a circuit
  and returns an :class:`AnalysisReport` of :class:`Diagnostic` findings
  (unused qubits/clbits, read-before-write and dead conditionals,
  measurement overwrites, non-CPTP channels, fusion-barrier density,
  memory-footprint estimates).
- :func:`verify_plan` statically checks every op of a compiled plan
  (tensor shapes vs. arity, contraction axes, dtype, clbit ranges,
  bindability of parametric slots).
- ``RunOptions(validate="warn"|"strict")`` wires both into
  :func:`repro.execute`: ``warn`` routes findings into
  ``Result.metadata["diagnostics"]``, ``strict`` raises
  :class:`~repro.utils.exceptions.AnalysisError` on error-severity
  findings.
- ``python -m repro.analysis`` lints the bench workloads from the
  command line and exits non-zero on errors.

The layer sits below the simulation stack: it imports circuit/plan IR
only, so frontends (e.g. a QASM ingester) can lint untrusted input
without pulling in backends.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.plan_verifier import verify_plan
from repro.analysis.rules import (
    AnalysisContext,
    Rule,
    analyze,
    available_rules,
    get_rule,
    register_rule,
)
from repro.utils.exceptions import AnalysisError

__all__ = [
    "Diagnostic",
    "AnalysisReport",
    "AnalysisContext",
    "AnalysisError",
    "Rule",
    "analyze",
    "verify_plan",
    "register_rule",
    "get_rule",
    "available_rules",
    "ERROR",
    "WARNING",
    "INFO",
]
