"""The circuit rule set: the :class:`Rule` protocol, registry, and built-ins.

A rule is a small object with a stable ``code`` and a
``check(circuit, context)`` method yielding :class:`Diagnostic` findings.
Rules register by code in a process-wide registry — the same shape as the
gate and backend registries (:mod:`repro.gates.registry`,
:mod:`repro.sim.registry`) — so downstream frontends (e.g. a QASM
ingester) can ship their own rules without touching this module.

:func:`analyze` is the driver: it runs every requested rule over one
circuit and returns the combined
:class:`~repro.analysis.diagnostics.AnalysisReport`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
    _SEVERITY_RANK,
)
from repro.circuit import Circuit
from repro.circuit.ptm import ptm_is_trace_preserving
from repro.utils.exceptions import AnalysisError

_GIB = 1024**3


def _code_tuple(field: str, value: Any) -> Tuple[str, ...]:
    """Normalise a select/ignore spec to a lowercase code tuple."""
    if value is None:
        return ()
    if isinstance(value, str):
        # A bare string is a one-element spec, not an iterable of chars.
        value = (value,)
    codes = []
    for code in value:
        if not isinstance(code, str) or not code:
            raise AnalysisError(
                f"{field} entries must be non-empty diagnostic codes, "
                f"got {code!r}"
            )
        codes.append(code.lower())
    return tuple(codes)


@dataclass(frozen=True)
class AnalysisContext:
    """Ambient facts rules may consult; safe defaults for bare ``analyze()``.

    Parameters
    ----------
    mode:
        The plan mode the circuit is headed for (``"statevector"``,
        ``"density"``, ``"trajectory"``) or ``None`` when unknown —
        the resource rule then assumes the cheaper pure-state estimate.
    max_memory_bytes:
        State tensors estimated above this are *errors* (the run cannot
        reasonably fit).
    warn_memory_bytes:
        State tensors estimated above this (but under the hard limit)
        are warnings.
    itemsize:
        Bytes per amplitude (16 for complex128).
    select:
        Diagnostic codes to keep (ruff-style): empty (default) keeps
        everything; otherwise only findings whose code is listed survive
        :meth:`apply`.  Matched case-insensitively, like the rule
        registry.
    ignore:
        Diagnostic codes to drop, applied after ``select``.
    severity_overrides:
        Per-code severity rewrites, e.g. ``{"unused-qubit": "error"}``
        promotes that finding to error severity (so strict mode fails on
        it).  Accepts any mapping of code -> ``"error"``/``"warning"``/
        ``"info"`` (normalised to a sorted tuple of pairs so the context
        stays hashable).
    """

    mode: Optional[str] = None
    max_memory_bytes: int = 64 * _GIB
    warn_memory_bytes: int = 4 * _GIB
    itemsize: int = 16
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    severity_overrides: Any = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "select", _code_tuple("select", self.select))
        object.__setattr__(self, "ignore", _code_tuple("ignore", self.ignore))
        overrides = self.severity_overrides
        if isinstance(overrides, Mapping):
            pairs = tuple(overrides.items())
        else:
            pairs = tuple(overrides)
        normalised = []
        for entry in pairs:
            try:
                code, level = entry
            except (TypeError, ValueError):
                raise AnalysisError(
                    f"severity_overrides entries must be (code, severity) "
                    f"pairs, got {entry!r}"
                ) from None
            if not isinstance(code, str) or not code:
                raise AnalysisError(
                    f"severity_overrides codes must be non-empty strings, "
                    f"got {code!r}"
                )
            if level not in _SEVERITY_RANK:
                raise AnalysisError(
                    f"severity override for {code!r} must be one of "
                    f"{sorted(_SEVERITY_RANK)}, got {level!r}"
                )
            normalised.append((code.lower(), level))
        object.__setattr__(
            self, "severity_overrides", tuple(sorted(normalised))
        )

    def apply(self, diagnostics: Iterable[Diagnostic]) -> Tuple[Diagnostic, ...]:
        """Filter and re-severity ``diagnostics`` per this context.

        ``select`` (when non-empty) keeps only listed codes, ``ignore``
        then drops its codes, and ``severity_overrides`` rewrites the
        severity of what remains — the order every linter with these
        knobs uses.  Codes match case-insensitively.  Idempotent, so
        layered reports (circuit + plan) can be filtered more than once.
        """
        overrides = dict(self.severity_overrides)
        kept: List[Diagnostic] = []
        for diagnostic in diagnostics:
            code = diagnostic.code.lower()
            if self.select and code not in self.select:
                continue
            if code in self.ignore:
                continue
            level = overrides.get(code)
            if level is not None and level != diagnostic.severity:
                diagnostic = dataclasses.replace(diagnostic, severity=level)
            kept.append(diagnostic)
        return tuple(kept)


@runtime_checkable
class Rule(Protocol):
    """What the analyzer drives: a code plus a ``check`` method."""

    code: str

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterable[Diagnostic]:
        """Yield findings for ``circuit``; empty when the rule passes."""
        ...


# ----------------------------------------------------------------------
# registry (mirrors repro.gates.registry / repro.sim.registry)
# ----------------------------------------------------------------------
_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule, replace: bool = False) -> None:
    """Register ``rule`` under ``rule.code``.

    Duplicate codes are rejected unless ``replace=True`` — silently
    shadowing a rule is how checks rot away unnoticed.  Codes are
    case-insensitive, like gate and backend names.
    """
    code = getattr(rule, "code", None)
    if not isinstance(code, str) or not code:
        raise AnalysisError(
            f"rule must carry a non-empty string 'code', got {code!r}"
        )
    if not callable(getattr(rule, "check", None)):
        raise AnalysisError(f"rule {code!r} must define a check() method")
    key = code.lower()
    if key in _RULES and not replace:
        raise AnalysisError(
            f"rule {code!r} is already registered; pass replace=True to "
            "override it"
        )
    _RULES[key] = rule


def get_rule(code: str) -> Rule:
    """Look up a registered rule by code (case-insensitive)."""
    try:
        return _RULES[str(code).lower()]
    except KeyError:
        raise AnalysisError(
            f"unknown analysis rule {code!r}; available: "
            f"{', '.join(available_rules())}"
        ) from None


def available_rules() -> Tuple[str, ...]:
    """Registered rule codes, sorted (matching gates/backends)."""
    return tuple(sorted(_RULES))


# ----------------------------------------------------------------------
# built-in rules
# ----------------------------------------------------------------------
class UnusedQubitRule:
    """Qubits no instruction touches: usually an off-by-one in a builder."""

    code = "unused-qubit"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        active = set(circuit.active_qubits())
        for qubit in range(circuit.num_qubits):
            if qubit not in active:
                yield Diagnostic(
                    WARNING,
                    self.code,
                    f"qubit {qubit} is never used by any instruction",
                )


class UnusedClbitRule:
    """Classical bits never written (measured into) nor read (branched on)."""

    code = "unused-clbit"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        touched = set()
        for instruction in circuit:
            if instruction.is_measure or instruction.is_conditional:
                touched.add(instruction.operation.clbit)
        for clbit in range(circuit.num_clbits):
            if clbit not in touched:
                yield Diagnostic(
                    WARNING,
                    self.code,
                    f"clbit {clbit} is never measured into nor branched on",
                )


class ReadBeforeWriteRule:
    """``if_bit`` reads a clbit before the measure that writes it.

    The branch then always sees the initial 0 — almost certainly the
    measure and the conditional are in the wrong order.  Clbits that are
    *never* written are the dead-conditional rule's finding, not this
    one's.
    """

    code = "clbit-read-before-write"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        first_write: Dict[int, int] = {}
        for index, instruction in enumerate(circuit):
            if instruction.is_measure:
                first_write.setdefault(instruction.operation.clbit, index)
        for index, instruction in enumerate(circuit):
            if not instruction.is_conditional:
                continue
            clbit = instruction.operation.clbit
            if clbit in first_write and first_write[clbit] > index:
                yield Diagnostic(
                    WARNING,
                    self.code,
                    f"conditional reads clbit {clbit} before the first "
                    f"measurement that writes it (instruction "
                    f"{first_write[clbit]}); the branch always sees 0",
                    site=index,
                )


class DeadConditionalRule:
    """``if_bit`` on a clbit no measurement ever writes: a constant branch."""

    code = "dead-conditional"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        written = {
            instruction.operation.clbit
            for instruction in circuit
            if instruction.is_measure
        }
        for index, instruction in enumerate(circuit):
            if not instruction.is_conditional:
                continue
            operation = instruction.operation
            if operation.clbit not in written:
                fate = "always" if operation.value == 0 else "never"
                yield Diagnostic(
                    WARNING,
                    self.code,
                    f"conditional branches on clbit {operation.clbit}, which "
                    f"no measurement writes — the register reads 0, so the "
                    f"gate {fate} applies",
                    site=index,
                )


class MeasureOverwriteRule:
    """A second measurement into a clbit whose value was never read."""

    code = "measure-overwrite"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        last_write: Dict[int, int] = {}
        read_since: Dict[int, bool] = {}
        for index, instruction in enumerate(circuit):
            if instruction.is_conditional:
                read_since[instruction.operation.clbit] = True
                continue
            if not instruction.is_measure:
                continue
            clbit = instruction.operation.clbit
            if clbit in last_write and not read_since.get(clbit, False):
                yield Diagnostic(
                    WARNING,
                    self.code,
                    f"measurement overwrites clbit {clbit} (written at "
                    f"instruction {last_write[clbit]}) before anything "
                    f"reads it — the first outcome is lost",
                    site=index,
                )
            last_write[clbit] = index
            read_since[clbit] = False


class ChannelRule:
    """Channels whose Kraus set is ill-shaped or not trace preserving.

    Construction validates both, but ``Channel(..., validate=False)``
    skips the CPTP check and unpickling/corruption can damage shapes —
    either way the simulation silently leaks or gains probability, so
    this is an error, not a warning.
    """

    code = "non-cptp-channel"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        for index, instruction in enumerate(circuit):
            if not instruction.is_channel:
                continue
            channel = instruction.operation
            dim = 2**channel.num_qubits
            bad_shapes = [
                op.shape for op in channel.kraus if op.shape != (dim, dim)
            ]
            if not channel.kraus:
                yield Diagnostic(
                    ERROR,
                    self.code,
                    f"channel {channel.name!r} has no Kraus operators",
                    site=index,
                )
                continue
            if bad_shapes:
                yield Diagnostic(
                    ERROR,
                    self.code,
                    f"channel {channel.name!r} has Kraus operator(s) of "
                    f"shape {bad_shapes} where ({dim}, {dim}) is required",
                    site=index,
                )
                continue
            try:
                trace_preserving = channel.is_trace_preserving()
            except Exception as exc:
                yield Diagnostic(
                    ERROR,
                    self.code,
                    f"channel {channel.name!r} CPTP check failed: {exc}",
                    site=index,
                )
                continue
            if not trace_preserving:
                yield Diagnostic(
                    ERROR,
                    self.code,
                    f"channel {channel.name!r} is not trace preserving "
                    f"(sum K†K != I): probability leaks every application",
                    site=index,
                )
                continue
            # Same physics, second representation: the precomputed Pauli
            # transfer matrix must carry the trace row (1, 0, ..., 0) —
            # a corrupted/stale PTM cache would silently leak probability
            # in ptm-mode plans even when the Kraus set is intact.
            if not ptm_is_trace_preserving(channel.ptm):
                yield Diagnostic(
                    ERROR,
                    self.code,
                    f"channel {channel.name!r} is not trace preserving in "
                    f"the Pauli basis: the first PTM row deviates from "
                    f"(1, 0, ..., 0)",
                    site=index,
                )


class FusionBarrierRule:
    """Circuits dominated by fusion barriers: ``FuseAdjacentGates`` is moot.

    Channels, dynamic ops (measure/reset/if_bit) and unbound parametric
    gates are all barriers the fusion pass cannot cross.  When at least
    half of a non-trivial circuit is barriers, transpiling buys little —
    an advisory finding, not a bug.
    """

    code = "fusion-barrier-density"

    #: Below this many instructions density is noise, not signal.
    min_instructions = 4
    threshold = 0.5

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        total = len(circuit)
        if total < self.min_instructions:
            return
        barriers = sum(
            1
            for instruction in circuit
            if instruction.is_channel
            or instruction.is_dynamic
            or instruction.is_parametric
        )
        density = barriers / total
        if density >= self.threshold:
            yield Diagnostic(
                INFO,
                self.code,
                f"{barriers} of {total} instructions "
                f"({density:.0%}) are fusion barriers "
                f"(channels/dynamic ops/parametric gates); gate fusion "
                f"will have little effect",
            )


class ResourceRule:
    """Predicts state-tensor memory and flags runs that will not fit.

    A pure state costs ``itemsize * 2**n`` bytes, a density matrix
    ``itemsize * 4**n`` — estimates above the context's warn threshold
    are warnings, above the hard limit errors, *before* the first
    allocation happens inside a worker process.
    """

    code = "resource-limit"

    def check(
        self, circuit: Circuit, context: AnalysisContext
    ) -> Iterator[Diagnostic]:
        n = circuit.num_qubits
        # Density matrices and Pauli vectors both hold 4**n elements; the
        # ptm representation just stores them as reals instead of complex.
        mixed = context.mode in ("density", "ptm")
        amplitudes = 4**n if mixed else 2**n
        estimate = amplitudes * context.itemsize
        if estimate <= context.warn_memory_bytes:
            return
        if context.mode == "ptm":
            kind = "Pauli vector"
        elif mixed:
            kind = "density matrix"
        else:
            kind = "statevector"
        scaling = "4**n" if mixed else "2**n"
        message = (
            f"{kind} for {n} qubits needs ~{estimate / _GIB:.1f} GiB "
            f"({scaling} amplitudes x {context.itemsize} bytes)"
        )
        if estimate > context.max_memory_bytes:
            yield Diagnostic(
                ERROR,
                self.code,
                f"{message}, over the {context.max_memory_bytes / _GIB:.1f} "
                f"GiB limit — this run will not fit",
            )
        else:
            yield Diagnostic(
                WARNING,
                self.code,
                f"{message}, over the "
                f"{context.warn_memory_bytes / _GIB:.1f} GiB warning "
                f"threshold",
            )


for _rule in (
    UnusedQubitRule(),
    UnusedClbitRule(),
    ReadBeforeWriteRule(),
    DeadConditionalRule(),
    MeasureOverwriteRule(),
    ChannelRule(),
    FusionBarrierRule(),
    ResourceRule(),
):
    register_rule(_rule)
del _rule


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def analyze(
    circuit: Circuit,
    rules: Optional[Iterable[Union[str, Rule]]] = None,
    *,
    context: Optional[AnalysisContext] = None,
) -> AnalysisReport:
    """Run static-analysis rules over ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to lint; never executed, never mutated.
    rules:
        ``None`` for every registered rule (registration order), or an
        iterable of rule codes / :class:`Rule` instances to run a subset
        (or unregistered ad-hoc rules).
    context:
        Ambient facts (target plan mode, memory limits); defaults to
        :class:`AnalysisContext`'s conservative values.

    Returns
    -------
    AnalysisReport
        Every finding, in rule order then circuit order.
    """
    if not isinstance(circuit, Circuit):
        raise AnalysisError(
            f"analyze expects a Circuit, got {type(circuit).__name__}"
        )
    if context is None:
        context = AnalysisContext()
    if rules is None:
        selected: List[Rule] = list(_RULES.values())
    else:
        selected = []
        for entry in rules:
            if isinstance(entry, str):
                selected.append(get_rule(entry))
            elif callable(getattr(entry, "check", None)):
                selected.append(entry)
            else:
                raise AnalysisError(
                    f"rules entries must be codes or Rule objects, got "
                    f"{entry!r}"
                )
    diagnostics: List[Diagnostic] = []
    for rule in selected:
        diagnostics.extend(rule.check(circuit, context))
    return AnalysisReport(context.apply(diagnostics))


__all__ = [
    "AnalysisContext",
    "Rule",
    "register_rule",
    "get_rule",
    "available_rules",
    "analyze",
    "UnusedQubitRule",
    "UnusedClbitRule",
    "ReadBeforeWriteRule",
    "DeadConditionalRule",
    "MeasureOverwriteRule",
    "ChannelRule",
    "FusionBarrierRule",
    "ResourceRule",
]
