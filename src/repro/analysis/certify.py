"""Semantic equivalence certificates for transpile-pass rewrites.

Property tests sample a few circuits; a :class:`Certificate` proves the
*specific* rewrite a pass just performed.  :func:`certify_rewrite`
compares the circuit a pass consumed with the circuit it produced and
either certifies them equivalent or reports exactly where equivalence
broke, as stable ``certify-*`` diagnostic codes.

The proof never builds a dense ``2**n`` operator.  It exploits the same
structure the passes themselves must respect:

1. **Barriers are fixed points.**  Channels, dynamic ops
   (measure/reset/if_bit) and unbound parametric gates are rewrite
   barriers for every conforming pass — a Kraus map has no unitary to
   fold, and nothing commutes across a collapse or a classical branch.
   The certifier requires the barrier subsequence to be preserved
   *verbatim and in order* (``certify-barrier-moved`` otherwise).  This
   is simultaneously the clbit dataflow certificate: every clbit read
   and write lives on a barrier, so unchanged barriers mean unchanged
   classical dataflow, and no unitary segment can migrate across a
   measure/reset/conditional without failing its segment's check below.
2. **Between barriers, circuits factor.**  With the barrier subsequence
   equal on both sides, ``C = S0 · B1 · S1 · ... · Bm · Sm`` on each
   side, so proving every unitary segment pair ``(S_i, S_i')`` equal
   proves the circuits equal.
3. **Segments diff down to local rewrite sites.**  Each segment pair is
   aligned with a longest-matching-subsequence diff over instruction
   equality (gates compare by name/params/matrix); unchanged
   instructions anchor the alignment.  Within each hunk the changed
   instructions group into qubit-connected components — the initial
   rewrite *sites* (disjoint-support factors commute, so they certify
   independently; distinct hunks compose sequentially).  A site that
   fails its local check is not rejected outright: a pass can cancel a
   pair *across* unchanged gates on other qubits (which commute), so
   failing sites escalate lazily — merging with their nearest
   qubit-sharing site, re-absorbing any unchanged *gap* instruction
   that lands inside the merged window on shared qubits, and
   re-verifying — until everything passes or no sound growth remains
   (see :func:`_segment_sites` / :func:`_structural_fixpoint` for the
   soundness argument).  Each final site is compared as a local
   operator on the ≤ ``max_support``-qubit union support of its
   instructions, built by the same ``(2,) * 2k`` tensordot contraction
   the simulator uses on states — cost ``4**k`` for the site's own
   width ``k``, never ``4**n``.

A site whose support exceeds ``max_support`` is *not* silently trusted:
it fails with ``certify-support-width`` (soundness over completeness).
Built-in passes rewrite within the fusion width, so their sites stay
tiny on every bench workload.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.circuit import Circuit, Instruction
from repro.utils.exceptions import AnalysisError, CertificationError

#: Certificate outcomes.  ``CERTIFIED`` means every rewrite site was
#: proven equivalent; ``FAILED`` means at least one diagnostic fired.
CERTIFIED = "certified"
FAILED = "failed"

#: Widest rewrite-site support the certifier will compare (4**k-entry
#: local operators).  6 qubits = 4096x4096 worst case, far above the
#: built-in passes' fusion width yet nowhere near dense 2**n.
DEFAULT_MAX_SUPPORT = 6

#: Operator-entry tolerance.  Must dominate the passes' own numeric
#: tolerances (``CancelInversePairs`` cancels pairs within 1e-9 of the
#: identity, so a certified deletion may legitimately deviate by that
#: much) plus accumulated matmul rounding.
DEFAULT_ATOL = 1e-8


@dataclass(frozen=True)
class Certificate:
    """The machine-checked verdict on one pass application.

    Attached to :class:`~repro.transpile.PassStats` (and through it to
    ``ExecutionPlan.pass_stats``) so every compiled plan carries the
    proof of its own optimisation.

    Parameters
    ----------
    pass_name:
        The pass this certificate covers.
    status:
        ``"certified"`` or ``"failed"``.
    sites:
        Number of rewrite sites (changed hunks) compared.
    max_support:
        Widest site support (in qubits) encountered; the certified
        bound on local-operator size — never the register width unless
        a single rewrite genuinely spanned it.
    max_deviation:
        Largest entrywise operator deviation over all certified sites.
    diagnostics:
        Error findings, empty when certified.
    """

    pass_name: str
    status: str
    sites: int = 0
    max_support: int = 0
    max_deviation: float = 0.0
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == CERTIFIED

    def as_dict(self) -> dict:
        """A JSON-serialisable view (rides on ``plan.pass_stats``)."""
        return {
            "pass": self.pass_name,
            "status": self.status,
            "sites": self.sites,
            "max_support": self.max_support,
            "max_deviation": self.max_deviation,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def raise_if_failed(self) -> "Certificate":
        """Raise :class:`CertificationError` unless certified; chains."""
        if self.ok:
            return self
        details = "; ".join(str(d) for d in self.diagnostics)
        raise CertificationError(
            f"pass {self.pass_name!r} failed certification: {details}",
            diagnostics=self.diagnostics,
            certificate=self,
        )

    def __repr__(self) -> str:
        return (
            f"Certificate({self.pass_name}: {self.status}, "
            f"{self.sites} site(s), max support {self.max_support}, "
            f"max deviation {self.max_deviation:.2e})"
        )


def _is_barrier(instruction: Instruction) -> bool:
    """Whether ``instruction`` is a rewrite barrier (see module docstring)."""
    return (
        instruction.is_channel
        or instruction.is_dynamic
        or instruction.is_parametric
    )


def _barrier_kind(instruction: Instruction) -> str:
    if instruction.is_channel:
        return "channel"
    if instruction.is_measure:
        return "measure"
    if instruction.is_reset:
        return "reset"
    if instruction.is_conditional:
        return "conditional"
    return "parametric gate"


def _split_at_barriers(
    circuit: Circuit,
) -> Tuple[List[Instruction], List[Tuple[int, List[Instruction]]]]:
    """Barrier subsequence + unitary segments with their start indices.

    Returns ``(barriers, segments)`` where ``segments`` has exactly
    ``len(barriers) + 1`` entries of ``(global start index, run)``.
    """
    barriers: List[Instruction] = []
    segments: List[Tuple[int, List[Instruction]]] = []
    start = 0
    run: List[Instruction] = []
    for index, instruction in enumerate(circuit):
        if _is_barrier(instruction):
            segments.append((start, run))
            barriers.append(instruction)
            start = index + 1
            run = []
        else:
            run.append(instruction)
    segments.append((start, run))
    return barriers, segments


def _local_operator(
    instructions: Sequence[Instruction], support: Sequence[int]
) -> np.ndarray:
    """The product operator of ``instructions`` on ``support`` qubits.

    Built as a ``(2,) * 2k`` tensor with one tensordot per instruction —
    the identical contraction the simulator applies to states, so the
    certificate exercises the same arithmetic it vouches for.
    """
    position = {qubit: axis for axis, qubit in enumerate(support)}
    k = len(support)
    operator = np.eye(1 << k, dtype=np.complex128).reshape((2,) * (2 * k))
    for instruction in instructions:
        m = len(instruction.qubits)
        gate = np.asarray(instruction.gate.matrix, dtype=np.complex128)
        gate = gate.reshape((2,) * (2 * m))
        targets = tuple(position[q] for q in instruction.qubits)
        operator = np.tensordot(
            gate, operator, axes=(tuple(range(m, 2 * m)), targets)
        )
        operator = np.moveaxis(operator, tuple(range(m)), targets)
    return operator


#: Site verdicts inside :func:`_segment_sites` (pre-diagnostic).
_OK = "ok"
_NOT_EQUIVALENT = "not-equivalent"
_TOO_WIDE = "too-wide"


class _Site:
    """One in-progress rewrite site: changed + absorbed-gap instructions.

    ``removed``/``added``/``gaps`` hold ``(opcode index, offset, global
    index, instruction)`` entries; the ``(opcode index, offset)`` pair
    is a total order consistent on both circuit sides (gap runs are
    verbatim-identical, so their relative order w.r.t. every hunk is the
    same before and after).  ``verdict`` caches the verification result
    and resets to ``None`` whenever the site grows.
    """

    __slots__ = (
        "support",
        "min_oi",
        "max_oi",
        "removed",
        "added",
        "gaps",
        "verdict",
        "deviation",
    )

    def __init__(self) -> None:
        self.support: set = set()
        self.min_oi = 1 << 60
        self.max_oi = -1
        self.removed: List[tuple] = []
        self.added: List[tuple] = []
        self.gaps: List[tuple] = []
        self.verdict: Optional[str] = None
        self.deviation = 0.0

    def absorb(self, other: "_Site") -> None:
        self.support |= other.support
        self.min_oi = min(self.min_oi, other.min_oi)
        self.max_oi = max(self.max_oi, other.max_oi)
        self.removed += other.removed
        self.added += other.added
        self.gaps += other.gaps
        self.verdict = None

    def _ordered(self, entries: List[tuple]) -> List[Instruction]:
        return [
            instruction
            for _, _, _, instruction in sorted(
                entries + self.gaps, key=lambda entry: (entry[0], entry[1])
            )
        ]

    def removed_instructions(self) -> List[Instruction]:
        return self._ordered(self.removed)

    def added_instructions(self) -> List[Instruction]:
        return self._ordered(self.added)

    def anchor(self) -> int:
        indices = [index for _, _, index, _ in self.removed] or [
            index for _, _, index, _ in self.added
        ]
        return min(indices)

    def verify(
        self, max_support: int, atol: float, up_to_global_phase: bool
    ) -> None:
        support = tuple(sorted(self.support))
        if len(support) > max_support:
            self.verdict, self.deviation = _TOO_WIDE, 0.0
            return
        operator_before = _local_operator(self.removed_instructions(), support)
        operator_after = _local_operator(self.added_instructions(), support)
        if up_to_global_phase:
            operator_after = _strip_global_phase(
                operator_before, operator_after
            )
        self.deviation = float(
            np.max(np.abs(operator_before - operator_after))
        )
        self.verdict = _OK if self.deviation <= atol else _NOT_EQUIVALENT


def _hunk_sites(
    oi: int, removed: List[tuple], added: List[tuple]
) -> List[_Site]:
    """Split one diff hunk into qubit-connected initial sites."""
    parent: Dict[int, int] = {}

    def find(q: int) -> int:
        root = q
        while parent[root] != root:
            root = parent[root]
        while parent[q] != root:
            parent[q], q = root, parent[q]
        return root

    entries = removed + added
    for _, _, _, instruction in entries:
        qubits = instruction.qubits
        for q in qubits:
            parent.setdefault(q, q)
        for q in qubits[1:]:
            ra, rb = find(qubits[0]), find(q)
            if ra != rb:
                parent[rb] = ra

    sites: Dict[int, _Site] = {}
    for source, bucket in ((removed, 0), (added, 1)):
        for entry in source:
            instruction = entry[3]
            site = sites.setdefault(find(instruction.qubits[0]), _Site())
            site.support.update(instruction.qubits)
            site.min_oi = min(site.min_oi, oi)
            site.max_oi = max(site.max_oi, oi)
            (site.removed if bucket == 0 else site.added).append(entry)
    return list(sites.values())


def _structural_fixpoint(
    sites: List[_Site], gaps: List[tuple]
) -> List[tuple]:
    """Enforce the two soundness rules; returns the unabsorbed gaps.

    * A gap instruction positioned strictly inside a site's hunk window
      that shares a qubit with it is absorbed on both sides — the
      site's instructions do not commute past it.
    * Two sites whose windows overlap while their supports intersect
      merge — neither can be commuted out of the other's window.

    At the fixpoint, any two sites either act on disjoint qubits (they
    commute, so they factor in any interleaving) or occupy
    non-overlapping windows (they compose sequentially), and every
    unabsorbed gap commutes with every site it interleaves — so proving
    each site's before/after operators equal proves the segment
    products equal.
    """
    stable = False
    while not stable:
        stable = True
        remaining = []
        for gap in gaps:
            oi, _, _, instruction = gap
            qubits = set(instruction.qubits)
            home = None
            for site in sites:
                if site.min_oi < oi < site.max_oi and qubits & site.support:
                    home = site
                    break
            if home is None:
                remaining.append(gap)
                continue
            home.gaps.append(gap)
            home.support |= qubits
            home.verdict = None
            stable = False
        gaps = remaining
        i = 0
        while i < len(sites):
            j = i + 1
            while j < len(sites):
                a, b = sites[i], sites[j]
                if (
                    a.support & b.support
                    and a.min_oi <= b.max_oi
                    and b.min_oi <= a.max_oi
                ):
                    a.absorb(b)
                    sites.pop(j)
                    stable = False
                else:
                    j += 1
            i += 1
    return gaps


def _nearest_partner(site: _Site, sites: List[_Site]) -> Optional[_Site]:
    """The closest (by hunk-window distance) other site sharing a qubit."""
    best: Optional[_Site] = None
    best_distance = 1 << 60
    for other in sites:
        if other is site or not (site.support & other.support):
            continue
        distance = max(
            other.min_oi - site.max_oi, site.min_oi - other.max_oi, 0
        )
        if distance < best_distance:
            best, best_distance = other, distance
    return best


def _segment_sites(
    start_before: int,
    run_before: Sequence[Instruction],
    start_after: int,
    run_after: Sequence[Instruction],
    max_support: int,
    atol: float,
    up_to_global_phase: bool,
) -> List[_Site]:
    """The verified rewrite sites of one barrier-free segment pair.

    Aligns the runs with an LCS diff and splits each changed hunk into
    qubit-connected components — the initial sites, each verified as a
    local operator comparison.  A site that fails locally is not
    rejected outright: a pass may have cancelled a pair *across*
    unchanged gates on other qubits (which commute), leaving two
    separated half-sites that are only equivalent jointly.  Failing
    sites therefore escalate lazily — each merges with its nearest
    qubit-sharing site, the structural soundness rules re-run
    (:func:`_structural_fixpoint`), and the merged site re-verifies —
    until everything passes or no growth remains.  Escalation only ever
    merges sound factorizations, so a verdict of ``not-equivalent`` on
    the final partition means the segments genuinely disagree (or
    exceeded ``max_support``, reported as ``too-wide``).
    """
    matcher = difflib.SequenceMatcher(
        None, run_before, run_after, autojunk=False
    )
    gaps: List[tuple] = []  # (oi, offset, global index, instruction)
    sites: List[_Site] = []
    for oi, (tag, i1, i2, j1, j2) in enumerate(matcher.get_opcodes()):
        if tag == "equal":
            for offset, k in enumerate(range(i1, i2)):
                gaps.append((oi, offset, start_before + k, run_before[k]))
            continue
        removed = [
            (oi, offset, start_before + k, run_before[k])
            for offset, k in enumerate(range(i1, i2))
        ]
        added = [
            (oi, offset, start_after + k, run_after[k])
            for offset, k in enumerate(range(j1, j2))
        ]
        sites.extend(_hunk_sites(oi, removed, added))
    if not sites:
        return []

    while True:
        gaps = _structural_fixpoint(sites, gaps)
        for site in sites:
            if site.verdict is None:
                site.verify(max_support, atol, up_to_global_phase)
        grew = False
        for site in sites:
            if site.verdict != _NOT_EQUIVALENT:
                continue
            partner = _nearest_partner(site, sites)
            if partner is None:
                continue
            site.absorb(partner)
            sites.remove(partner)
            grew = True
            break
        if not grew:
            break
    sites.sort(key=lambda site: site.anchor())
    return sites


def _strip_global_phase(
    reference: np.ndarray, candidate: np.ndarray
) -> np.ndarray:
    """``candidate`` rephased onto ``reference`` at its largest entry."""
    flat_ref = reference.reshape(-1)
    pivot = int(np.argmax(np.abs(flat_ref)))
    ref_entry = flat_ref[pivot]
    cand_entry = candidate.reshape(-1)[pivot]
    if abs(ref_entry) < 1e-12 or abs(cand_entry) < 1e-12:
        return candidate
    phase = (cand_entry / ref_entry) / abs(cand_entry / ref_entry)
    return candidate / phase


def certify_rewrite(
    before: Circuit,
    after: Circuit,
    pass_name: str = "rewrite",
    *,
    max_support: int = DEFAULT_MAX_SUPPORT,
    atol: float = DEFAULT_ATOL,
    up_to_global_phase: bool = False,
) -> Certificate:
    """Prove ``after`` semantically equivalent to ``before``, or say why not.

    Parameters
    ----------
    before, after:
        The circuit a pass consumed and the circuit it produced.
    pass_name:
        Name recorded on the certificate.
    max_support:
        Widest rewrite-site support (qubits) to compare; wider sites
        fail with ``certify-support-width`` rather than being trusted.
    atol:
        Entrywise operator tolerance per site.
    up_to_global_phase:
        Accept sites differing by a global phase (for pipelines using
        ``DropIdentities(up_to_global_phase=True)``).

    Returns
    -------
    Certificate
        ``certified`` iff register widths match, the barrier
        subsequence is preserved verbatim, and every rewrite site's
        local operators agree within ``atol``.  Failure codes:
        ``certify-register-width``, ``certify-barrier-moved``,
        ``certify-support-width``, ``certify-not-equivalent``.
    """
    for label, value in (("before", before), ("after", after)):
        if not isinstance(value, Circuit):
            raise AnalysisError(
                f"certify_rewrite expects Circuits, got "
                f"{type(value).__name__} for {label!r}"
            )
    if max_support < 1:
        raise AnalysisError(f"max_support must be >= 1, got {max_support}")

    diagnostics: List[Diagnostic] = []
    if (
        before.num_qubits != after.num_qubits
        or before.num_clbits != after.num_clbits
    ):
        diagnostics.append(
            Diagnostic(
                ERROR,
                "certify-register-width",
                f"pass {pass_name!r} changed the register: "
                f"{before.num_qubits} qubits / {before.num_clbits} clbits "
                f"-> {after.num_qubits} qubits / {after.num_clbits} clbits",
            )
        )
        return Certificate(pass_name, FAILED, diagnostics=tuple(diagnostics))

    barriers_before, segments_before = _split_at_barriers(before)
    barriers_after, segments_after = _split_at_barriers(after)
    if barriers_before != barriers_after:
        site: Optional[int] = None
        detail = (
            f"{len(barriers_before)} -> {len(barriers_after)} barrier "
            f"instructions"
        )
        for index, (lhs, rhs) in enumerate(
            zip(barriers_before, barriers_after)
        ):
            if lhs != rhs:
                detail = (
                    f"barrier {index} changed from {_barrier_kind(lhs)} "
                    f"{lhs!r} to {_barrier_kind(rhs)} {rhs!r}"
                )
                break
        diagnostics.append(
            Diagnostic(
                ERROR,
                "certify-barrier-moved",
                f"pass {pass_name!r} rewrote the barrier subsequence "
                f"(channels/dynamic ops/parametric gates must be "
                f"preserved verbatim): {detail}",
                site=site,
            )
        )
        return Certificate(pass_name, FAILED, diagnostics=tuple(diagnostics))

    sites = 0
    widest = 0
    worst = 0.0
    for (start_before, run_before), (start_after, run_after) in zip(
        segments_before, segments_after
    ):
        for site_record in _segment_sites(
            start_before,
            run_before,
            start_after,
            run_after,
            max_support,
            atol,
            up_to_global_phase,
        ):
            sites += 1
            anchor = site_record.anchor()
            support = tuple(sorted(site_record.support))
            if site_record.verdict == _TOO_WIDE:
                diagnostics.append(
                    Diagnostic(
                        ERROR,
                        "certify-support-width",
                        f"pass {pass_name!r} rewrite site at "
                        f"instruction {anchor} spans "
                        f"{len(support)} qubits {support}, over the "
                        f"{max_support}-qubit certification cap; the "
                        f"rewrite is unproven",
                        site=anchor,
                    )
                )
                continue
            widest = max(widest, len(support))
            worst = max(worst, site_record.deviation)
            if site_record.verdict == _NOT_EQUIVALENT:
                diagnostics.append(
                    Diagnostic(
                        ERROR,
                        "certify-not-equivalent",
                        f"pass {pass_name!r} rewrite site at "
                        f"instruction {anchor} (qubits {support}) is "
                        f"not unitarily equivalent: max operator "
                        f"deviation {site_record.deviation:.3e} exceeds "
                        f"tolerance {atol:.1e}",
                        site=anchor,
                    )
                )

    status = FAILED if diagnostics else CERTIFIED
    return Certificate(
        pass_name,
        status,
        sites=sites,
        max_support=widest,
        max_deviation=worst,
        diagnostics=tuple(diagnostics),
    )


__all__ = [
    "CERTIFIED",
    "FAILED",
    "DEFAULT_MAX_SUPPORT",
    "DEFAULT_ATOL",
    "Certificate",
    "certify_rewrite",
]
