"""Runtime numerical sanitizers for the shared ``execute_plan`` loop.

Static analysis (:func:`~repro.analysis.analyze`,
:func:`~repro.analysis.verify_plan`) proves what can be proven before a
state is allocated; the sanitizer watches the invariants only the live
evolution can break — a NaN creeping out of a degenerate matrix, norm
drifting under a broken op tensor, a contraction silently promoting the
plan's dtype.  :class:`Sanitizer` hooks the tight loop in
:meth:`repro.sim.registry.BaseBackend.execute_plan` after every op,
so a violation is reported at the op that caused it, not at readout.

Modes (``RunOptions(sanitize=)``, env fallback ``REPRO_SANITIZE``):

- ``"off"`` — the default; ``execute_plan`` never imports this module.
- ``"warn"`` — findings collect as :class:`~repro.analysis.Diagnostic`
  objects (code prefix ``sanitize-``) and fire a :class:`SanitizerWarning`
  at the end of the evolution.
- ``"strict"`` — the first violation raises
  :class:`~repro.utils.exceptions.SanitizerError` mid-loop.

Checks cost one reduction over the state per op — useful for CI legs and
debugging sessions, which is why they are opt-in rather than ambient.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.circuit.ptm import pauli_vector_probabilities, pauli_vector_trace
from repro.utils.exceptions import SanitizerError

if TYPE_CHECKING:
    from repro.plan.plan import ExecutionPlan


class SanitizerWarning(RuntimeWarning):
    """Fired (once per evolution) when ``sanitize="warn"`` finds problems."""


def _norm_tolerance(dtype: np.dtype, num_ops: int) -> float:
    """Norm/trace drift budget scaled to dtype precision and circuit depth."""
    eps = float(np.finfo(np.dtype(dtype)).eps)
    return np.sqrt(eps) * 16.0 * max(1, num_ops)


class Sanitizer:
    """Per-evolution numerical watchdog (one instance per ``execute_plan``).

    The backend calls :meth:`after_op` behind every static op application
    and :meth:`finish` once the final tensor exists; dynamic plans (whose
    intermediate states live inside the branch bookkeeping) get the
    finish-time checks only.
    """

    __slots__ = ("_plan", "_mode", "_kind", "_tolerance", "diagnostics")

    def __init__(self, plan: "ExecutionPlan", mode: str) -> None:
        if mode not in ("warn", "strict"):
            raise SanitizerError(
                f"sanitizer runs in 'warn' or 'strict' mode, got {mode!r}"
            )
        self._plan = plan
        self._mode = mode
        # How to read weight/probabilities off the state tensor: pure
        # modes carry amplitudes, "density" a (2,)*2n matrix, "ptm" a
        # real (4,)*n Pauli component vector.
        if plan.mode in ("density", "ptm"):
            self._kind = plan.mode
        else:
            self._kind = "pure"
        self._tolerance = _norm_tolerance(plan.dtype, len(plan.ops))
        self.diagnostics: List[Diagnostic] = []

    @property
    def mode(self) -> str:
        return self._mode

    def _report(self, code: str, message: str, site: Optional[int]) -> None:
        diagnostic = Diagnostic(ERROR, code, message, site=site, scope="plan")
        self.diagnostics.append(diagnostic)
        if self._mode == "strict":
            raise SanitizerError(
                f"sanitizer violation during execute_plan: {diagnostic}",
                diagnostics=(diagnostic,),
            )

    def _weight(self, tensor: np.ndarray) -> float:
        """Total probability weight: <psi|psi> or tr(rho)."""
        if self._kind == "pure":
            return float(np.real(np.vdot(tensor, tensor)))
        if self._kind == "ptm":
            # tr(rho) lives entirely in the all-identity component.
            return pauli_vector_trace(tensor)
        n = self._plan.num_qubits
        matrix = tensor.reshape(1 << n, 1 << n)
        return float(np.real(np.trace(matrix)))

    def _check_tensor(self, tensor: np.ndarray, site: Optional[int], where: str) -> None:
        if tensor.dtype != self._plan.dtype:
            self._report(
                "sanitize-dtype-promotion",
                f"{where}: state dtype drifted to {tensor.dtype} from the "
                f"plan's {self._plan.dtype} — an op tensor was not cast at "
                f"compile time",
                site,
            )
            return
        if not np.all(np.isfinite(tensor)):
            self._report(
                "sanitize-non-finite",
                f"{where}: state contains NaN/Inf amplitudes",
                site,
            )
            return
        weight = self._weight(tensor)
        if abs(weight - 1.0) > self._tolerance:
            kind = "norm <psi|psi>" if self._kind == "pure" else "trace tr(rho)"
            self._report(
                "sanitize-norm-drift",
                f"{where}: {kind} = {weight:.12g} drifted from 1 by more "
                f"than {self._tolerance:.3e}",
                site,
            )

    def after_op(self, tensor: np.ndarray, site: int, op: Any) -> None:
        """Check the state right after static op ``site`` applied."""
        self._check_tensor(
            tensor, site, f"after op {site} ({type(op).__name__})"
        )

    def finish(self, tensor: np.ndarray) -> Tuple[Diagnostic, ...]:
        """Final-state checks; returns (and in warn mode, warns about) findings."""
        self._check_tensor(tensor, None, "final state")
        self._check_probabilities(tensor)
        found = tuple(self.diagnostics)
        if found and self._mode == "warn":
            summary = "; ".join(str(d) for d in found)
            warnings.warn(
                f"sanitizer found {len(found)} violation(s): {summary}",
                SanitizerWarning,
                stacklevel=2,
            )
        return found

    def _check_probabilities(self, tensor: np.ndarray) -> None:
        """Readout distribution must be non-negative and sum to one."""
        if self._kind == "pure":
            probabilities = np.abs(tensor.reshape(-1)) ** 2
        elif self._kind == "ptm":
            # Born probabilities come off the I/Z Pauli components; the
            # naive |r|**2 reading would flag every mixed state.
            probabilities = pauli_vector_probabilities(tensor).reshape(-1)
        else:
            n = self._plan.num_qubits
            probabilities = np.real(
                np.diagonal(tensor.reshape(1 << n, 1 << n))
            )
        total = float(probabilities.sum())
        negative = float(probabilities.min()) if probabilities.size else 0.0
        if negative < -self._tolerance:
            self._report(
                "sanitize-probability-sum",
                f"final state: readout distribution has a negative "
                f"probability ({negative:.3e})",
                None,
            )
            return
        if abs(total - 1.0) > self._tolerance:
            self._report(
                "sanitize-probability-sum",
                f"final state: readout probabilities sum to {total:.12g}, "
                f"off 1 by more than {self._tolerance:.3e}",
                None,
            )


def sanitize_batch(
    plan: "ExecutionPlan", batch: np.ndarray, mode: str
) -> Tuple[Diagnostic, ...]:
    """Finish-time checks over every element of a batched-sweep state.

    The batched sweep applies each op to all bindings in one contraction,
    so there is no per-op hook; instead each element of the final
    ``(N, 2, ..., 2)`` stack gets the final-state checks.  Returns every
    finding (strict mode raises at the first, like :class:`Sanitizer`).
    """
    diagnostics: List[Diagnostic] = []
    for index in range(batch.shape[0]):
        sanitizer = Sanitizer(plan, mode)
        sanitizer.diagnostics = diagnostics
        sanitizer._check_tensor(
            batch[index], None, f"batched sweep element {index} final state"
        )
        sanitizer._check_probabilities(batch[index])
    if diagnostics and mode == "warn":
        summary = "; ".join(str(d) for d in diagnostics)
        warnings.warn(
            f"sanitizer found {len(diagnostics)} violation(s): {summary}",
            SanitizerWarning,
            stacklevel=2,
        )
    return tuple(diagnostics)


__all__ = ["Sanitizer", "SanitizerWarning", "sanitize_batch"]
