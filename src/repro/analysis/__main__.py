"""CLI linter: ``python -m repro.analysis [--smoke] [--json] [--strict]``.

Runs :func:`repro.analysis.analyze` over every bench workload circuit
(plus the parametric sweep template), compiles each through
:func:`repro.plan.compile_plan` for its pinned backend, and verifies the
compiled plan with :func:`repro.analysis.verify_plan`.  Exits non-zero
when any error-severity diagnostic is found (``--strict`` also fails on
warnings) — CI runs this in the bench-smoke job so a rule regression or
a lowering bug blocks the merge, not the next benchmark run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis import AnalysisContext, analyze, verify_plan
from repro.bench.workloads import default_workloads, parameterized_rotations
from repro.circuit import Circuit
from repro.plan import compile_plan
from repro.sim import get_backend


def _lint_one(
    name: str, num_qubits: int, circuit: Circuit, backend_name: str
) -> dict:
    """Analyze one circuit + its compiled plan; one JSON-ready row."""
    backend = get_backend(backend_name)
    context = AnalysisContext(mode=backend.plan_mode)
    report = analyze(circuit, context=context)
    plan = compile_plan(circuit, backend)
    report = report + verify_plan(plan)
    return {
        "name": name,
        "num_qubits": num_qubits,
        "backend": backend_name,
        "plan_ops": len(plan),
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "infos": len(report.infos),
        "diagnostics": list(report.as_dicts()),
    }


def _collect(smoke: bool, backend: Optional[str]) -> List[dict]:
    rows = []
    for workload in default_workloads(smoke=smoke):
        backend_name = workload.backend or backend or "statevector"
        rows.append(
            _lint_one(
                workload.name,
                workload.num_qubits,
                workload.build(),
                backend_name,
            )
        )
    # The sweep template rides along: parametric slots exercise the
    # bindability checks no static workload reaches.
    n = 4 if smoke else 8
    template, _ = parameterized_rotations(n)
    rows.append(_lint_one("parameterized_rotations", n, template, "statevector"))
    return rows


def _format_table(rows: Sequence[dict]) -> Tuple[str, List[str]]:
    header = (
        f"{'workload':<26} {'n':>3} {'backend':>15} {'plan_ops':>8} "
        f"{'errors':>6} {'warnings':>8} {'infos':>5}"
    )
    lines = [header, "-" * len(header)]
    details: List[str] = []
    for row in rows:
        lines.append(
            f"{row['name']:<26} {row['num_qubits']:>3} {row['backend']:>15} "
            f"{row['plan_ops']:>8} {row['errors']:>6} {row['warnings']:>8} "
            f"{row['infos']:>5}"
        )
        for diagnostic in row["diagnostics"]:
            site = diagnostic["site"]
            noun = "instruction" if diagnostic["scope"] == "circuit" else "op"
            where = f" @ {noun} {site}" if site is not None else ""
            details.append(
                f"  {row['name']}(n={row['num_qubits']}): "
                f"{diagnostic['severity']}[{diagnostic['code']}]{where}: "
                f"{diagnostic['message']}"
            )
    return "\n".join(lines), details


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint the bench workload circuits and their compiled "
        "execution plans.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small/fast CI configuration (fewer qubits)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        help="default backend for workloads that do not pin one "
        "(default statevector)",
    )
    args = parser.parse_args(argv)

    rows = _collect(smoke=args.smoke, backend=args.backend)
    total_errors = sum(row["errors"] for row in rows)
    total_warnings = sum(row["warnings"] for row in rows)

    if args.json:
        print(
            json.dumps(
                {
                    "workloads": rows,
                    "total_errors": total_errors,
                    "total_warnings": total_warnings,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        table, details = _format_table(rows)
        print(table)
        for line in details:
            print(line)
        print(
            f"{len(rows)} circuit(s) linted: {total_errors} error(s), "
            f"{total_warnings} warning(s)"
        )

    if total_errors:
        print(
            f"static analysis found {total_errors} error(s)", file=sys.stderr
        )
        return 1
    if args.strict and total_warnings:
        print(
            f"static analysis found {total_warnings} warning(s) "
            f"(--strict)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
