"""CLI linter/certifier: ``python -m repro.analysis [--certify] [...]``.

Default mode runs :func:`repro.analysis.analyze` over every bench
workload circuit (plus the parametric sweep template), compiles each
through :func:`repro.plan.compile_plan` for its pinned backend, and
verifies the compiled plan with :func:`repro.analysis.verify_plan`.
Ruff-style ``--select`` / ``--ignore`` restrict the diagnostic codes,
``--severity CODE=LEVEL`` rewrites per-code severities, and the run
exits non-zero when any error-severity diagnostic is found (``--strict``
also fails on warnings).

``--certify`` switches modes: instead of linting, every workload (the
bench families — channel circuits included — plus the parametric sweep
template and a measure/reset/if_bit dynamic circuit) is transpiled
through the default pass pipeline under certification
(:func:`repro.analysis.certify_rewrite`), and the run exits non-zero if
any pass application cannot be *proven* semantically equivalent.  The
certifier only ever builds local operators on each rewrite's support
(never a dense ``2^n`` matrix), so this gate is cheap enough for CI:
the bench-smoke job runs both modes, blocking a rule regression, a
lowering bug, or an unsound rewrite at the merge, not the next
benchmark run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis import AnalysisContext, analyze, verify_plan
from repro.analysis.diagnostics import AnalysisReport
from repro.bench.workloads import default_workloads, parameterized_rotations
from repro.circuit import Circuit, Instruction
from repro.plan import compile_plan
from repro.sim import get_backend


def _lint_one(
    name: str,
    num_qubits: int,
    circuit: Circuit,
    backend_name: str,
    context_kwargs: dict,
) -> dict:
    """Analyze one circuit + its compiled plan; one JSON-ready row."""
    backend = get_backend(backend_name)
    context = AnalysisContext(mode=backend.plan_mode, **context_kwargs)
    report = analyze(circuit, context=context)
    plan = compile_plan(circuit, backend)
    # Plan-verifier findings honour the same select/ignore/severity
    # spec as the circuit rules (apply() is idempotent, so re-filtering
    # the combined report is safe).
    report = AnalysisReport(context.apply(report + verify_plan(plan)))
    return {
        "name": name,
        "num_qubits": num_qubits,
        "backend": backend_name,
        "plan_ops": len(plan),
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "infos": len(report.infos),
        "diagnostics": list(report.as_dicts()),
    }


def _dynamic_workload(num_qubits: int) -> Circuit:
    """A measure/reset/if_bit circuit exercising the dynamic-op barriers.

    Not part of :func:`default_workloads` (the bench suite times static
    evolution); built here so the certify gate always covers the
    dataflow-certificate path.
    """
    from repro.gates import get_gate

    circuit = Circuit(
        num_qubits, num_clbits=2, name=f"dynamic_feedback_{num_qubits}"
    )
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    circuit.rz(0.3, 0).rz(-0.3, 0)  # cancellable pair straddling nothing
    circuit.measure(0, 0)
    circuit.if_bit(0, 1, Instruction(get_gate("x"), (1,)))
    circuit.reset(0)
    circuit.h(1).h(1)  # identity pair in the post-measurement segment
    circuit.measure(1, 1)
    return circuit


def _certify_one(name: str, num_qubits: int, circuit: Circuit) -> dict:
    """Certify the default pipeline over one circuit; one JSON-ready row."""
    from repro.transpile import PassManager, default_passes
    from repro.utils.exceptions import CertificationError

    manager = PassManager(default_passes())
    failure: Optional[str] = None
    try:
        manager.run(circuit, certify=True)
    except CertificationError as exc:
        failure = str(exc)
    certificates = [
        stats["certificate"]
        for stats in manager.last_stats_dicts()
        if stats["certificate"] is not None
    ]
    return {
        "name": name,
        "num_qubits": num_qubits,
        "passes": len(certificates),
        "sites": sum(c["sites"] for c in certificates),
        "max_support": max(
            (c["max_support"] for c in certificates), default=0
        ),
        "max_deviation": max(
            (c["max_deviation"] for c in certificates), default=0.0
        ),
        "certified": failure is None
        and all(c["status"] == "certified" for c in certificates),
        "failure": failure,
        "certificates": certificates,
    }


def _collect(smoke: bool, backend: Optional[str], context_kwargs: dict) -> List[dict]:
    rows = []
    for workload in default_workloads(smoke=smoke):
        backend_name = workload.backend or backend or "statevector"
        rows.append(
            _lint_one(
                workload.name,
                workload.num_qubits,
                workload.build(),
                backend_name,
                context_kwargs,
            )
        )
    # The sweep template rides along: parametric slots exercise the
    # bindability checks no static workload reaches.
    n = 4 if smoke else 8
    template, _ = parameterized_rotations(n)
    rows.append(
        _lint_one("parameterized_rotations", n, template, "statevector", context_kwargs)
    )
    return rows


def _collect_certify(smoke: bool) -> List[dict]:
    rows = []
    for workload in default_workloads(smoke=smoke):
        rows.append(
            _certify_one(workload.name, workload.num_qubits, workload.build())
        )
    n = 4 if smoke else 8
    template, _ = parameterized_rotations(n)
    rows.append(_certify_one("parameterized_rotations", n, template))
    rows.append(_certify_one("dynamic_feedback", n, _dynamic_workload(n)))
    return rows


def _format_table(rows: Sequence[dict]) -> Tuple[str, List[str]]:
    header = (
        f"{'workload':<26} {'n':>3} {'backend':>15} {'plan_ops':>8} "
        f"{'errors':>6} {'warnings':>8} {'infos':>5}"
    )
    lines = [header, "-" * len(header)]
    details: List[str] = []
    for row in rows:
        lines.append(
            f"{row['name']:<26} {row['num_qubits']:>3} {row['backend']:>15} "
            f"{row['plan_ops']:>8} {row['errors']:>6} {row['warnings']:>8} "
            f"{row['infos']:>5}"
        )
        for diagnostic in row["diagnostics"]:
            site = diagnostic["site"]
            noun = "instruction" if diagnostic["scope"] == "circuit" else "op"
            where = f" @ {noun} {site}" if site is not None else ""
            details.append(
                f"  {row['name']}(n={row['num_qubits']}): "
                f"{diagnostic['severity']}[{diagnostic['code']}]{where}: "
                f"{diagnostic['message']}"
            )
    return "\n".join(lines), details


def _format_certify_table(rows: Sequence[dict]) -> Tuple[str, List[str]]:
    header = (
        f"{'workload':<26} {'n':>3} {'passes':>6} {'sites':>6} "
        f"{'max_support':>11} {'max_deviation':>14} {'status':>10}"
    )
    lines = [header, "-" * len(header)]
    details: List[str] = []
    for row in rows:
        status = "certified" if row["certified"] else "FAILED"
        lines.append(
            f"{row['name']:<26} {row['num_qubits']:>3} {row['passes']:>6} "
            f"{row['sites']:>6} {row['max_support']:>11} "
            f"{row['max_deviation']:>14.3e} {status:>10}"
        )
        if row["failure"]:
            details.append(
                f"  {row['name']}(n={row['num_qubits']}): {row['failure']}"
            )
    return "\n".join(lines), details


def _parse_severity(entries: Sequence[str]) -> dict:
    overrides = {}
    for entry in entries:
        code, sep, level = entry.partition("=")
        if not sep or not code or not level:
            raise SystemExit(
                f"--severity expects CODE=LEVEL (e.g. unused-qubit=error), "
                f"got {entry!r}"
            )
        overrides[code] = level
    return overrides


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint the bench workload circuits and their compiled "
        "execution plans, or (--certify) prove the default transpile "
        "pipeline semantically equivalent on them.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small/fast CI configuration (fewer qubits)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        help="default backend for workloads that do not pin one "
        "(default statevector)",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="certify the default transpile pipeline over every workload "
        "(plus a dynamic-op circuit) instead of linting",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODE",
        help="only report diagnostics with this code (repeatable; "
        "default: all codes)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODE",
        help="drop diagnostics with this code (repeatable; applied "
        "after --select)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override the severity of a diagnostic code "
        "(LEVEL: error, warning, info; repeatable)",
    )
    args = parser.parse_args(argv)

    if args.certify:
        rows = _collect_certify(smoke=args.smoke)
        failed = [row for row in rows if not row["certified"]]
        if args.json:
            print(
                json.dumps(
                    {"workloads": rows, "failed": len(failed)},
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            table, details = _format_certify_table(rows)
            print(table)
            for line in details:
                print(line)
            total_sites = sum(row["sites"] for row in rows)
            print(
                f"{len(rows)} circuit(s) certified: {total_sites} rewrite "
                f"site(s) proven, {len(failed)} failure(s)"
            )
        if failed:
            print(
                f"certification failed for {len(failed)} circuit(s)",
                file=sys.stderr,
            )
            return 1
        return 0

    context_kwargs = {
        "select": tuple(args.select),
        "ignore": tuple(args.ignore),
        "severity_overrides": _parse_severity(args.severity),
    }
    rows = _collect(
        smoke=args.smoke, backend=args.backend, context_kwargs=context_kwargs
    )
    total_errors = sum(row["errors"] for row in rows)
    total_warnings = sum(row["warnings"] for row in rows)

    if args.json:
        print(
            json.dumps(
                {
                    "workloads": rows,
                    "total_errors": total_errors,
                    "total_warnings": total_warnings,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        table, details = _format_table(rows)
        print(table)
        for line in details:
            print(line)
        print(
            f"{len(rows)} circuit(s) linted: {total_errors} error(s), "
            f"{total_warnings} warning(s)"
        )

    if total_errors:
        print(
            f"static analysis found {total_errors} error(s)", file=sys.stderr
        )
        return 1
    if args.strict and total_warnings:
        print(
            f"static analysis found {total_warnings} warning(s) "
            f"(--strict)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
