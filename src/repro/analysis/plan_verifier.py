"""Static verification of compiled :class:`~repro.plan.ExecutionPlan` ops.

Plans are pickled across process pools and executed in a tight loop that
trusts every precomputed field — a lowering bug (or a corrupted pickle)
otherwise surfaces as a numpy axis error deep inside a worker shard, or
worse, as silently wrong amplitudes.  :func:`verify_plan` re-derives what
each op's fields *must* look like from first principles (tensor rank vs.
target count, contraction axes vs. rank, clbit indices vs. register
width, slot symbols vs. plan parameters) and reports every violation as
an error-severity :class:`~repro.analysis.diagnostics.Diagnostic` with a
stable ``plan-*`` code.

Diagnostic codes
----------------
- ``plan-mode-mismatch``  — op type foreign to the plan's lowering mode
- ``plan-target-range``   — target qubit out of range / duplicated
- ``plan-shape-mismatch`` — tensor not ``(2,) * 2k`` for a ``k``-qubit op
  (``(4,) * 2k`` real for the Pauli-transfer ops of ``"ptm"`` plans)
- ``plan-axis-range``     — contraction/batch axes inconsistent with rank
- ``plan-dtype-mismatch`` — op tensor dtype differs from the plan dtype
- ``plan-clbit-range``    — clbit index outside ``[0, num_clbits)`` or a
  conditional value outside ``{0, 1}``
- ``plan-width-mismatch`` — an op's cached register width disagrees with
  the plan's
- ``plan-unknown-gate``   — a parametric slot naming an unregistered gate
  (or one of the wrong arity)
- ``plan-unbound-symbol`` — a slot whose symbols the plan cannot bind
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.analysis.diagnostics import ERROR, AnalysisReport, Diagnostic
from repro.plan.plan import (
    DENSITY,
    PTM,
    STATEVECTOR,
    TRAJECTORY,
    ConditionalOp,
    DensityKrausOp,
    DensityUnitaryOp,
    ExecutionPlan,
    MeasureOp,
    ParametricSlotOp,
    PTMOp,
    ResetOp,
    TrajectoryKrausOp,
    UnitaryOp,
)
from repro.utils.exceptions import AnalysisError

_PURE_MODES = (STATEVECTOR, TRAJECTORY)

#: Static (non-dynamic) op types legal per lowering mode.  Dynamic ops
#: (measure/reset/conditional) are legal everywhere; trajectory Kraus
#: sampling only on the trajectory engine.
_MODE_OPS = {
    STATEVECTOR: (UnitaryOp, ParametricSlotOp, MeasureOp, ResetOp, ConditionalOp),
    TRAJECTORY: (
        UnitaryOp,
        ParametricSlotOp,
        MeasureOp,
        ResetOp,
        ConditionalOp,
        TrajectoryKrausOp,
    ),
    DENSITY: (
        DensityUnitaryOp,
        DensityKrausOp,
        ParametricSlotOp,
        MeasureOp,
        ResetOp,
        ConditionalOp,
    ),
    # PTM lowering rejects dynamic circuits outright, so only the fused
    # Pauli-transfer ops and parametric slots can appear.
    PTM: (PTMOp, ParametricSlotOp),
}


def _error(code: str, message: str, site: Optional[int]) -> Diagnostic:
    return Diagnostic(ERROR, code, message, site=site, scope="plan")


def _check_targets(
    targets: Sequence[int], num_qubits: int, label: str, site: int
) -> Iterator[Diagnostic]:
    """Targets must be distinct qubit indices inside the register."""
    bad = [t for t in targets if not (0 <= int(t) < num_qubits)]
    if bad:
        yield _error(
            "plan-target-range",
            f"{label}: target qubit(s) {bad} out of range for "
            f"{num_qubits} qubits",
            site,
        )
    if len(set(targets)) != len(targets):
        yield _error(
            "plan-target-range",
            f"{label}: duplicate target qubits {tuple(targets)}",
            site,
        )


def _check_tensor(
    tensor: np.ndarray,
    k: int,
    dtype: np.dtype,
    label: str,
    site: int,
    base: int = 2,
) -> Iterator[Diagnostic]:
    """A gate/Kraus tensor must be ``(base,) * 2k`` in the plan dtype.

    ``base`` is 2 for amplitude-space ops and 4 for the Pauli-transfer
    ops of ``"ptm"`` plans (one axis per 4-valued Pauli digit).
    """
    expected = (base,) * (2 * k)
    shape = getattr(tensor, "shape", None)
    if shape != expected:
        yield _error(
            "plan-shape-mismatch",
            f"{label}: tensor shape {shape} where {expected} is required "
            f"for {k} target(s)",
            site,
        )
        return
    if tensor.dtype != dtype:
        yield _error(
            "plan-dtype-mismatch",
            f"{label}: tensor dtype {tensor.dtype} differs from the plan "
            f"dtype {dtype}",
            site,
        )


def _check_contraction_axes(
    op: object, k: int, label: str, site: int
) -> Iterator[Diagnostic]:
    """``in_axes``/``out_axes`` must be the canonical halves of a 2k tensor."""
    if tuple(op.in_axes) != tuple(range(k, 2 * k)):
        yield _error(
            "plan-axis-range",
            f"{label}: in_axes {tuple(op.in_axes)} where "
            f"{tuple(range(k, 2 * k))} is required",
            site,
        )
    if tuple(op.out_axes) != tuple(range(k)):
        yield _error(
            "plan-axis-range",
            f"{label}: out_axes {tuple(op.out_axes)} where "
            f"{tuple(range(k))} is required",
            site,
        )


def _check_unitary(
    op: UnitaryOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    label = f"unitary {op.name!r}"
    k = len(op.targets)
    yield from _check_targets(op.targets, plan.num_qubits, label, site)
    yield from _check_tensor(op.tensor, k, plan.dtype, label, site)
    yield from _check_contraction_axes(op, k, label, site)
    if tuple(op.batch_targets) != tuple(t + 1 for t in op.targets):
        yield _error(
            "plan-axis-range",
            f"{label}: batch_targets {tuple(op.batch_targets)} are not the "
            f"targets shifted past the sweep axis",
            site,
        )


def _check_ptm(
    op: PTMOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    label = f"PTM {op.name!r}"
    k = len(op.targets)
    yield from _check_targets(op.targets, plan.num_qubits, label, site)
    yield from _check_tensor(op.tensor, k, plan.dtype, label, site, base=4)
    yield from _check_contraction_axes(op, k, label, site)


def _check_density_unitary(
    op: DensityUnitaryOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    label = f"density unitary {op.name!r}"
    k = len(op.row_targets)
    yield from _check_targets(op.row_targets, plan.num_qubits, label, site)
    expected_cols = tuple(plan.num_qubits + t for t in op.row_targets)
    if tuple(op.col_targets) != expected_cols:
        yield _error(
            "plan-axis-range",
            f"{label}: col_targets {tuple(op.col_targets)} where "
            f"{expected_cols} is required (row targets shifted by "
            f"num_qubits)",
            site,
        )
    yield from _check_tensor(op.tensor, k, plan.dtype, label, site)
    yield from _check_tensor(
        op.conj_tensor, k, plan.dtype, f"{label} (conjugate)", site
    )
    yield from _check_contraction_axes(op, k, label, site)


def _check_kraus_family(
    op: object,
    targets: Sequence[int],
    plan: ExecutionPlan,
    site: int,
    conjugates: Optional[Sequence[np.ndarray]] = None,
) -> Iterator[Diagnostic]:
    label = f"Kraus {op.name!r}"
    k = len(targets)
    yield from _check_targets(targets, plan.num_qubits, label, site)
    if not op.tensors:
        yield _error(
            "plan-shape-mismatch", f"{label}: empty Kraus operator set", site
        )
        return
    for position, tensor in enumerate(op.tensors):
        yield from _check_tensor(
            tensor, k, plan.dtype, f"{label} operator {position}", site
        )
    if conjugates is not None and len(conjugates) != len(op.tensors):
        yield _error(
            "plan-shape-mismatch",
            f"{label}: {len(conjugates)} conjugate tensor(s) for "
            f"{len(op.tensors)} Kraus operator(s)",
            site,
        )
    yield from _check_contraction_axes(op, k, label, site)


def _check_slot(
    op: ParametricSlotOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    from repro.gates.registry import available_gates, gate_arity

    label = f"parametric slot {op.gate_name!r}"
    yield from _check_targets(op.targets, plan.num_qubits, label, site)
    if op.gate_name not in available_gates():
        yield _error(
            "plan-unknown-gate",
            f"{label}: gate is not in the registry; binding will fail",
            site,
        )
    elif gate_arity(op.gate_name) != len(op.targets):
        yield _error(
            "plan-unknown-gate",
            f"{label}: registry arity {gate_arity(op.gate_name)} but the "
            f"slot targets {len(op.targets)} qubit(s)",
            site,
        )
    bindable = {parameter.name for parameter in plan.parameters}
    unbound = [
        parameter.name
        for parameter in op.parameters
        if parameter.name not in bindable
    ]
    if unbound:
        yield _error(
            "plan-unbound-symbol",
            f"{label}: symbol(s) {unbound} are not among the plan "
            f"parameters {sorted(bindable)}; the slot can never bind",
            site,
        )


def _check_measure(
    op: MeasureOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    label = "measure"
    yield from _check_targets((op.qubit,), plan.num_qubits, label, site)
    if not (0 <= op.clbit < plan.num_clbits):
        yield _error(
            "plan-clbit-range",
            f"{label}: clbit {op.clbit} out of range for a "
            f"{plan.num_clbits}-clbit register",
            site,
        )
    if op.num_qubits != plan.num_qubits:
        yield _error(
            "plan-width-mismatch",
            f"{label}: op caches num_qubits={op.num_qubits} but the plan "
            f"has {plan.num_qubits}",
            site,
        )


def _check_reset(
    op: ResetOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    yield from _check_targets((op.qubit,), plan.num_qubits, "reset", site)
    if op.num_qubits != plan.num_qubits:
        yield _error(
            "plan-width-mismatch",
            f"reset: op caches num_qubits={op.num_qubits} but the plan has "
            f"{plan.num_qubits}",
            site,
        )


def _check_conditional(
    op: ConditionalOp, plan: ExecutionPlan, site: int
) -> Iterator[Diagnostic]:
    if not (0 <= op.clbit < plan.num_clbits):
        yield _error(
            "plan-clbit-range",
            f"conditional: clbit {op.clbit} out of range for a "
            f"{plan.num_clbits}-clbit register",
            site,
        )
    if op.value not in (0, 1):
        yield _error(
            "plan-clbit-range",
            f"conditional: branch value {op.value!r} is not a bit",
            site,
        )
    inner = op.inner
    if plan.mode in _PURE_MODES:
        if isinstance(inner, UnitaryOp):
            yield from _check_unitary(inner, plan, site)
        else:
            yield _error(
                "plan-mode-mismatch",
                f"conditional: inner op {type(inner).__name__} is not a "
                f"UnitaryOp in a {plan.mode} plan",
                site,
            )
    else:
        if isinstance(inner, DensityUnitaryOp):
            yield from _check_density_unitary(inner, plan, site)
        else:
            yield _error(
                "plan-mode-mismatch",
                f"conditional: inner op {type(inner).__name__} is not a "
                f"DensityUnitaryOp in a {plan.mode} plan",
                site,
            )


def _verify_ops(plan: ExecutionPlan) -> Iterator[Diagnostic]:
    allowed = _MODE_OPS[plan.mode]
    for site, op in enumerate(plan.ops):
        if not isinstance(op, allowed):
            yield _error(
                "plan-mode-mismatch",
                f"op {type(op).__name__} is not legal in a "
                f"{plan.mode} plan",
                site,
            )
            continue
        if isinstance(op, UnitaryOp):
            yield from _check_unitary(op, plan, site)
        elif isinstance(op, PTMOp):
            yield from _check_ptm(op, plan, site)
        elif isinstance(op, DensityUnitaryOp):
            yield from _check_density_unitary(op, plan, site)
        elif isinstance(op, DensityKrausOp):
            yield from _check_kraus_family(
                op, op.row_targets, plan, site, conjugates=op.conj_tensors
            )
            expected_cols = tuple(plan.num_qubits + t for t in op.row_targets)
            if tuple(op.col_targets) != expected_cols:
                yield _error(
                    "plan-axis-range",
                    f"Kraus {op.name!r}: col_targets "
                    f"{tuple(op.col_targets)} where {expected_cols} is "
                    f"required",
                    site,
                )
        elif isinstance(op, TrajectoryKrausOp):
            yield from _check_kraus_family(op, op.targets, plan, site)
        elif isinstance(op, ParametricSlotOp):
            yield from _check_slot(op, plan, site)
        elif isinstance(op, MeasureOp):
            yield from _check_measure(op, plan, site)
        elif isinstance(op, ResetOp):
            yield from _check_reset(op, plan, site)
        elif isinstance(op, ConditionalOp):
            yield from _check_conditional(op, plan, site)


def verify_plan(plan: ExecutionPlan) -> AnalysisReport:
    """Statically check every op of a compiled plan; errors only.

    A clean plan returns an empty report.  Callers wanting an exception
    chain ``verify_plan(plan).raise_if_errors("plan")``.  The checks are
    pure reads — the plan is never executed or mutated — so verifying a
    parametric template is just as valid as verifying a bound plan.
    """
    if not isinstance(plan, ExecutionPlan):
        raise AnalysisError(
            f"verify_plan expects an ExecutionPlan, got {type(plan).__name__}"
        )
    diagnostics: List[Diagnostic] = []
    if plan.mode not in _MODE_OPS:
        diagnostics.append(
            _error(
                "plan-mode-mismatch",
                f"unknown plan mode {plan.mode!r}; expected one of "
                f"{sorted(_MODE_OPS)}",
                None,
            )
        )
        return AnalysisReport(diagnostics)
    if plan.num_qubits < 1:
        diagnostics.append(
            _error(
                "plan-width-mismatch",
                f"plan declares {plan.num_qubits} qubits; at least 1 is "
                f"required",
                None,
            )
        )
    if plan.num_clbits < 0:
        diagnostics.append(
            _error(
                "plan-clbit-range",
                f"plan declares a negative classical register "
                f"({plan.num_clbits} clbits)",
                None,
            )
        )
    names = [parameter.name for parameter in plan.parameters]
    if len(set(names)) != len(names):
        diagnostics.append(
            _error(
                "plan-unbound-symbol",
                f"plan parameters carry duplicate symbol names {names}",
                None,
            )
        )
    diagnostics.extend(_verify_ops(plan))
    return AnalysisReport(diagnostics)


__all__ = ["verify_plan"]
