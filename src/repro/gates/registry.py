"""Gate registry: name -> (arity, parameter count, matrix builder).

The registry decouples gate *identity* (a name plus bound parameters) from
gate *representation* (the unitary matrix).  Builders are plain functions
``(*params) -> ndarray``; constructed :class:`Gate` objects are cached per
``(name, params)`` so hot loops building many circuits share matrices.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Tuple

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.parameter import Parameter
from repro.utils.exceptions import CircuitError

MatrixBuilder = Callable[..., np.ndarray]
# Maps a gate's bound params to the (name, params) of its registered adjoint.
InverseRule = Callable[..., Tuple[str, Tuple[float, ...]]]

_REGISTRY: Dict[str, Tuple[int, int, MatrixBuilder, "InverseRule | None"]] = {}
# LRU-bounded: variational workloads construct gates with ever-fresh angles,
# so an uncapped cache would grow for the life of the process.
_GATE_CACHE: "OrderedDict[Tuple[str, Tuple[float, ...]], Gate]" = OrderedDict()
_GATE_CACHE_MAX = 4096


def register_gate(
    name: str,
    num_qubits: int,
    num_params: int,
    builder: MatrixBuilder,
    inverse: "InverseRule | None" = None,
) -> None:
    """Register ``builder`` as the matrix constructor for gate ``name``.

    ``inverse``, when given, maps this gate's bound params to the
    ``(name, params)`` of its registered adjoint (e.g. ``rx`` -> ``rx`` with
    a negated angle), keeping ``Circuit.inverse()`` output resolvable through
    the registry.  Re-registering an existing name raises
    :class:`CircuitError`; the registry is a process-wide namespace and silent
    replacement would invalidate cached gates already embedded in circuits.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise CircuitError(f"gate {name!r} is already registered")
    if num_qubits < 1:
        raise CircuitError(f"gate arity must be >= 1, got {num_qubits}")
    if num_params < 0:
        raise CircuitError(f"parameter count must be >= 0, got {num_params}")
    _REGISTRY[key] = (num_qubits, num_params, builder, inverse)


def available_gates() -> Tuple[str, ...]:
    """Registered gate names, sorted."""
    return tuple(sorted(_REGISTRY))


def gate_arity(name: str) -> int:
    """Number of qubits gate ``name`` acts on."""
    try:
        return _REGISTRY[name.lower()][0]
    except KeyError:
        raise CircuitError(f"unknown gate {name!r}") from None


def resolve_inverse(name: str, params: Tuple[float, ...]) -> "Gate | None":
    """The registered adjoint of ``(name, params)``, or ``None`` if no rule.

    Used by :meth:`Gate.inverse` so inverted circuits stay expressed in
    registry-resolvable ``(name, params)`` pairs.
    """
    entry = _REGISTRY.get(name.lower())
    if (
        entry is None
        or entry[3] is None
        or len(params) != entry[1]
        # Unbound parameters have no adjoint rule to evaluate.
        or any(isinstance(p, Parameter) for p in params)
    ):
        return None
    inverse_name, inverse_params = entry[3](*params)
    return get_gate(inverse_name, *inverse_params)


def get_gate(name: str, *params: "float | Parameter") -> Gate:
    """Construct (or fetch from cache) the gate ``name`` with ``params``.

    Any parameter may be a symbolic :class:`~repro.circuit.Parameter`; the
    resulting gate is then *parametric* — it carries no matrix until
    :meth:`Circuit.bind` substitutes values and re-resolves it here.
    """
    key = name.lower()
    try:
        num_qubits, num_params, builder, _inverse = _REGISTRY[key]
    except KeyError:
        raise CircuitError(
            f"unknown gate {name!r}; available: {', '.join(available_gates())}"
        ) from None
    if len(params) != num_params:
        raise CircuitError(
            f"gate {name!r} takes {num_params} parameter(s), got {len(params)}"
        )
    bound = tuple(
        p if isinstance(p, Parameter) else float(p) for p in params
    )
    cache_key = (key, bound)
    gate = _GATE_CACHE.get(cache_key)
    if gate is None:
        if any(isinstance(p, Parameter) for p in bound):
            # Deferred gate: identity is (name, params) as usual, the
            # matrix build waits for Circuit.bind to re-resolve here.
            gate = Gate(key, num_qubits, None, bound)
        else:
            gate = Gate(key, num_qubits, builder(*bound), bound)
        _GATE_CACHE[cache_key] = gate
        if len(_GATE_CACHE) > _GATE_CACHE_MAX:
            _GATE_CACHE.popitem(last=False)
    else:
        _GATE_CACHE.move_to_end(cache_key)
    return gate
