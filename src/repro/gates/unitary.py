"""Explicit-matrix ``unitary`` gates: arbitrary unitaries outside the registry.

The registry maps a *name* plus bound parameters to a matrix; a unitary
gate is the opposite direction — a caller (user code, or the fusion pass)
already has the matrix and just needs it carried through the IR.  Such
gates are not registered: two ``unitary`` gates compare equal only if
their matrices match element-wise.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import Gate
from repro.utils.exceptions import CircuitError

_ATOL = 1e-8


def unitary_gate(
    matrix: np.ndarray, name: str = "unitary", validate: bool = True, atol: float = _ATOL
) -> Gate:
    """Wrap an explicit ``2**k x 2**k`` matrix as a :class:`Gate`.

    Parameters
    ----------
    matrix:
        The unitary; its width determines the gate arity (the matrix must
        be square with a power-of-two dimension >= 2).
    name:
        Gate mnemonic, ``"unitary"`` by default.
    validate:
        When true (default), reject matrices that are not unitary within
        ``atol``.  Internal callers composing products of known unitaries
        (e.g. gate fusion) pass ``False`` to skip the O(8**k) check.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise CircuitError(f"unitary matrix must be square, got shape {matrix.shape}")
    dim = matrix.shape[0]
    num_qubits = int(dim).bit_length() - 1
    if dim < 2 or (1 << num_qubits) != dim:
        raise CircuitError(
            f"unitary matrix dimension {dim} is not a power of two >= 2"
        )
    gate = Gate(name, num_qubits, matrix)
    if validate and not gate.is_unitary(atol=atol):
        raise CircuitError(f"matrix is not unitary within atol={atol}")
    return gate
