"""Registry-backed standard gate library.

``get_gate("h")`` / ``get_gate("rz", theta)`` construct :class:`~repro.circuit.Gate`
objects from registered matrix builders, caching each distinct
``(name, params)`` combination so repeated circuit construction never
re-allocates matrices.
"""

from repro.gates.registry import (
    available_gates,
    gate_arity,
    get_gate,
    register_gate,
)
from repro.gates.unitary import unitary_gate
from repro.gates import library as _library  # registers the standard gates

__all__ = [
    "available_gates",
    "gate_arity",
    "get_gate",
    "register_gate",
    "unitary_gate",
]

del _library
