"""Standard gate matrices, registered into :mod:`repro.gates.registry`.

Matrix index convention (see ``repro.utils.bitstrings``): for a multi-qubit
gate the first qubit passed to :meth:`Circuit.append` is the most significant
bit of the row/column index, so CX below has its *control* first.
"""

from __future__ import annotations

import numpy as np

from repro.gates.registry import register_gate

_SQRT2_INV = 1.0 / np.sqrt(2.0)


def _x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _y() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _h() -> np.ndarray:
    return np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV


def _s() -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _sdg() -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _t() -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)


def _tdg() -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex)


def _rx(theta: float) -> np.ndarray:
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    phase = np.exp(0.5j * theta)
    return np.array([[phase.conjugate(), 0], [0, phase]], dtype=complex)


def _phase(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    return np.array(
        [
            [cos, -np.exp(1j * lam) * sin],
            [np.exp(1j * phi) * sin, np.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def _cx() -> np.ndarray:
    # Control is the most significant index bit (first qubit of the instruction).
    return np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    )


def _cz() -> np.ndarray:
    return np.diag([1, 1, 1, -1]).astype(complex)


def _swap() -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def _identity() -> np.ndarray:
    return np.eye(2, dtype=complex)


# Self-adjoint gates need no inverse rule: Gate.inverse() keeps their name.
register_gate("id", 1, 0, _identity)
register_gate("x", 1, 0, _x)
register_gate("y", 1, 0, _y)
register_gate("z", 1, 0, _z)
register_gate("h", 1, 0, _h)
register_gate("s", 1, 0, _s, inverse=lambda: ("sdg", ()))
register_gate("sdg", 1, 0, _sdg, inverse=lambda: ("s", ()))
register_gate("t", 1, 0, _t, inverse=lambda: ("tdg", ()))
register_gate("tdg", 1, 0, _tdg, inverse=lambda: ("t", ()))
register_gate("rx", 1, 1, _rx, inverse=lambda theta: ("rx", (-theta,)))
register_gate("ry", 1, 1, _ry, inverse=lambda theta: ("ry", (-theta,)))
register_gate("rz", 1, 1, _rz, inverse=lambda theta: ("rz", (-theta,)))
register_gate("p", 1, 1, _phase, inverse=lambda lam: ("p", (-lam,)))
# u3(theta, phi, lam)^dagger = u3(-theta, -lam, -phi): phi and lam swap.
register_gate("u3", 1, 3, _u3, inverse=lambda t, p, l: ("u3", (-t, -l, -p)))
register_gate("cx", 2, 0, _cx)
register_gate("cz", 2, 0, _cz)
register_gate("swap", 2, 0, _swap)
