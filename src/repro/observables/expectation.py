"""Expectation values of Pauli observables on simulated states.

Statevectors and density matrices are handled by the same contraction
strategy the simulators use: each non-identity 2x2 Pauli factor is
applied to the state's ``(2,) * n`` (or ``(2,) * 2n``) tensor with
:func:`~repro.sim.apply_gate_tensor`, and the scalar falls out of a
``vdot`` (pure states, ``<psi|P|psi>``) or a trace (mixed states,
``tr(rho P)``).  Cost is O(2**n) per factor for statevectors and
O(4**n) for density matrices — a dense ``2**n x 2**n`` observable matrix
is never built.

:class:`~repro.sim.PauliVector` states are cheaper still: the state *is*
its Pauli expansion, so ``<P>`` is a single component lookup scaled by
``sqrt(2**n)`` — O(1) per Pauli string after the index is assembled.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.observables.pauli import PAULI_MATRICES, Pauli, PauliSum
from repro.sim.backend import apply_gate_tensor
from repro.sim.density import DensityMatrix
from repro.sim.ptm import PauliVector
from repro.sim.statevector import Statevector
from repro.utils.exceptions import ExecutionError

State = Union[Statevector, DensityMatrix, PauliVector]
Observable = Union[Pauli, PauliSum]

# Pauli-basis digit of each non-identity factor (0 is the identity).
_PAULI_DIGITS = {"X": 1, "Y": 2, "Z": 3}


def _check_width(state: State, pauli: Pauli) -> None:
    if pauli.min_width > state.num_qubits:
        raise ExecutionError(
            f"observable acts on qubit {pauli.min_width - 1}, but the state "
            f"has only {state.num_qubits} qubit(s)"
        )


def _pauli_expectation(state: State, pauli: Pauli) -> float:
    _check_width(state, pauli)
    if isinstance(state, PauliVector):
        # tr(rho P) = r[index] * sqrt(2**n): the state already stores its
        # normalised-Pauli components, so the expectation is one lookup.
        n = state.num_qubits
        index = [0] * n
        for qubit, factor in pauli.factors:
            index[qubit] = _PAULI_DIGITS[factor]
        return float(state.tensor()[tuple(index)] * 2.0 ** (n / 2.0))
    if isinstance(state, Statevector):
        applied = state.tensor()
        for qubit, factor in pauli.factors:
            applied = apply_gate_tensor(applied, PAULI_MATRICES[factor], (qubit,))
        value = complex(np.vdot(state.tensor(), applied))
    else:
        # tr(rho P): contract each factor onto the row axes, then trace.
        n = state.num_qubits
        applied = state.tensor()
        for qubit, factor in pauli.factors:
            applied = apply_gate_tensor(applied, PAULI_MATRICES[factor], (qubit,))
        value = complex(np.trace(applied.reshape(1 << n, 1 << n)))
    # <P> of a Hermitian string is real; the residual imaginary part is
    # floating-point noise and is dropped.
    return float(value.real)


def _check_batch_width(num_qubits: int, pauli: Pauli) -> None:
    if pauli.min_width > num_qubits:
        raise ExecutionError(
            f"observable acts on qubit {pauli.min_width - 1}, but the batch "
            f"states have only {num_qubits} qubit(s)"
        )


def _pauli_expectation_batched(states: np.ndarray, pauli: Pauli) -> np.ndarray:
    num_qubits = states.ndim - 1
    _check_batch_width(num_qubits, pauli)
    applied = states
    for qubit, factor in pauli.factors:
        # Contract the 2x2 factor onto the (shifted) qubit axis of every
        # batch element at once; axis 0 stays the batch axis throughout.
        tensor = np.asarray(PAULI_MATRICES[factor], dtype=states.dtype)
        applied = np.moveaxis(
            np.tensordot(tensor, applied, axes=((1,), (qubit + 1,))),
            0,
            qubit + 1,
        )
    points = states.shape[0]
    values = np.einsum(
        "ni,ni->n", states.conj().reshape(points, -1), applied.reshape(points, -1)
    )
    return values.real.astype(np.float64)


def expectation_batched(states: np.ndarray, observable: Observable) -> np.ndarray:
    """Per-element ``<O>`` over a batch of pure states, in one contraction.

    Parameters
    ----------
    states:
        An ``(N,) + (2,) * n`` array of statevector tensors — axis 0 is
        the batch (sweep-point) axis, exactly the layout produced by
        :func:`repro.plan.run_batched_sweep`.
    observable:
        A :class:`Pauli` string or real-weighted :class:`PauliSum`.

    Returns
    -------
    numpy.ndarray
        ``N`` real expectation values, one per batch element, each equal
        (to floating point) to ``expectation(Statevector(states[i]), observable)``.
    """
    states = np.asarray(states)
    if states.ndim < 2 or any(d != 2 for d in states.shape[1:]):
        raise ExecutionError(
            f"expected an (N, 2, ..., 2) batch of state tensors, got "
            f"shape {states.shape}"
        )
    if not np.iscomplexobj(states):
        # Promote real batches up front: casting Pauli factors *down* to a
        # real dtype would silently zero Y's purely imaginary entries.
        states = states.astype(np.complex128)
    if isinstance(observable, Pauli):
        return _pauli_expectation_batched(states, observable)
    if isinstance(observable, PauliSum):
        total = np.zeros(states.shape[0], dtype=np.float64)
        for coefficient, pauli in observable.terms:
            total += coefficient * _pauli_expectation_batched(states, pauli)
        return total
    raise ExecutionError(
        f"cannot interpret {type(observable).__name__} as an observable; "
        "expected a Pauli or PauliSum"
    )


def expectation(state: State, observable: Observable) -> float:
    """``<O>`` of ``observable`` in ``state``.

    Parameters
    ----------
    state:
        A :class:`~repro.sim.Statevector` (``<psi|O|psi>``), a
        :class:`~repro.sim.DensityMatrix` (``tr(rho O)``), or a
        :class:`~repro.sim.PauliVector` (component lookup).
    observable:
        A :class:`Pauli` string or real-weighted :class:`PauliSum`.
    """
    if not isinstance(state, (Statevector, DensityMatrix, PauliVector)):
        raise ExecutionError(
            f"cannot take an expectation on {type(state).__name__}; "
            "expected a Statevector, DensityMatrix, or PauliVector"
        )
    if isinstance(observable, Pauli):
        return _pauli_expectation(state, observable)
    if isinstance(observable, PauliSum):
        return float(
            sum(c * _pauli_expectation(state, p) for c, p in observable.terms)
        )
    raise ExecutionError(
        f"cannot interpret {type(observable).__name__} as an observable; "
        "expected a Pauli or PauliSum"
    )
