"""Observable layer: Pauli strings, Pauli sums, and expectation values.

The physically central query "what is ``<O>`` in this state?" lives here:
:class:`Pauli` / :class:`PauliSum` describe the observable,
:func:`expectation` evaluates it on either simulated state type by
tensordot contraction — never through a dense ``2**n x 2**n`` matrix.
"""

from repro.observables.expectation import expectation, expectation_batched
from repro.observables.pauli import PAULI_MATRICES, Pauli, PauliSum

__all__ = [
    "PAULI_MATRICES",
    "Pauli",
    "PauliSum",
    "expectation",
    "expectation_batched",
]
