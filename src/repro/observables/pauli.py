"""Pauli-string observables: :class:`Pauli` and :class:`PauliSum`.

A :class:`Pauli` is a tensor product of single-qubit Pauli factors
(``I``, ``X``, ``Y``, ``Z``) on named qubit indices; a :class:`PauliSum`
is a real-weighted sum of such strings — the standard sparse form of a
Hermitian observable.  Neither ever materialises its ``2**n x 2**n``
matrix: expectation values are computed by contracting the 2x2 factors
onto the state tensor (see :func:`repro.observables.expectation`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.exceptions import ExecutionError

PAULI_MATRICES: Dict[str, np.ndarray] = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}
for _matrix in PAULI_MATRICES.values():
    _matrix.setflags(write=False)


class Pauli:
    """An immutable Pauli string, e.g. ``Pauli("XZ")`` or ``Pauli("Z", (3,))``.

    Parameters
    ----------
    label:
        A string over ``IXYZ`` (case-insensitive), one character per
        qubit in ``qubits``.
    qubits:
        The qubit index each factor acts on; defaults to
        ``range(len(label))``.

    Identity factors are normalisation only: ``Pauli("IZ")`` equals
    ``Pauli("Z", qubits=(1,))`` — both store the single non-identity
    factor ``Z`` on qubit 1.
    """

    __slots__ = ("_factors",)

    def __init__(
        self, label: str, qubits: Optional[Sequence[int]] = None
    ) -> None:
        if not isinstance(label, str) or not label:
            raise ExecutionError(
                f"Pauli label must be a non-empty string, got {label!r}"
            )
        label = label.upper()
        invalid = sorted(set(label) - set("IXYZ"))
        if invalid:
            raise ExecutionError(
                f"Pauli label {label!r} contains invalid factor(s) {invalid}; "
                "allowed: I, X, Y, Z"
            )
        if qubits is None:
            qubits = range(len(label))
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != len(label):
            raise ExecutionError(
                f"label {label!r} has {len(label)} factor(s) but "
                f"{len(qubits)} qubit(s) were given: {qubits}"
            )
        if any(q < 0 for q in qubits):
            raise ExecutionError(f"qubit indices must be non-negative: {qubits}")
        if len(set(qubits)) != len(qubits):
            raise ExecutionError(f"duplicate qubit indices: {qubits}")
        # Canonical sparse form: non-identity factors sorted by qubit.
        self._factors: Tuple[Tuple[int, str], ...] = tuple(
            sorted((q, c) for q, c in zip(qubits, label) if c != "I")
        )

    @property
    def factors(self) -> Tuple[Tuple[int, str], ...]:
        """The non-identity ``(qubit, factor)`` pairs, sorted by qubit."""
        return self._factors

    @property
    def qubits(self) -> Tuple[int, ...]:
        """Qubits carrying a non-identity factor, ascending."""
        return tuple(q for q, _ in self._factors)

    @property
    def weight(self) -> int:
        """Number of non-identity factors (0 for the identity string)."""
        return len(self._factors)

    @property
    def min_width(self) -> int:
        """Smallest register width this string fits on."""
        return self._factors[-1][0] + 1 if self._factors else 1

    def label(self, num_qubits: Optional[int] = None) -> str:
        """The dense ``IXYZ`` label over ``num_qubits`` (default: min width)."""
        width = self.min_width if num_qubits is None else int(num_qubits)
        if width < self.min_width:
            raise ExecutionError(
                f"Pauli acts on qubit {self.min_width - 1}, which does not "
                f"fit in {width} qubit(s)"
            )
        chars = ["I"] * width
        for q, c in self._factors:
            chars[q] = c
        return "".join(chars)

    def __mul__(self, coefficient: float) -> "PauliSum":
        return PauliSum([(coefficient, self)])

    __rmul__ = __mul__

    def __add__(self, other: Union["Pauli", "PauliSum"]) -> "PauliSum":
        return PauliSum([(1.0, self)]) + other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pauli):
            return NotImplemented
        return self._factors == other._factors

    def __hash__(self) -> int:
        return hash(self._factors)

    def __repr__(self) -> str:
        if not self._factors:
            return "Pauli('I')"
        label = "".join(c for _, c in self._factors)
        return f"Pauli({label!r}, qubits={self.qubits})"


TermLike = Union[Pauli, Tuple[float, Pauli]]


class PauliSum:
    """A real-weighted sum of :class:`Pauli` strings (Hermitian observable).

    Built from an iterable of terms, each either a bare :class:`Pauli`
    (coefficient 1) or a ``(coefficient, Pauli)`` pair.  Terms with equal
    Pauli strings are combined; coefficients must be real — a complex
    weight would make the observable non-Hermitian.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[TermLike]) -> None:
        combined: Dict[Pauli, float] = {}
        order: list = []
        for term in terms:
            if isinstance(term, Pauli):
                coefficient, pauli = 1.0, term
            else:
                try:
                    coefficient, pauli = term
                except (TypeError, ValueError):
                    raise ExecutionError(
                        f"PauliSum terms must be Pauli or (coefficient, "
                        f"Pauli) pairs, got {term!r}"
                    ) from None
            if not isinstance(pauli, Pauli):
                raise ExecutionError(
                    f"expected a Pauli, got {type(pauli).__name__}"
                )
            if isinstance(coefficient, complex) and coefficient.imag != 0.0:
                raise ExecutionError(
                    f"coefficient {coefficient!r} is not real; a Hermitian "
                    "observable needs real weights"
                )
            value = float(
                coefficient.real if isinstance(coefficient, complex) else coefficient
            )
            if pauli not in combined:
                order.append(pauli)
            combined[pauli] = combined.get(pauli, 0.0) + value
        if not combined:
            raise ExecutionError("PauliSum needs at least one term")
        self._terms: Tuple[Tuple[float, Pauli], ...] = tuple(
            (combined[p], p) for p in order
        )

    @property
    def terms(self) -> Tuple[Tuple[float, Pauli], ...]:
        """The ``(coefficient, Pauli)`` terms, duplicates combined."""
        return self._terms

    @property
    def min_width(self) -> int:
        """Smallest register width every term fits on."""
        return max(p.min_width for _, p in self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[Tuple[float, Pauli]]:
        return iter(self._terms)

    def __add__(self, other: Union[Pauli, "PauliSum"]) -> "PauliSum":
        if isinstance(other, Pauli):
            other = PauliSum([(1.0, other)])
        if not isinstance(other, PauliSum):
            return NotImplemented
        return PauliSum(tuple(self._terms) + tuple(other._terms))

    __radd__ = __add__

    def __mul__(self, scalar: float) -> "PauliSum":
        return PauliSum([(c * float(scalar), p) for c, p in self._terms])

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliSum):
            return NotImplemented
        return dict((p, c) for c, p in self._terms) == dict(
            (p, c) for c, p in other._terms
        )

    def __hash__(self) -> int:
        return hash(frozenset((p, c) for c, p in self._terms))

    def __repr__(self) -> str:
        body = " + ".join(f"{c:g}*{p!r}" for c, p in self._terms)
        return f"PauliSum({body})"
