"""The :class:`Parameter` symbol for parameterized circuits.

A parameter is a named placeholder that may appear wherever a gate takes a
real parameter (rotation angles etc.).  Gates carrying unbound parameters
have no matrix; :meth:`Circuit.bind` substitutes concrete values and
re-resolves each gate through the registry, so one circuit template can be
stamped out over a whole parameter sweep without rebuilding the IR.

Two parameters are the same symbol iff their names match — binding is by
name, so ``Parameter("theta")`` constructed in two places refers to one
slot.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Type, Union

from repro.utils.exceptions import CircuitError


class Parameter:
    """A named symbolic placeholder for a real gate parameter."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(
                f"parameter name must be a non-empty string, got {name!r}"
            )
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Parameter):
            return NotImplemented
        return self._name == other._name

    def __hash__(self) -> int:
        return hash((Parameter, self._name))

    def __float__(self) -> float:
        raise CircuitError(
            f"parameter {self._name!r} is unbound; bind it to a value "
            "(Circuit.bind) before simulation"
        )

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"


def normalize_binding(
    binding: Mapping[Union["Parameter", str], float],
    error_cls: Type[Exception] = CircuitError,
    label: str = "binding",
) -> Dict[str, float]:
    """Resolve a ``{Parameter | str: value}`` mapping to ``{name: float}``.

    The one canonical implementation of binding-key normalization —
    :meth:`Circuit.bind`, ``ExecutionPlan.bind``, the execute() sweep
    normaliser, and the batched executor all call it, so conflict
    detection behaves identically at every layer.  ``error_cls`` selects
    the layer's exception type; ``label`` prefixes messages (e.g.
    ``"sweep point 3"``).
    """
    values: Dict[str, float] = {}
    for key, value in binding.items():
        name = key.name if isinstance(key, Parameter) else str(key)
        value = float(value)
        if name in values and values[name] != value:
            raise error_cls(
                f"{label} has conflicting values for parameter {name!r}"
            )
        values[name] = value
    return values


def validate_binding_names(
    values: Mapping[str, float],
    known: Iterable[str],
    error_cls: Type[Exception] = CircuitError,
    label: str = "binding",
    subject: str = "circuit",
    require_complete: bool = False,
) -> Mapping[str, float]:
    """Reject stray (and, optionally, missing) names in a normalized binding.

    ``known`` is the set of parameter names the ``subject`` (circuit,
    plan...) actually declares.  A stray key is always an error — it
    almost certainly means a typo in a sweep specification; with
    ``require_complete`` every known name must also be bound.
    """
    known = set(known)
    stray = sorted(set(values) - known)
    if stray:
        raise error_cls(
            f"{label} refers to unknown parameter(s) {stray}; "
            f"{subject} parameters: {sorted(known)}"
        )
    if require_complete:
        missing = sorted(known - set(values))
        if missing:
            raise error_cls(
                f"{label} leaves {subject} parameter(s) {missing} unbound"
            )
    return values
