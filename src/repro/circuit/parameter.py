"""The :class:`Parameter` symbol for parameterized circuits.

A parameter is a named placeholder that may appear wherever a gate takes a
real parameter (rotation angles etc.).  Gates carrying unbound parameters
have no matrix; :meth:`Circuit.bind` substitutes concrete values and
re-resolves each gate through the registry, so one circuit template can be
stamped out over a whole parameter sweep without rebuilding the IR.

Two parameters are the same symbol iff their names match — binding is by
name, so ``Parameter("theta")`` constructed in two places refers to one
slot.
"""

from __future__ import annotations

from repro.utils.exceptions import CircuitError


class Parameter:
    """A named symbolic placeholder for a real gate parameter."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(
                f"parameter name must be a non-empty string, got {name!r}"
            )
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Parameter):
            return NotImplemented
        return self._name == other._name

    def __hash__(self) -> int:
        return hash((Parameter, self._name))

    def __float__(self) -> float:
        raise CircuitError(
            f"parameter {self._name!r} is unbound; bind it to a value "
            "(Circuit.bind) before simulation"
        )

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"
