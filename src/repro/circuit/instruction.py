"""The :class:`Instruction` node of the circuit IR: an operation bound to qubits."""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.circuit.channel import Channel
from repro.circuit.dynamic import Conditional, Measure, Reset
from repro.circuit.gate import Gate
from repro.utils.exceptions import CircuitError

Operation = Union[Gate, Channel, Measure, Reset, Conditional]


class Instruction:
    """An immutable application of an operation to concrete qubit indices.

    The operation is a :class:`Gate` (unitary), a :class:`Channel` (CPTP
    map in Kraus form), or one of the dynamic-circuit leaves —
    :class:`Measure`, :class:`Reset`, :class:`Conditional`.  Qubit order
    matters: ``qubits[0]`` is the operation's most significant qubit
    (e.g. the control for CX built with the standard library).
    """

    __slots__ = ("_operation", "_qubits")

    def __init__(self, operation: Operation, qubits: Sequence[int]) -> None:
        if not isinstance(operation, (Gate, Channel, Measure, Reset, Conditional)):
            raise CircuitError(
                f"expected a Gate, Channel, Measure, Reset or Conditional, "
                f"got {type(operation).__name__}"
            )
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != operation.num_qubits:
            raise CircuitError(
                f"operation {operation.name!r} acts on {operation.num_qubits} "
                f"qubit(s) but {len(qubits)} were given: {qubits}"
            )
        if any(q < 0 for q in qubits):
            raise CircuitError(f"qubit indices must be non-negative: {qubits}")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit indices: {qubits}")
        self._operation = operation
        self._qubits = qubits

    @property
    def operation(self) -> Operation:
        """The bound :class:`Gate` or :class:`Channel`."""
        return self._operation

    @property
    def gate(self) -> Gate:
        """The bound :class:`Gate`; raises for channel/dynamic instructions
        so unitary-only consumers fail loudly instead of mis-simulating."""
        if not isinstance(self._operation, Gate):
            raise CircuitError(
                f"instruction holds {self._operation.name!r}, not a gate; "
                "check is_channel/is_dynamic before asking for one"
            )
        return self._operation

    @property
    def is_channel(self) -> bool:
        """Whether the bound operation is a :class:`Channel`."""
        return isinstance(self._operation, Channel)

    @property
    def is_dynamic(self) -> bool:
        """Whether the operation is a dynamic leaf (measure/reset/if_bit)."""
        return isinstance(self._operation, (Measure, Reset, Conditional))

    @property
    def is_measure(self) -> bool:
        return isinstance(self._operation, Measure)

    @property
    def is_reset(self) -> bool:
        return isinstance(self._operation, Reset)

    @property
    def is_conditional(self) -> bool:
        return isinstance(self._operation, Conditional)

    @property
    def is_parametric(self) -> bool:
        """Whether the bound operation is a gate with unbound parameters."""
        return isinstance(self._operation, Gate) and self._operation.is_parametric

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self._qubits

    def inverse(self) -> "Instruction":
        if self.is_channel:
            raise CircuitError(
                f"channel {self._operation.name!r} is not invertible; "
                "circuits containing channels have no inverse"
            )
        if self.is_dynamic:
            raise CircuitError(
                f"dynamic operation {self._operation.name!r} is not "
                "invertible; circuits containing measure/reset/if_bit have "
                "no inverse"
            )
        return Instruction(self._operation.inverse(), self._qubits)

    def remapped(self, mapping: Sequence[int]) -> "Instruction":
        """Return the instruction with each qubit ``q`` replaced by ``mapping[q]``."""
        try:
            return Instruction(
                self._operation, tuple(mapping[q] for q in self._qubits)
            )
        except IndexError:
            raise CircuitError(
                f"qubit mapping of length {len(mapping)} cannot remap {self._qubits}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return self._operation == other._operation and self._qubits == other._qubits

    def __hash__(self) -> int:
        return hash((self._operation, self._qubits))

    def __repr__(self) -> str:
        qubits = ", ".join(str(q) for q in self._qubits)
        return f"Instruction({self._operation.name} @ [{qubits}])"
