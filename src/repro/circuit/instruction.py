"""The :class:`Instruction` node of the circuit IR: a gate bound to qubits."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.circuit.gate import Gate
from repro.utils.exceptions import CircuitError


class Instruction:
    """An immutable application of a :class:`Gate` to concrete qubit indices.

    Qubit order matters: ``qubits[0]`` is the gate's most significant qubit
    (e.g. the control for CX built with the standard library).
    """

    __slots__ = ("_gate", "_qubits")

    def __init__(self, gate: Gate, qubits: Sequence[int]) -> None:
        if not isinstance(gate, Gate):
            raise CircuitError(f"expected a Gate, got {type(gate).__name__}")
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != gate.num_qubits:
            raise CircuitError(
                f"gate {gate.name!r} acts on {gate.num_qubits} qubit(s) but "
                f"{len(qubits)} were given: {qubits}"
            )
        if any(q < 0 for q in qubits):
            raise CircuitError(f"qubit indices must be non-negative: {qubits}")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit indices: {qubits}")
        self._gate = gate
        self._qubits = qubits

    @property
    def gate(self) -> Gate:
        return self._gate

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self._qubits

    def inverse(self) -> "Instruction":
        return Instruction(self._gate.inverse(), self._qubits)

    def remapped(self, mapping: Sequence[int]) -> "Instruction":
        """Return the instruction with each qubit ``q`` replaced by ``mapping[q]``."""
        try:
            return Instruction(self._gate, tuple(mapping[q] for q in self._qubits))
        except IndexError:
            raise CircuitError(
                f"qubit mapping of length {len(mapping)} cannot remap {self._qubits}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return self._gate == other._gate and self._qubits == other._qubits

    def __hash__(self) -> int:
        return hash((self._gate, self._qubits))

    def __repr__(self) -> str:
        qubits = ", ".join(str(q) for q in self._qubits)
        return f"Instruction({self._gate.name} @ [{qubits}])"
