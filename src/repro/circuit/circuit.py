"""The :class:`Circuit` container of the IR.

A circuit is an ordered list of :class:`Instruction` objects over a register
of ``num_qubits`` qubits.  Instructions themselves are immutable; the circuit
is an append-only builder with structural queries (``depth``, ``count_ops``)
and whole-circuit transforms (``compose``, ``inverse``, ``remapped``) that
return new objects rather than mutating in place.

Convenience single-gate methods (``h``, ``cx``, ``rz``...) resolve gates
through :mod:`repro.gates` lazily so the IR layer itself stays free of a
compile-time dependency on the gate library.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.circuit.channel import Channel
from repro.circuit.dynamic import Conditional, Measure, Reset, clbits_used
from repro.circuit.instruction import Instruction, Operation
from repro.circuit.parameter import Parameter
from repro.utils.exceptions import CircuitError

# bind() accepts Parameter objects or bare names as keys.
ParameterBinding = Mapping[Union[Parameter, str], float]


class CircuitStats:
    """A structural snapshot of one circuit: sizes, depth, composition.

    Computed by :meth:`Circuit.stats` in a single pass over the
    instruction list (plus the depth scan).  The snapshot is immutable and
    hashable via :meth:`key`, so it can serve as a component of cache keys
    (see ``repro.plan``) and as a JSON-friendly report row via
    :meth:`as_dict` — consumers should reach for it instead of ad-hoc
    ``len(circuit.instructions)`` counting.
    """

    __slots__ = (
        "num_qubits",
        "num_instructions",
        "depth",
        "gate_counts",
        "num_parametric",
        "num_parameters",
        "num_channels",
        "num_clbits",
        "num_measurements",
        "num_resets",
        "num_conditionals",
    )

    def __init__(
        self,
        num_qubits: int,
        num_instructions: int,
        depth: int,
        gate_counts: Mapping[str, int],
        num_parametric: int,
        num_parameters: int,
        num_channels: int,
        num_clbits: int = 0,
        num_measurements: int = 0,
        num_resets: int = 0,
        num_conditionals: int = 0,
    ) -> None:
        from types import MappingProxyType

        object.__setattr__(self, "num_qubits", int(num_qubits))
        object.__setattr__(self, "num_instructions", int(num_instructions))
        object.__setattr__(self, "depth", int(depth))
        # Read-only view over a private copy: the snapshot feeds hashes
        # and cache keys, so mutating it through the attribute must fail,
        # not silently change key()/hash() after insertion.
        object.__setattr__(self, "gate_counts", MappingProxyType(dict(gate_counts)))
        object.__setattr__(self, "num_parametric", int(num_parametric))
        object.__setattr__(self, "num_parameters", int(num_parameters))
        object.__setattr__(self, "num_channels", int(num_channels))
        object.__setattr__(self, "num_clbits", int(num_clbits))
        object.__setattr__(self, "num_measurements", int(num_measurements))
        object.__setattr__(self, "num_resets", int(num_resets))
        object.__setattr__(self, "num_conditionals", int(num_conditionals))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CircuitStats is immutable")

    def __reduce__(self) -> tuple:
        # The gate_counts mappingproxy cannot pickle; rebuild through
        # __init__ (which re-wraps a private copy) so stats — and the
        # ExecutionPlans that carry them to worker processes — round-trip.
        return (
            CircuitStats,
            (
                self.num_qubits,
                self.num_instructions,
                self.depth,
                dict(self.gate_counts),
                self.num_parametric,
                self.num_parameters,
                self.num_channels,
                self.num_clbits,
                self.num_measurements,
                self.num_resets,
                self.num_conditionals,
            ),
        )

    @property
    def num_dynamic(self) -> int:
        """Total dynamic instructions (measure + reset + conditional)."""
        return self.num_measurements + self.num_resets + self.num_conditionals

    def key(self) -> tuple:
        """A hashable tuple identifying this structural snapshot."""
        return (
            self.num_qubits,
            self.num_instructions,
            self.depth,
            tuple(sorted(self.gate_counts.items())),
            self.num_parametric,
            self.num_parameters,
            self.num_channels,
            self.num_clbits,
            self.num_measurements,
            self.num_resets,
            self.num_conditionals,
        )

    def as_dict(self) -> dict:
        """A JSON-serialisable view (gate_counts copied, not aliased)."""
        return {
            "num_qubits": self.num_qubits,
            "num_instructions": self.num_instructions,
            "depth": self.depth,
            "gate_counts": dict(self.gate_counts),
            "num_parametric": self.num_parametric,
            "num_parameters": self.num_parameters,
            "num_channels": self.num_channels,
            "num_clbits": self.num_clbits,
            "num_measurements": self.num_measurements,
            "num_resets": self.num_resets,
            "num_conditionals": self.num_conditionals,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CircuitStats):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        dynamic = f", {self.num_dynamic} dynamic" if self.num_dynamic else ""
        return (
            f"CircuitStats({self.num_qubits} qubits, "
            f"{self.num_instructions} instructions, depth {self.depth}, "
            f"{self.num_parametric} parametric, {self.num_channels} channels"
            f"{dynamic})"
        )


class Circuit:
    """An ordered gate-instruction list over a fixed-width qubit register."""

    __slots__ = ("_num_qubits", "_name", "_instructions", "_num_clbits", "_clbits_pinned")

    def __init__(
        self,
        num_qubits: int,
        name: Optional[str] = None,
        num_clbits: Optional[int] = None,
    ) -> None:
        if num_qubits < 1:
            raise CircuitError(f"circuit needs >= 1 qubit, got {num_qubits}")
        if num_clbits is not None and num_clbits < 0:
            raise CircuitError(f"circuit needs >= 0 clbits, got {num_clbits}")
        self._num_qubits = int(num_qubits)
        self._name = name
        self._instructions: List[Instruction] = []
        # An explicit width pins the classical register: appends referencing
        # clbits beyond it raise instead of silently widening, so a typo'd
        # index fails at build time rather than at lowering.  The default
        # (None) keeps the historical auto-widening register starting at 0.
        self._clbits_pinned = num_clbits is not None
        self._num_clbits = int(num_clbits) if num_clbits is not None else 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        """Width of the classical register.

        Grows automatically as ``measure``/``if_bit`` reference higher
        clbit indices, unless an explicit width was passed to the
        constructor — then the register is *pinned* and out-of-range
        references raise at append time (see :attr:`clbits_pinned`).
        """
        return self._num_clbits

    @property
    def clbits_pinned(self) -> bool:
        """Whether the classical register width is fixed.

        ``True`` when the constructor received an explicit ``num_clbits``:
        appends referencing clbits at or beyond the width raise
        :class:`~repro.utils.exceptions.CircuitError` eagerly.  ``False``
        (the default) keeps the auto-widening register.
        """
        return self._clbits_pinned

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and self._num_clbits == other._num_clbits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"Circuit({self._num_qubits} qubits,{label} "
            f"{len(self._instructions)} instructions, depth {self.depth()})"
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, operation: Operation, qubits: Sequence[int]) -> "Circuit":
        """Append an operation (gate/channel/dynamic leaf) on ``qubits``.

        Validates indices against the register; returns ``self`` so calls
        can be chained.  Dynamic operations referencing a clbit beyond the
        current classical register widen it — unless the register is
        pinned, in which case they raise eagerly.
        """
        instruction = Instruction(operation, qubits)
        out_of_range = [q for q in instruction.qubits if q >= self._num_qubits]
        if out_of_range:
            raise CircuitError(
                f"qubit(s) {out_of_range} out of range for a "
                f"{self._num_qubits}-qubit circuit"
            )
        clbits_needed = clbits_used(operation)
        if self._clbits_pinned and clbits_needed > self._num_clbits:
            raise CircuitError(
                f"clbit {clbits_needed - 1} out of range for a pinned "
                f"{self._num_clbits}-clbit classical register"
            )
        self._instructions.append(instruction)
        self._num_clbits = max(self._num_clbits, clbits_needed)
        return self

    def extend(self, instructions: Sequence[Instruction]) -> "Circuit":
        for instruction in instructions:
            self.append(instruction.operation, instruction.qubits)
        return self

    def copy(self, name: Optional[str] = None) -> "Circuit":
        out = Circuit(
            self._num_qubits,
            name if name is not None else self._name,
            num_clbits=self._num_clbits,
        )
        out._clbits_pinned = self._clbits_pinned
        out._instructions = list(self._instructions)
        return out

    # ------------------------------------------------------------------
    # whole-circuit transforms
    # ------------------------------------------------------------------
    def compose(self, other: "Circuit", qubits: Optional[Sequence[int]] = None) -> "Circuit":
        """Return a new circuit running ``self`` then ``other``.

        ``qubits`` maps qubit ``q`` of ``other`` onto ``qubits[q]`` of this
        circuit; by default ``other`` must not be wider than ``self`` and maps
        identically.
        """
        if qubits is None:
            if other.num_qubits > self._num_qubits:
                raise CircuitError(
                    f"cannot compose a {other.num_qubits}-qubit circuit onto "
                    f"{self._num_qubits} qubits without an explicit mapping"
                )
            mapping: Sequence[int] = range(other.num_qubits)
        else:
            mapping = tuple(int(q) for q in qubits)
            if len(mapping) != other.num_qubits:
                raise CircuitError(
                    f"mapping has {len(mapping)} entries for a "
                    f"{other.num_qubits}-qubit circuit"
                )
            if len(set(mapping)) != len(mapping):
                raise CircuitError(f"duplicate qubits in mapping: {mapping}")
        out = self.copy()
        # Clbit indices are global (there is one classical register), so
        # composition keeps them verbatim; only the qubits remap.  The
        # merged register takes the wider width and stays pinned if either
        # side was.
        out._num_clbits = max(out._num_clbits, other._num_clbits)
        out._clbits_pinned = self._clbits_pinned or other._clbits_pinned
        for instruction in other:
            out.append(
                instruction.operation, tuple(mapping[q] for q in instruction.qubits)
            )
        return out

    def inverse(self) -> "Circuit":
        """The adjoint circuit: reversed order, each gate inverted."""
        out = Circuit(self._num_qubits, self._name)
        out._instructions = [
            instruction.inverse() for instruction in reversed(self._instructions)
        ]
        return out

    def remapped(self, mapping: Sequence[int], num_qubits: Optional[int] = None) -> "Circuit":
        """Relabel qubits: instruction qubit ``q`` becomes ``mapping[q]``."""
        width = num_qubits if num_qubits is not None else self._num_qubits
        out = Circuit(width, self._name, num_clbits=self._num_clbits)
        out._clbits_pinned = self._clbits_pinned
        for instruction in self._instructions:
            moved = instruction.remapped(mapping)
            out.append(moved.operation, moved.qubits)
        return out

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Greedy circuit depth: longest chain of instructions sharing qubits."""
        level: Dict[int, int] = {}
        depth = 0
        for instruction in self._instructions:
            layer = 1 + max((level.get(q, 0) for q in instruction.qubits), default=0)
            for q in instruction.qubits:
                level[q] = layer
            depth = max(depth, layer)
        return depth

    def count_ops(self) -> Dict[str, int]:
        """Histogram of operation (gate and channel) names."""
        counts: Dict[str, int] = {}
        for instruction in self._instructions:
            name = instruction.operation.name
            counts[name] = counts.get(name, 0) + 1
        return counts

    def has_channels(self) -> bool:
        """Whether any instruction is a :class:`Channel` application."""
        return any(instruction.is_channel for instruction in self._instructions)

    def has_dynamic_ops(self) -> bool:
        """Whether any instruction is a measure/reset/if_bit application."""
        return any(instruction.is_dynamic for instruction in self._instructions)

    def stats(self) -> CircuitStats:
        """One-pass structural snapshot: counts, depth, composition.

        ``num_parametric`` counts parametric *slots* (instructions whose
        gate still carries unbound parameters); ``num_parameters`` counts
        the distinct :class:`Parameter` symbols among them.
        """
        gate_counts: Dict[str, int] = {}
        num_parametric = 0
        num_channels = 0
        num_measurements = 0
        num_resets = 0
        num_conditionals = 0
        symbols: Dict[Parameter, None] = {}
        for instruction in self._instructions:
            name = instruction.operation.name
            gate_counts[name] = gate_counts.get(name, 0) + 1
            if instruction.is_channel:
                num_channels += 1
            elif instruction.is_measure:
                num_measurements += 1
            elif instruction.is_reset:
                num_resets += 1
            elif instruction.is_conditional:
                num_conditionals += 1
            elif instruction.is_parametric:
                num_parametric += 1
                for parameter in instruction.operation.parameters:
                    symbols.setdefault(parameter, None)
        return CircuitStats(
            num_qubits=self._num_qubits,
            num_instructions=len(self._instructions),
            depth=self.depth(),
            gate_counts=gate_counts,
            num_parametric=num_parametric,
            num_parameters=len(symbols),
            num_channels=num_channels,
            num_clbits=self._num_clbits,
            num_measurements=num_measurements,
            num_resets=num_resets,
            num_conditionals=num_conditionals,
        )

    def parameters(self) -> Tuple[Parameter, ...]:
        """Distinct unbound :class:`Parameter` symbols, in first-use order."""
        seen: Dict[Parameter, None] = {}
        for instruction in self._instructions:
            if instruction.is_parametric:
                for parameter in instruction.operation.parameters:
                    seen.setdefault(parameter, None)
        return tuple(seen)

    def is_parametric(self) -> bool:
        """Whether any gate still carries unbound parameters."""
        return any(
            instruction.is_parametric for instruction in self._instructions
        )

    def bind(self, binding: ParameterBinding) -> "Circuit":
        """Substitute parameter values and return the bound circuit.

        ``binding`` maps :class:`Parameter` objects (or their names) to
        real values.  Every key must correspond to a parameter actually
        present in the circuit — a stray key is a hard error, since it
        almost always means a typo in a sweep specification.  Binding may
        be partial: parameters left out stay symbolic, so templates can be
        specialised in stages.

        Bound gates are re-resolved through the gate registry, so each
        ``(name, values)`` combination shares the registry's cached
        matrix; non-parametric instructions are carried over untouched.
        """
        from repro.circuit.parameter import normalize_binding, validate_binding_names
        from repro.gates import get_gate

        values = normalize_binding(binding, CircuitError)
        validate_binding_names(
            values,
            (parameter.name for parameter in self.parameters()),
            CircuitError,
        )
        out = Circuit(self._num_qubits, self._name, num_clbits=self._num_clbits)
        out._clbits_pinned = self._clbits_pinned
        for instruction in self._instructions:
            operation = instruction.operation
            if instruction.is_parametric:
                bound = tuple(
                    values.get(p.name, p) if isinstance(p, Parameter) else p
                    for p in operation.params
                )
                operation = get_gate(operation.name, *bound)
            out.append(operation, instruction.qubits)
        return out

    def active_qubits(self) -> Tuple[int, ...]:
        """Sorted qubits touched by at least one instruction."""
        seen = set()
        for instruction in self._instructions:
            seen.update(instruction.qubits)
        return tuple(sorted(seen))

    # ------------------------------------------------------------------
    # standard-gate conveniences (lazy gate-library lookup)
    # ------------------------------------------------------------------
    def _append_std(self, name: str, qubits: Sequence[int], *params: float) -> "Circuit":
        from repro.gates import get_gate

        return self.append(get_gate(name, *params), qubits)

    def x(self, qubit: int) -> "Circuit":
        return self._append_std("x", (qubit,))

    def y(self, qubit: int) -> "Circuit":
        return self._append_std("y", (qubit,))

    def z(self, qubit: int) -> "Circuit":
        return self._append_std("z", (qubit,))

    def h(self, qubit: int) -> "Circuit":
        return self._append_std("h", (qubit,))

    def s(self, qubit: int) -> "Circuit":
        return self._append_std("s", (qubit,))

    def t(self, qubit: int) -> "Circuit":
        return self._append_std("t", (qubit,))

    def rx(self, theta: float, qubit: int) -> "Circuit":
        return self._append_std("rx", (qubit,), theta)

    def ry(self, theta: float, qubit: int) -> "Circuit":
        return self._append_std("ry", (qubit,), theta)

    def rz(self, theta: float, qubit: int) -> "Circuit":
        return self._append_std("rz", (qubit,), theta)

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "Circuit":
        return self._append_std("u3", (qubit,), theta, phi, lam)

    def unitary(self, matrix: object, qubits: Sequence[int]) -> "Circuit":
        """Append an explicit-matrix ``unitary`` gate on ``qubits``.

        ``matrix`` must be a unitary of dimension ``2**len(qubits)``;
        ``qubits[0]`` is its most significant index bit, as for every
        multi-qubit gate.
        """
        from repro.gates import unitary_gate

        return self.append(unitary_gate(matrix), tuple(qubits))

    def channel(self, channel: Channel, qubits: Sequence[int]) -> "Circuit":
        """Append a noise :class:`Channel` on ``qubits``.

        Channel instructions require a mixed-state backend
        (``density_matrix``) to simulate; the pure-state backend rejects
        them.  Transpiler passes treat channels as barriers.
        """
        if not isinstance(channel, Channel):
            raise CircuitError(
                f"expected a Channel, got {type(channel).__name__}"
            )
        return self.append(channel, tuple(qubits))

    # ------------------------------------------------------------------
    # dynamic operations (mid-circuit measurement & classical control)
    # ------------------------------------------------------------------
    def measure(self, qubit: int, clbit: int) -> "Circuit":
        """Measure ``qubit`` in the Z basis into classical bit ``clbit``.

        Widens the classical register to ``clbit + 1`` if needed.  A
        circuit containing measurements samples its *clbit* register —
        ``execute(..., shots=N)`` returns counts/memory over clbit
        strings, not terminal qubit bitstrings.
        """
        return self.append(Measure(clbit), (qubit,))

    def reset(self, qubit: int) -> "Circuit":
        """Re-initialise ``qubit`` to ``|0>`` (measure-and-flip, outcome
        discarded)."""
        return self.append(Reset(), (qubit,))

    def if_bit(self, clbit: int, value: int, instruction: Instruction) -> "Circuit":
        """Apply ``instruction`` only when ``clbit`` reads ``value``.

        ``instruction`` is an :class:`Instruction` wrapping a concrete
        (non-parametric) :class:`Gate`, e.g.
        ``Instruction(get_gate("x"), (2,))``.  The classical branch
        resolves per shot/trajectory at execution time.
        """
        if not isinstance(instruction, Instruction):
            raise CircuitError(
                f"if_bit expects an Instruction, got "
                f"{type(instruction).__name__}"
            )
        return self.append(
            Conditional(clbit, value, instruction.operation), instruction.qubits
        )

    def cx(self, control: int, target: int) -> "Circuit":
        return self._append_std("cx", (control, target))

    def cz(self, control: int, target: int) -> "Circuit":
        return self._append_std("cz", (control, target))

    def swap(self, qubit_a: int, qubit_b: int) -> "Circuit":
        return self._append_std("swap", (qubit_a, qubit_b))
