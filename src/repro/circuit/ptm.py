"""Pauli-transfer-matrix (PTM) math over the normalised Pauli basis.

Any linear map ``E`` on ``k``-qubit operators has a real matrix
representation in the orthonormal (Hilbert-Schmidt) Pauli basis
``P_a = sigma_a / sqrt(2)`` per qubit::

    R[a, b] = Tr(P_a E(P_b))        # real for Hermiticity-preserving E

A density operator becomes the real vector ``r_a = Tr(P_a rho)`` and the
map acts by plain matrix multiplication ``r -> R r`` — which is what lets
gates and Kraus channels *compose* by multiplying their PTMs, the whole
point of the ``"ptm"`` lowering mode.  Conventions match the rest of the
library: the first qubit is the most significant base-4 digit of a
multi-qubit Pauli index (``a = (a_1 ... a_k)`` with per-qubit digits
``0=I, 1=X, 2=Y, 3=Z``), mirroring the bitstring convention of gate
matrices.

This module is deliberately dependency-free (numpy only) so every layer
— :class:`~repro.circuit.Channel` validation, plan lowering, the
``ptm`` backend, the analysis sanitizer — shares one set of conversion
routines.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.utils.exceptions import CircuitError

_SQRT2 = float(np.sqrt(2.0))

#: Normalised single-qubit Pauli basis ``sigma_a / sqrt(2)``, shape
#: ``(4, 2, 2)`` with ``a`` in ``(I, X, Y, Z)`` order — orthonormal under
#: ``Tr(A† B)``.
_SINGLE = (
    np.array(
        [
            [[1, 0], [0, 1]],
            [[0, 1], [1, 0]],
            [[0, -1j], [1j, 0]],
            [[1, 0], [0, -1]],
        ],
        dtype=complex,
    )
    / _SQRT2
)
_SINGLE.setflags(write=False)

#: ``<b| P_a |b>`` per qubit: the readout matrix mapping one Pauli axis to
#: one bit axis.  Only I and Z survive the diagonal, which is why Born
#: probabilities are a single contraction per qubit in this basis.
_READOUT = np.array(
    [
        [1.0 / _SQRT2, 1.0 / _SQRT2],
        [0.0, 0.0],
        [0.0, 0.0],
        [1.0 / _SQRT2, -1.0 / _SQRT2],
    ],
    dtype=np.float64,
)
_READOUT.setflags(write=False)

_BASIS_CACHE: Dict[int, np.ndarray] = {}


def pauli_basis(num_qubits: int) -> np.ndarray:
    """The normalised ``num_qubits``-qubit Pauli basis, read-only.

    Shape ``(4**k, 2**k, 2**k)``; element ``a`` is the Kronecker product
    of single-qubit basis elements with the first qubit as the most
    significant base-4 digit of ``a``.
    """
    if num_qubits < 1:
        raise CircuitError(f"need >= 1 qubit for a Pauli basis, got {num_qubits}")
    try:
        return _BASIS_CACHE[num_qubits]
    except KeyError:
        pass
    basis = _SINGLE
    for _ in range(num_qubits - 1):
        dim = basis.shape[1]
        basis = np.einsum("aij,bkl->abikjl", basis, _SINGLE).reshape(
            basis.shape[0] * 4, dim * 2, dim * 2
        )
    basis = np.ascontiguousarray(basis)
    basis.setflags(write=False)
    _BASIS_CACHE[num_qubits] = basis
    return basis


def kraus_to_ptm(operators: Sequence[np.ndarray], num_qubits: int) -> np.ndarray:
    """The real PTM of the map ``rho -> sum_i K_i rho K_i†``.

    A unitary gate is the single-operator case: ``kraus_to_ptm((U,), k)``
    is the PTM of ``U . U†`` conjugation.  Returns a float64
    ``(4**k, 4**k)`` matrix (the imaginary part of a Hermiticity-
    preserving map's PTM is identically zero up to rounding and is
    dropped).
    """
    basis = pauli_basis(num_qubits)
    dim = 4**num_qubits
    side = 1 << num_qubits
    ptm = np.zeros((dim, dim), dtype=np.float64)
    for operator in operators:
        kraus = np.asarray(operator, dtype=complex)
        if kraus.shape != (side, side):
            raise CircuitError(
                f"Kraus operator has shape {kraus.shape}, expected "
                f"{(side, side)} for {num_qubits} qubit(s)"
            )
        # mapped[b] = K P_b K†; then R[a, b] += Tr(P_a mapped[b]).
        mapped = np.einsum("ij,bjk,lk->bil", kraus, basis, kraus.conj())
        ptm += np.einsum("aij,bji->ab", basis, mapped).real
    return ptm


def ptm_is_trace_preserving(ptm: np.ndarray, atol: float = 1e-8) -> bool:
    """TP iff the first PTM row is ``(1, 0, ..., 0)``.

    ``Tr E(rho) = sqrt(2**k) * (R r)_0``, so preserving the trace of
    every input is exactly preserving the identity component's row.
    """
    expected = np.zeros(ptm.shape[0], dtype=np.float64)
    expected[0] = 1.0
    return bool(np.allclose(ptm[0], expected, rtol=0.0, atol=atol))


def ptm_is_unital(ptm: np.ndarray, atol: float = 1e-8) -> bool:
    """Unital (fixes the maximally mixed state) iff the first column is ``e_0``."""
    expected = np.zeros(ptm.shape[0], dtype=np.float64)
    expected[0] = 1.0
    return bool(np.allclose(ptm[:, 0], expected, rtol=0.0, atol=atol))


def embed_ptm(
    matrix: np.ndarray, positions: Sequence[int], width: int
) -> np.ndarray:
    """Embed a ``k``-qubit PTM at ``positions`` of a ``width``-qubit register.

    The base-4 analogue of :func:`repro.transpile.fusion.embed_matrix`:
    returns the ``(4**width, 4**width)`` PTM acting as ``matrix`` on the
    register slots ``positions`` (in order) and as the identity elsewhere.
    """
    positions = [int(p) for p in positions]
    k = len(positions)
    if len(set(positions)) != k:
        raise CircuitError(f"duplicate embed positions {tuple(positions)}")
    if any(p < 0 or p >= width for p in positions):
        raise CircuitError(
            f"embed positions {tuple(positions)} out of range for width {width}"
        )
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (4**k, 4**k):
        raise CircuitError(
            f"PTM shape {matrix.shape} does not match {k} position(s)"
        )
    if positions == list(range(width)):
        return matrix
    full = np.kron(matrix, np.eye(4 ** (width - k)))
    # full's register slots: 0..k-1 carry matrix's qubits in order, the
    # rest the identity.  Route slot i of the source to positions[i] (and
    # the identity slots to the remaining positions, ascending).
    rest = [p for p in range(width) if p not in positions]
    perm = [0] * width
    for source, destination in enumerate(positions + rest):
        perm[destination] = source
    axes = tuple(perm) + tuple(p + width for p in perm)
    tensor = full.reshape((4,) * (2 * width)).transpose(axes)
    return np.ascontiguousarray(tensor).reshape(4**width, 4**width)


def density_to_pauli_vector(tensor: np.ndarray) -> np.ndarray:
    """Convert a ``(2,) * 2n`` density tensor to a real ``(4,) * n`` Pauli vector.

    Component ``r[a_1, ..., a_n] = Tr(P_a rho)``; the result is real for
    Hermitian input (the rounding-level imaginary part is dropped).
    """
    if tensor.ndim % 2 != 0 or tensor.ndim == 0:
        raise CircuitError(
            f"expected a (2,) * 2n density tensor, got shape {tensor.shape}"
        )
    n = tensor.ndim // 2
    out = np.asarray(tensor, dtype=complex)
    for q in range(n):
        # Contract qubit q's sigma rows with the density columns and vice
        # versa; the new Pauli axis lands in front, so after n steps the
        # axes read (a_n, ..., a_1) and get reversed below.
        out = np.tensordot(_SINGLE, out, axes=([1, 2], [n, q]))
    out = out.transpose(tuple(reversed(range(n))))
    return np.ascontiguousarray(out.real)


def pauli_vector_to_density(tensor: np.ndarray) -> np.ndarray:
    """Convert a real ``(4,) * n`` Pauli vector to a ``(2,) * 2n`` density tensor."""
    n = tensor.ndim
    if n == 0 or tensor.shape != (4,) * n:
        raise CircuitError(
            f"expected a (4,) * n Pauli vector, got shape {tensor.shape}"
        )
    out: np.ndarray = np.asarray(tensor, dtype=complex)
    for _ in range(n):
        out = np.tensordot(out, _SINGLE, axes=([0], [0]))
    # Axes are interleaved (row_1, col_1, ..., row_n, col_n); regroup to
    # the library's rows-then-columns density layout.
    rows = tuple(range(0, 2 * n, 2))
    cols = tuple(range(1, 2 * n, 2))
    return np.ascontiguousarray(out.transpose(rows + cols))


def pauli_vector_probabilities(tensor: np.ndarray) -> np.ndarray:
    """Born probabilities of a ``(4,) * n`` Pauli vector as a ``(2,) * n`` tensor.

    Only the I/Z components of each qubit survive the computational-basis
    diagonal, so this is one tiny ``(4, 2)`` contraction per qubit —
    never a detour through the dense density matrix.
    """
    n = tensor.ndim
    if n == 0 or tensor.shape != (4,) * n:
        raise CircuitError(
            f"expected a (4,) * n Pauli vector, got shape {tensor.shape}"
        )
    out: np.ndarray = np.asarray(tensor, dtype=np.float64)
    for _ in range(n):
        # Consume the leading Pauli axis, append that qubit's bit axis;
        # after n steps the axes read (b_1, ..., b_n).
        out = np.tensordot(out, _READOUT, axes=([0], [0]))
    return out


def pauli_vector_trace(tensor: np.ndarray) -> float:
    """``Tr(rho)`` of the state a Pauli vector represents (1 when valid).

    Only the all-identity component carries trace:
    ``Tr(rho) = r[0, ..., 0] * sqrt(2**n)``.
    """
    n = tensor.ndim
    return float(tensor[(0,) * n] * (2.0 ** (n / 2.0)))


def zero_pauli_vector(num_qubits: int) -> np.ndarray:
    """The ``|0...0><0...0|`` state as a ``(4,) * n`` float64 Pauli vector."""
    if num_qubits < 1:
        raise CircuitError(f"need >= 1 qubit, got {num_qubits}")
    single = np.array([1.0 / _SQRT2, 0.0, 0.0, 1.0 / _SQRT2], dtype=np.float64)
    out = single
    for _ in range(num_qubits - 1):
        out = np.multiply.outer(out, single)
    return np.ascontiguousarray(out)


__all__: List[str] = [
    "density_to_pauli_vector",
    "embed_ptm",
    "kraus_to_ptm",
    "pauli_basis",
    "pauli_vector_probabilities",
    "pauli_vector_to_density",
    "pauli_vector_trace",
    "ptm_is_trace_preserving",
    "ptm_is_unital",
    "zero_pauli_vector",
]
