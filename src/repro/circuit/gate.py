"""The :class:`Gate` leaf of the circuit IR.

A gate is an immutable value object: a name, a qubit arity, a tuple of
parameters, and the ``2**k x 2**k`` unitary matrix it represents.  Matrices
are stored read-only so gates can be shared freely between circuits and
cached by the gate library.

Parameters are usually bound reals (rotation angles), but any of them may
be a symbolic :class:`~repro.circuit.Parameter`.  Such a *parametric* gate
carries no matrix — accessing :attr:`Gate.matrix` raises until the
parameters are bound (see :meth:`Circuit.bind`), so a half-built template
can never be silently simulated.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.circuit.parameter import Parameter
from repro.utils.exceptions import CircuitError

ParamValue = Union[float, Parameter]

_ATOL = 1e-10


def _as_readonly_matrix(matrix: np.ndarray, num_qubits: int) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    dim = 1 << num_qubits
    if matrix.shape != (dim, dim):
        raise CircuitError(
            f"gate matrix has shape {matrix.shape}, expected {(dim, dim)} "
            f"for {num_qubits} qubit(s)"
        )
    matrix = matrix.copy()
    matrix.setflags(write=False)
    return matrix


class Gate:
    """An immutable named unitary acting on ``num_qubits`` qubits.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic, e.g. ``"h"`` or ``"rz"``.
    num_qubits:
        Arity of the gate (1 for single-qubit gates, 2 for CX, ...).
    matrix:
        The ``2**num_qubits x 2**num_qubits`` unitary.  Row/column index bits
        follow the library bitstring convention: the *first* qubit the gate is
        applied to is the most significant bit.
    params:
        Parameters (rotation angles etc.); part of gate identity.  Reals
        are bound; :class:`~repro.circuit.Parameter` entries leave the
        gate parametric, in which case ``matrix`` must be ``None``.
    """

    __slots__ = ("_name", "_num_qubits", "_matrix", "_params")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        matrix: "np.ndarray | None",
        params: Sequence[ParamValue] = (),
    ) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(f"gate name must be a non-empty string, got {name!r}")
        if num_qubits < 1:
            raise CircuitError(f"gate must act on >= 1 qubit, got {num_qubits}")
        self._name = name
        self._num_qubits = int(num_qubits)
        self._params = tuple(
            p if isinstance(p, Parameter) else float(p) for p in params
        )
        parametric = any(isinstance(p, Parameter) for p in self._params)
        if matrix is None:
            if not parametric:
                raise CircuitError(
                    f"gate {name!r} has no matrix and no unbound parameters; "
                    "only parametric gates may defer their matrix"
                )
            self._matrix = None
        else:
            if parametric:
                raise CircuitError(
                    f"gate {name!r} has unbound parameters "
                    f"{[p.name for p in self.parameters]} and cannot carry a "
                    "concrete matrix"
                )
            self._matrix = _as_readonly_matrix(matrix, num_qubits)

    def __setstate__(self, state: tuple) -> None:
        # Default __slots__ pickling restores attributes but loses the
        # matrix's read-only flag (numpy arrays unpickle writeable);
        # re-freeze so an unpickled gate keeps the immutability contract.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        if self._matrix is not None:
            self._matrix.setflags(write=False)

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) unitary matrix of the gate.

        Raises :class:`CircuitError` for parametric gates — a gate with
        unbound parameters has no matrix until :meth:`Circuit.bind`
        substitutes values.
        """
        if self._matrix is None:
            raise CircuitError(
                f"gate {self._name!r} has unbound parameters "
                f"{[p.name for p in self.parameters]}; bind them "
                "(Circuit.bind) before asking for the matrix"
            )
        return self._matrix

    @property
    def params(self) -> Tuple[ParamValue, ...]:
        return self._params

    @property
    def is_parametric(self) -> bool:
        """Whether any parameter is an unbound :class:`Parameter`."""
        return self._matrix is None

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """The unbound :class:`Parameter` symbols, in parameter order."""
        return tuple(p for p in self._params if isinstance(p, Parameter))

    def is_unitary(self, atol: float = _ATOL) -> bool:
        matrix = self.matrix  # raises for parametric gates
        dim = matrix.shape[0]
        return bool(
            np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=atol)
        )

    def inverse(self) -> "Gate":
        """The adjoint gate ``U†``.

        When the gate library registers an inverse rule for this
        ``(name, params)`` (e.g. ``s`` -> ``sdg``, ``rx(t)`` -> ``rx(-t)``),
        the registered adjoint is returned so inverted circuits stay
        expressed in registry-resolvable pairs.  Otherwise self-inverse
        gates keep their name and anything else gets a ``dg`` suffix
        appended or stripped (``g.inverse().inverse() == g`` name-wise).
        """
        if self._matrix is None:
            raise CircuitError(
                f"parametric gate {self._name!r} has no inverse until its "
                "parameters are bound"
            )
        adj = self._matrix.conj().T
        try:
            from repro.gates.registry import resolve_inverse

            candidate = resolve_inverse(self._name, self._params)
        except ImportError:  # gates layer unavailable (partial install)
            candidate = None
        # The name may be shadowed by a user Gate with a different matrix,
        # so only trust a rule whose matrix really is the adjoint.
        if candidate is not None and np.allclose(candidate.matrix, adj, atol=_ATOL):
            return candidate
        if np.allclose(adj, self._matrix, atol=_ATOL):
            name = self._name
        elif self._name.endswith("dg"):
            name = self._name[:-2]
        else:
            name = self._name + "dg"
        return Gate(name, self._num_qubits, adj, self._params)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        if (
            self._name != other._name
            or self._num_qubits != other._num_qubits
            or self._params != other._params
        ):
            return False
        if self._matrix is None or other._matrix is None:
            # Equal names + params imply equal parametric shape.
            return self._matrix is None and other._matrix is None
        return bool(np.array_equal(self._matrix, other._matrix))

    def __hash__(self) -> int:
        return hash((self._name, self._num_qubits, self._params))

    def __repr__(self) -> str:
        if self._params:
            args = ", ".join(
                p.name if isinstance(p, Parameter) else f"{p:g}"
                for p in self._params
            )
            return f"Gate({self._name}({args}), qubits={self._num_qubits})"
        return f"Gate({self._name}, qubits={self._num_qubits})"
