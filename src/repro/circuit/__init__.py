"""Circuit intermediate representation.

The IR is deliberately matrix-aware but backend-agnostic: a :class:`Gate`
bundles a name, parameter tuple, and unitary matrix; an :class:`Instruction`
binds a gate to concrete qubit indices; a :class:`Circuit` is an ordered
instruction list over a fixed-width qubit register.  Simulators, transpiler
passes, and samplers all consume this IR and nothing else.
"""

from repro.circuit.gate import Gate
from repro.circuit.instruction import Instruction
from repro.circuit.circuit import Circuit

__all__ = ["Gate", "Instruction", "Circuit"]
