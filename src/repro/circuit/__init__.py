"""Circuit intermediate representation.

The IR is deliberately matrix-aware but backend-agnostic: a :class:`Gate`
bundles a name, parameter tuple, and unitary matrix; a :class:`Channel`
bundles a name, parameter tuple, and Kraus-operator set (a CPTP map); an
:class:`Instruction` binds either operation to concrete qubit indices; a
:class:`Circuit` is an ordered instruction list over a fixed-width qubit
register.  Dynamic circuits add three more leaves — :class:`Measure`,
:class:`Reset`, and the :class:`Conditional` classical-control wrapper —
plus a classical-bit register tracked on the circuit.  Simulators,
transpiler passes, and samplers all consume this IR and nothing else.
"""

from repro.circuit.channel import Channel
from repro.circuit.dynamic import Conditional, Measure, Reset
from repro.circuit.gate import Gate
from repro.circuit.instruction import Instruction, Operation
from repro.circuit.parameter import Parameter
from repro.circuit.circuit import Circuit, CircuitStats

__all__ = [
    "Channel",
    "Circuit",
    "CircuitStats",
    "Conditional",
    "Gate",
    "Instruction",
    "Measure",
    "Operation",
    "Parameter",
    "Reset",
]
