"""The :class:`Channel` leaf of the circuit IR: a CPTP map in Kraus form.

A channel is the open-system counterpart of :class:`~repro.circuit.gate.Gate`:
an immutable value object carrying a name, a qubit arity, bound real
parameters, and a tuple of ``2**k x 2**k`` Kraus operators ``K_i`` describing
the completely positive map ``rho -> sum_i K_i rho K_i†``.  Construction
validates trace preservation (``sum_i K_i† K_i == I``) so ill-normalised
noise cannot silently leak probability out of a simulation.

Channels live in the IR layer (not ``repro.noise``) for the same reason
``Gate`` does: instructions must be able to bind them to qubits without the
IR depending on the concrete channel library.  ``repro.noise`` builds the
standard channels (depolarizing, damping, ...) on top of this class.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.circuit.ptm import kraus_to_ptm, ptm_is_trace_preserving
from repro.utils.exceptions import CircuitError, NoiseModelError

_ATOL = 1e-8


class Channel:
    """An immutable named quantum channel acting on ``num_qubits`` qubits.

    Parameters
    ----------
    name:
        Lower-case channel mnemonic, e.g. ``"depolarizing"``.
    num_qubits:
        Arity of the channel (1 for single-qubit noise, 2 for correlated
        two-qubit noise, ...).
    kraus:
        The Kraus operators, each a ``2**num_qubits x 2**num_qubits``
        matrix.  Row/column index bits follow the library bitstring
        convention: the *first* qubit the channel is applied to is the most
        significant bit.
    params:
        Bound real parameters (error probabilities etc.); part of channel
        identity.
    validate:
        When true (default), reject Kraus sets that are not
        trace-preserving within ``atol``.  Internal callers composing
        channels from already-validated pieces may pass ``False``.
    """

    __slots__ = ("_name", "_num_qubits", "_kraus", "_params", "_ptm")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        kraus: Sequence[np.ndarray],
        params: Sequence[float] = (),
        validate: bool = True,
        atol: float = _ATOL,
    ) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(
                f"channel name must be a non-empty string, got {name!r}"
            )
        if num_qubits < 1:
            raise CircuitError(f"channel must act on >= 1 qubit, got {num_qubits}")
        kraus = tuple(kraus)
        if not kraus:
            raise CircuitError("channel needs at least one Kraus operator")
        dim = 1 << num_qubits
        frozen = []
        for i, operator in enumerate(kraus):
            operator = np.asarray(operator, dtype=complex)
            if operator.shape != (dim, dim):
                raise CircuitError(
                    f"Kraus operator {i} has shape {operator.shape}, expected "
                    f"{(dim, dim)} for {num_qubits} qubit(s)"
                )
            operator = operator.copy()
            operator.setflags(write=False)
            frozen.append(operator)
        self._name = name
        self._num_qubits = int(num_qubits)
        self._kraus = tuple(frozen)
        self._params = tuple(float(p) for p in params)
        # The Pauli transfer matrix is frozen alongside the Kraus set so
        # every consumer (the ptm lowering mode, analysis rules, future
        # density-backend reuse) shares one precomputed copy.
        ptm = kraus_to_ptm(self._kraus, self._num_qubits)
        ptm.setflags(write=False)
        self._ptm = ptm
        if validate:
            if not self.is_trace_preserving(atol=atol):
                raise NoiseModelError(
                    f"channel {name!r} is not trace-preserving: "
                    f"sum(K†K) deviates from the identity beyond atol={atol}"
                )
            if not ptm_is_trace_preserving(ptm, atol=atol):
                raise NoiseModelError(
                    f"channel {name!r} is not trace-preserving in the Pauli "
                    f"basis: the first PTM row deviates from (1, 0, ..., 0) "
                    f"beyond atol={atol}"
                )

    def __setstate__(self, state: tuple) -> None:
        # Default __slots__ pickling restores attributes but loses the Kraus
        # operators' read-only flag (numpy arrays unpickle writeable);
        # re-freeze so an unpickled channel keeps the immutability contract.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        # Re-check the shape invariant: pickles cross process boundaries
        # (worker pools, job queues), so a corrupted payload must fail
        # here — loudly, with the constructor's error — not as an axis
        # error deep inside a contraction loop.
        dim = 1 << self._num_qubits
        for i, operator in enumerate(self._kraus):
            if operator.shape != (dim, dim):
                raise CircuitError(
                    f"Kraus operator {i} has shape {operator.shape}, expected "
                    f"{(dim, dim)} for {self._num_qubits} qubit(s)"
                )
            operator.setflags(write=False)
        try:
            ptm = self._ptm
        except AttributeError:
            # Pickle from a version predating the PTM cache: leave the
            # slot unset; the ``ptm`` property recomputes lazily.
            pass
        else:
            if ptm.shape != (4**self._num_qubits,) * 2:
                raise CircuitError(
                    f"cached PTM has shape {ptm.shape}, expected "
                    f"{(4 ** self._num_qubits,) * 2} for "
                    f"{self._num_qubits} qubit(s)"
                )
            ptm.setflags(write=False)

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def kraus(self) -> Tuple[np.ndarray, ...]:
        """The (read-only) Kraus operators of the channel."""
        return self._kraus

    @property
    def params(self) -> Tuple[float, ...]:
        return self._params

    @property
    def ptm(self) -> np.ndarray:
        """The channel's Pauli transfer matrix, precomputed and read-only.

        A real ``(4**k, 4**k)`` float64 matrix in the normalised Pauli
        basis: ``R[a, b] = Tr(P_a E(P_b))``.  Frozen at construction;
        channels unpickled from versions predating the cache recompute it
        lazily on first access.
        """
        try:
            return self._ptm
        except AttributeError:
            ptm = kraus_to_ptm(self._kraus, self._num_qubits)
            ptm.setflags(write=False)
            self._ptm = ptm
            return self._ptm

    def is_trace_preserving(self, atol: float = _ATOL) -> bool:
        """Whether ``sum_i K_i† K_i == I`` within ``atol``."""
        dim = 1 << self._num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for operator in self._kraus:
            total += operator.conj().T @ operator
        return bool(np.allclose(total, np.eye(dim), rtol=0.0, atol=atol))

    def is_unital(self, atol: float = _ATOL) -> bool:
        """Whether the channel fixes the maximally mixed state
        (``sum_i K_i K_i† == I``); e.g. depolarizing is unital, amplitude
        damping is not."""
        dim = 1 << self._num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for operator in self._kraus:
            total += operator @ operator.conj().T
        return bool(np.allclose(total, np.eye(dim), rtol=0.0, atol=atol))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Channel):
            return NotImplemented
        return (
            self._name == other._name
            and self._num_qubits == other._num_qubits
            and self._params == other._params
            and len(self._kraus) == len(other._kraus)
            and all(
                np.array_equal(a, b) for a, b in zip(self._kraus, other._kraus)
            )
        )

    def __hash__(self) -> int:
        return hash((self._name, self._num_qubits, self._params))

    def __repr__(self) -> str:
        if self._params:
            args = ", ".join(f"{p:g}" for p in self._params)
            return (
                f"Channel({self._name}({args}), qubits={self._num_qubits}, "
                f"kraus={len(self._kraus)})"
            )
        return (
            f"Channel({self._name}, qubits={self._num_qubits}, "
            f"kraus={len(self._kraus)})"
        )
