"""Dynamic-circuit leaves of the IR: measure, reset, and classical control.

Static circuits are closed quantum evolutions; these three operations
open them up to the classical world:

* :class:`Measure` — projective Z-basis measurement of one qubit, with
  the outcome recorded into a classical bit (*clbit*) of the circuit's
  classical register.
* :class:`Reset` — non-unitary re-initialisation of one qubit to
  ``|0>`` (measure-and-flip, outcome discarded).
* :class:`Conditional` — a wrapper applying a bound :class:`Gate` only
  when a clbit holds a given value (``if_bit`` in builder spelling).

All three are immutable value objects like :class:`~repro.circuit.Gate`
and :class:`~repro.circuit.Channel`: hashable and comparable so the plan
cache can key on circuits containing them.  None of them is invertible,
and all of them act as barriers for the transpiler passes (like
channels): a rewrite must never commute a unitary across a collapse or a
classically controlled branch.
"""

from __future__ import annotations

from repro.circuit.gate import Gate
from repro.utils.exceptions import CircuitError


def _as_clbit(clbit: object) -> int:
    if isinstance(clbit, bool) or not isinstance(clbit, int):
        raise CircuitError(
            f"clbit index must be an int, got {type(clbit).__name__}"
        )
    if clbit < 0:
        raise CircuitError(f"clbit index must be non-negative, got {clbit}")
    return int(clbit)


class Measure:
    """Projective Z-basis measurement of one qubit into clbit ``clbit``."""

    __slots__ = ("_clbit",)

    num_qubits = 1
    name = "measure"

    def __init__(self, clbit: int) -> None:
        self._clbit = _as_clbit(clbit)

    @property
    def clbit(self) -> int:
        """Index of the classical bit receiving the outcome."""
        return self._clbit

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Measure):
            return NotImplemented
        return self._clbit == other._clbit

    def __hash__(self) -> int:
        return hash((Measure, self._clbit))

    def __repr__(self) -> str:
        return f"Measure(clbit={self._clbit})"


class Reset:
    """Re-initialise one qubit to ``|0>`` (projective measure, flip on 1)."""

    __slots__ = ()

    num_qubits = 1
    name = "reset"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Reset):
            return NotImplemented
        return True

    def __hash__(self) -> int:
        return hash(Reset)

    def __repr__(self) -> str:
        return "Reset()"


class Conditional:
    """A bound :class:`Gate` applied only when ``clbit`` reads ``value``.

    The wrapped gate must be concrete (non-parametric): a classically
    controlled branch resolves at execution time, after every sweep
    binding has already happened, so deferring *both* the matrix and the
    branch would make plan binding ambiguous.  Channels cannot be
    wrapped — classical control of noise is not a circuit-level concept
    in this IR.
    """

    __slots__ = ("_clbit", "_value", "_operation")

    def __init__(self, clbit: int, value: int, operation: Gate) -> None:
        self._clbit = _as_clbit(clbit)
        if value not in (0, 1):
            raise CircuitError(f"clbit condition value must be 0 or 1, got {value!r}")
        if not isinstance(operation, Gate):
            raise CircuitError(
                "if_bit wraps a Gate, got "
                f"{type(operation).__name__}"
            )
        if operation.is_parametric:
            raise CircuitError(
                f"cannot classically control parametric gate "
                f"{operation.name!r}; bind its parameters first"
            )
        self._value = int(value)
        self._operation = operation

    @property
    def clbit(self) -> int:
        """Index of the classical bit the branch reads."""
        return self._clbit

    @property
    def value(self) -> int:
        """The clbit value (0 or 1) that triggers the wrapped gate."""
        return self._value

    @property
    def operation(self) -> Gate:
        """The wrapped concrete :class:`Gate`."""
        return self._operation

    @property
    def num_qubits(self) -> int:
        return self._operation.num_qubits

    @property
    def name(self) -> str:
        return f"if[{self._operation.name}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conditional):
            return NotImplemented
        return (
            self._clbit == other._clbit
            and self._value == other._value
            and self._operation == other._operation
        )

    def __hash__(self) -> int:
        return hash((Conditional, self._clbit, self._value, self._operation))

    def __repr__(self) -> str:
        return (
            f"Conditional(clbit={self._clbit}, value={self._value}, "
            f"{self._operation!r})"
        )


DynamicOperation = (Measure, Reset, Conditional)


def clbits_used(operation: object) -> int:
    """Classical-register width implied by ``operation`` (0 for static ops)."""
    if isinstance(operation, (Measure, Conditional)):
        return operation.clbit + 1
    return 0
