"""The unified execution front door: ``submit()`` and ``execute()``.

One entry point for everything the stack can do: simulate one circuit or
a batch, sample counts/memory, evaluate observables, and sweep a
parameterized circuit over many bindings — all configured by a single
:class:`~repro.execution.RunOptions` object.

Batching semantics worth knowing:

* **Seeding** — batch element ``i`` samples from
  ``derive_seed(options.seed, i)``, so results are bitwise-reproducible
  across repeated calls and independent of batch composition.  Element 0
  matches ``sample_counts(circuit, shots, seed=seed)`` exactly.
* **Parameter sweeps** — a sweep transpiles the *parametric template
  once* (parametric gates act as pass barriers) and then binds each
  point, so an N-point sweep costs one transpile plus N simulations.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.circuit import Circuit, Parameter
from repro.execution.job import BatchResult, Job, Result
from repro.execution.options import RunOptions
from repro.observables import expectation
from repro.sampling.counts import Counts
from repro.sampling.sampler import (
    counts_from_probabilities,
    memory_from_probabilities,
    readout_probabilities,
)
from repro.sim.registry import get_backend
from repro.utils.exceptions import ExecutionError
from repro.utils.rng import derive_seed, ensure_rng

Sweep = Sequence[Mapping[Union[Parameter, str], float]]


def _normalise_sweep(parameter_sweep: Sweep, circuit: Circuit) -> List[Dict[str, float]]:
    names = {p.name for p in circuit.parameters()}
    if not names:
        raise ExecutionError(
            "parameter_sweep given, but the circuit has no unbound parameters"
        )
    points: List[Dict[str, float]] = []
    for index, binding in enumerate(parameter_sweep):
        if not isinstance(binding, Mapping):
            raise ExecutionError(
                f"sweep point {index} must be a mapping of parameters to "
                f"values, got {type(binding).__name__}"
            )
        point: Dict[str, float] = {}
        for key, value in binding.items():
            name = key.name if isinstance(key, Parameter) else str(key)
            if name in point and point[name] != float(value):
                raise ExecutionError(
                    f"sweep point {index} has conflicting values for "
                    f"parameter {name!r}"
                )
            point[name] = float(value)
        missing = sorted(names - set(point))
        if missing:
            raise ExecutionError(
                f"sweep point {index} leaves parameter(s) {missing} unbound"
            )
        points.append(point)
    if not points:
        raise ExecutionError("parameter_sweep must contain at least one point")
    return points


def _sample(state, options: RunOptions, seed: Optional[int]):
    """Counts (and optional per-shot memory) for one final state."""
    rng = ensure_rng(seed)
    probs = readout_probabilities(state, options.noise_model)
    if options.memory:
        # Tally counts from the same per-shot draw so the two views of
        # one experiment can never disagree.
        memory = memory_from_probabilities(probs, options.shots, rng, state.num_qubits)
        tally: Dict[str, int] = {}
        for outcome in memory:
            tally[outcome] = tally.get(outcome, 0) + 1
        return Counts(tally, num_qubits=state.num_qubits), memory
    return counts_from_probabilities(probs, options.shots, rng, state.num_qubits), None


def _run_batch(
    circuits: List[Circuit],
    options: RunOptions,
    bindings: Optional[List[Dict[str, float]]],
    single: bool,
) -> Union[Result, BatchResult]:
    start = time.perf_counter()
    backend = get_backend(options.backend)

    transpile_time = 0.0
    if options.optimize or options.passes is not None:
        from repro.transpile import transpile

        t0 = time.perf_counter()
        circuits = [transpile(c, passes=options.passes) for c in circuits]
        transpile_time = time.perf_counter() - t0
    # The backend must not transpile again (a sweep binds N circuits off
    # one already-transpiled template).
    element_options = options.replace(optimize=False, passes=None)

    if bindings is not None:
        elements: List[Tuple[Circuit, Optional[Dict[str, float]]]] = [
            (circuits[0].bind(point), point) for point in bindings
        ]
    else:
        elements = [(circuit, None) for circuit in circuits]

    results: List[Result] = []
    for index, (circuit, point) in enumerate(elements):
        unbound = circuit.parameters()
        if unbound:
            raise ExecutionError(
                f"circuit {index} still has unbound parameter(s) "
                f"{[p.name for p in unbound]}; bind them or pass "
                "parameter_sweep="
            )
        element_seed = derive_seed(options.seed, index)
        t0 = time.perf_counter()
        state = backend.run(circuit, options=element_options)
        run_time = time.perf_counter() - t0
        counts = memory = None
        sample_time = 0.0
        if options.shots:
            t0 = time.perf_counter()
            counts, memory = _sample(state, options, element_seed)
            sample_time = time.perf_counter() - t0
        values = tuple(
            expectation(state, observable) for observable in options.observables
        )
        results.append(
            Result(
                circuit,
                state,
                counts=counts,
                memory=memory,
                observables=options.observables,
                expectation_values=values,
                parameters=point,
                metadata={
                    "backend": backend.name,
                    "seed": element_seed,
                    "run_time_s": run_time,
                    "sample_time_s": sample_time,
                },
            )
        )
    if single:
        return results[0]
    return BatchResult(
        results,
        metadata={
            "backend": backend.name,
            "transpile_time_s": transpile_time,
            "total_time_s": time.perf_counter() - start,
        },
    )


def submit(
    circuits: Union[Circuit, Iterable[Circuit]],
    options: Optional[RunOptions] = None,
    *,
    parameter_sweep: Optional[Sweep] = None,
    **kwargs: Any,
) -> Job:
    """Build a lazy :class:`Job` for ``circuits`` under ``options``.

    Accepts either a prebuilt :class:`RunOptions` or the same fields as
    loose keywords (``backend=``, ``shots=``, ``seed=``, ``optimize=``,
    ``passes=``, ``noise_model=``, ``observables=``, ``memory=``).
    """
    options = RunOptions.coerce(options, **kwargs)

    single = isinstance(circuits, Circuit)
    circuit_list = [circuits] if single else list(circuits)
    if not circuit_list:
        raise ExecutionError("execute() needs at least one circuit")
    for index, circuit in enumerate(circuit_list):
        if not isinstance(circuit, Circuit):
            raise ExecutionError(
                f"batch element {index} is {type(circuit).__name__}, "
                "expected a Circuit"
            )

    bindings: Optional[List[Dict[str, float]]] = None
    if parameter_sweep is not None:
        if len(circuit_list) != 1:
            raise ExecutionError(
                f"a parameter sweep runs one template circuit, got "
                f"{len(circuit_list)}"
            )
        bindings = _normalise_sweep(parameter_sweep, circuit_list[0])
        single = False  # a sweep always yields a BatchResult
    else:
        for index, circuit in enumerate(circuit_list):
            unbound = circuit.parameters()
            if unbound:
                raise ExecutionError(
                    f"batch element {index} has unbound parameter(s) "
                    f"{[p.name for p in unbound]}; bind them "
                    "(Circuit.bind) or pass parameter_sweep="
                )

    num_elements = len(bindings) if bindings is not None else len(circuit_list)
    return Job(
        lambda: _run_batch(circuit_list, options, bindings, single),
        options,
        num_elements,
    )


def execute(
    circuits: Union[Circuit, Iterable[Circuit]],
    options: Optional[RunOptions] = None,
    *,
    parameter_sweep: Optional[Sweep] = None,
    **kwargs: Any,
) -> Union[Result, BatchResult]:
    """Execute circuits and return their results — the one front door.

    A single :class:`Circuit` yields a :class:`Result`; a sequence of
    circuits, or a ``parameter_sweep`` over one parametric template,
    yields a :class:`BatchResult` in submission order.  See
    :class:`RunOptions` for every knob and the module docstring for the
    seeding and sweep-transpile guarantees.
    """
    return submit(
        circuits, options, parameter_sweep=parameter_sweep, **kwargs
    ).result()
