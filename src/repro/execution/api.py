"""The unified execution front door: ``submit()`` and ``execute()``.

One entry point for everything the stack can do: simulate one circuit or
a batch, sample counts/memory, evaluate observables, and sweep a
parameterized circuit over many bindings — all configured by a single
:class:`~repro.execution.RunOptions` object.

Batching semantics worth knowing:

* **Seeding** — batch element ``i`` samples from
  ``derive_seed(options.seed, i)``, so results are bitwise-reproducible
  across repeated calls and independent of batch composition.  Element 0
  matches ``sample_counts(circuit, shots, seed=seed)`` exactly.
* **Parameter sweeps** — a sweep compiles the *parametric template once*
  into an :class:`~repro.plan.ExecutionPlan` (one transpile + one
  lowering, reused through the plan cache).  Statevector sweeps with no
  shots or noise then evolve **batched**: all N bindings stack into one
  ``(N, 2, ..., 2)`` state tensor and every op applies to the whole
  batch in a single contraction (see :func:`repro.plan.run_batched_sweep`).
  Sweeps that sample or carry noise fall back to per-element plan
  execution — still never re-transpiling or re-lowering.  The
  ``sweep_mode`` option pins either path explicitly.
"""

from __future__ import annotations

import time
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.circuit import Circuit, Parameter
from repro.execution.job import BatchResult, Job, Result
from repro.execution.options import RunOptions, resolve_sanitize_mode
from repro.observables import expectation
from repro.sampling.counts import Counts
from repro.sampling.sampler import (
    counts_from_probabilities,
    memory_from_probabilities,
    readout_probabilities,
)
from repro.sim.registry import get_backend
from repro.utils.bitstrings import bitstring_to_index, index_to_bitstring
from repro.utils.exceptions import ExecutionError
from repro.utils.rng import derive_seed, ensure_rng

if TYPE_CHECKING:
    from repro.analysis import AnalysisReport
    from repro.plan.plan import ExecutionPlan

Sweep = Sequence[Mapping[Union[Parameter, str], float]]


def _normalise_sweep(parameter_sweep: Sweep, circuit: Circuit) -> List[Dict[str, float]]:
    from repro.circuit.parameter import normalize_binding, validate_binding_names

    names = {p.name for p in circuit.parameters()}
    if not names:
        raise ExecutionError(
            "parameter_sweep given, but the circuit has no unbound parameters"
        )
    points: List[Dict[str, float]] = []
    for index, binding in enumerate(parameter_sweep):
        if not isinstance(binding, Mapping):
            raise ExecutionError(
                f"sweep point {index} must be a mapping of parameters to "
                f"values, got {type(binding).__name__}"
            )
        # Strays and gaps are both rejected up front — every execution
        # mode downstream (batched, per-element, legacy backend) then
        # sees the same fully-validated points.
        point = normalize_binding(
            binding, ExecutionError, label=f"sweep point {index}"
        )
        validate_binding_names(
            point,
            names,
            ExecutionError,
            label=f"sweep point {index}",
            require_complete=True,
        )
        points.append(point)
    if not points:
        raise ExecutionError("parameter_sweep must contain at least one point")
    return points


def sample_shard(
    probs: np.ndarray,
    shots: int,
    seed: Optional[int],
    num_qubits: int,
    memory: bool,
) -> Tuple[Counts, Optional[List[str]]]:
    """Counts (and optional per-shot memory) for one shard of shots.

    The unit of sampling work: one probability vector, one shot budget,
    one derived seed.  The serial sampler, the sharded sampler, and the
    worker pool all call exactly this function, which is what makes the
    three arrangements bitwise-interchangeable.
    """
    rng = ensure_rng(seed)
    if memory:
        # Tally counts from the same per-shot draw so the two views of
        # one experiment can never disagree.
        shard_memory = memory_from_probabilities(probs, shots, rng, num_qubits)
        tally: Dict[str, int] = {}
        for outcome in shard_memory:
            tally[outcome] = tally.get(outcome, 0) + 1
        return Counts(tally, num_qubits=num_qubits), shard_memory
    return counts_from_probabilities(probs, shots, rng, num_qubits), None


def _sample_probs(
    probs: np.ndarray,
    num_bits: int,
    options: RunOptions,
    element_index: int,
    workers: int = 1,
) -> Tuple[Counts, Optional[List[str]]]:
    """Counts/memory drawn from a precomputed probability vector.

    With ``shard_shots`` <= 1 this is the classic single-stream sampler
    seeded by ``derive_seed(seed, i)``.  With k > 1 shards, shard ``j``
    draws ``sizes[j]`` shots from ``derive_seed(seed, i, j)`` and the
    parts merge in shard order — the same split runs serially or on the
    worker pool, so results depend on ``(seed, shard_shots)`` only.
    """
    from repro.service.sharding import (
        effective_shard_count,
        merge_counts,
        merge_memory,
        shard_seeds,
        shard_sizes,
    )

    num_shards = effective_shard_count(options.shard_shots, options.shots)
    seeds = shard_seeds(options.seed, element_index, num_shards)
    if num_shards <= 1:
        return sample_shard(
            probs, options.shots, seeds[0], num_bits, options.memory
        )
    sizes = shard_sizes(options.shots, num_shards)
    tasks = [
        (probs, size, seed, num_bits, options.memory)
        for size, seed in zip(sizes, seeds)
    ]
    if workers > 1:
        from repro.service.pool import _shard_task, run_tasks

        parts = run_tasks(_shard_task, tasks, workers)
    else:
        parts = [sample_shard(*task) for task in tasks]
    return (
        merge_counts([part[0] for part in parts]),
        merge_memory([part[1] for part in parts]),
    )


def _sample(
    state: Any, options: RunOptions, element_index: int, workers: int = 1
) -> Tuple[Counts, Optional[List[str]]]:
    """Counts/memory for batch or sweep element ``element_index``.

    Computes the readout distribution of ``state`` (noise-model readout
    error applied) and delegates to :func:`_sample_probs`.
    """
    probs = readout_probabilities(state, options.noise_model)
    return _sample_probs(probs, state.num_qubits, options, element_index, workers)


def element_payload(
    plan: "ExecutionPlan",
    point: Optional[Mapping[str, float]],
    index: int,
    options: RunOptions,
    backend: Any,
    workers: int = 1,
) -> Dict[str, Any]:
    """Execute one compiled element: bind (sweeps), evolve, sample, measure.

    The shared per-element body of per-element sweeps and batches.  It
    runs identically on the parent (serial path) and inside a worker
    process (the pool's ``_element_task`` calls it with the unpickled
    plan), which is the bitwise-parity guarantee for ``max_workers``.
    Returns a plain dict so the payload crosses process boundaries
    without dragging Result/BatchResult construction into workers.

    Dynamic plans (measure/reset/if_bit, or trajectory Kraus sampling)
    route through :func:`_dynamic_payload` — shot-resolved per-shot
    trajectories on pure-state backends, exact branch bookkeeping on the
    density backend.
    """
    bound = plan.bind(point) if point is not None else plan
    if bound.has_dynamic_ops:
        return _dynamic_payload(bound, index, options, backend, workers)
    t0 = time.perf_counter()
    state = backend.execute_plan(bound, sanitize=options.sanitize)
    run_time = time.perf_counter() - t0
    counts = memory = None
    sample_time = 0.0
    if options.shots:
        t0 = time.perf_counter()
        counts, memory = _sample(state, options, index, workers=workers)
        sample_time = time.perf_counter() - t0
    values = tuple(
        expectation(state, observable) for observable in options.observables
    )
    return {
        "index": index,
        "state": state,
        "counts": counts,
        "memory": memory,
        "values": values,
        "run_time_s": run_time,
        "sample_time_s": sample_time,
    }


def trajectory_shard(
    plan: "ExecutionPlan",
    element_index: int,
    start: int,
    count: int,
    options: RunOptions,
    backend: Any,
) -> Dict[str, Any]:
    """Run trajectories ``[start, start + count)`` of one element.

    The unit of trajectory work, mirroring :func:`sample_shard` for
    shots: trajectory ``t`` (absolute index, whatever the shard split)
    seeds its own stream from ``derive_seed(seed, element_index, t)``,
    evolves one stochastic pure state, records one outcome — the clbit
    string when the circuit measures into clbits, otherwise one terminal
    readout draw from the same stream — and evaluates each requested
    observable exactly on that trajectory's state.  Because every
    per-trajectory quantity depends only on ``(seed, element_index, t)``,
    any shard split (serial, or ``max_workers`` pool shards) merges to
    bitwise-identical results.
    """
    tally: Dict[str, int] = {}
    memory: Optional[List[str]] = [] if options.memory else None
    values: List[List[float]] = []
    for t in range(start, start + count):
        rng = ensure_rng(derive_seed(options.seed, element_index, t))
        classical: Dict[str, Any] = {}
        state = backend.execute_plan(
            plan, rng=rng, classical=classical, sanitize=options.sanitize
        )
        if plan.num_clbits:
            outcome = classical["bits"]
        else:
            # No clbits (e.g. reset-only or pure Kraus-noise circuits):
            # draw one terminal readout outcome from the trajectory's own
            # stream, readout error included.
            probs = readout_probabilities(state, options.noise_model)
            outcome = index_to_bitstring(
                int(rng.choice(probs.size, p=probs)), plan.num_qubits
            )
        tally[outcome] = tally.get(outcome, 0) + 1
        if memory is not None:
            memory.append(outcome)
        values.append(
            [expectation(state, observable) for observable in options.observables]
        )
    return {
        "tally": tally,
        "memory": memory,
        "num_bits": plan.num_clbits or plan.num_qubits,
        "values": values,
    }


def _trajectory_element(
    plan: "ExecutionPlan",
    index: int,
    options: RunOptions,
    backend: Any,
    workers: int,
) -> Dict[str, Any]:
    """Shot-resolved dynamic execution: ``shots`` independent trajectories.

    Counts/memory tally the per-trajectory outcomes; expectation values
    are the trajectory **means** of the per-trajectory exact values, with
    the standard error of each mean surfaced as ``expectation_std`` (the
    statistical handle the bench agreement gate uses).  Trajectories
    shard across the worker pool exactly like shot shards — merged in
    shard order over absolute-index seeds, so ``max_workers`` never
    changes the result.
    """
    t0 = time.perf_counter()
    shots = options.shots
    if workers > 1 and shots > 1:
        from repro.service.pool import _trajectory_task, dump_plan, run_tasks
        from repro.service.sharding import shard_sizes

        blob = dump_plan(plan)
        shipped = _worker_options(options)
        sizes = shard_sizes(shots, min(workers, shots))
        tasks = []
        cursor = 0
        for size in sizes:
            tasks.append((blob, index, cursor, size, shipped, backend))
            cursor += size
        parts = run_tasks(_trajectory_task, tasks, workers)
    else:
        parts = [trajectory_shard(plan, index, 0, shots, options, backend)]
    tally: Dict[str, int] = {}
    for part in parts:
        for outcome, count in part["tally"].items():
            tally[outcome] = tally.get(outcome, 0) + count
    counts = Counts(tally, num_qubits=parts[0]["num_bits"])
    memory: Optional[List[str]] = None
    if options.memory:
        memory = []
        for part in parts:
            memory.extend(part["memory"])
    # Concatenate per-trajectory values in absolute trajectory order and
    # reduce over the full (T, n_obs) array: the mean/std are then
    # computed identically for every shard split, keeping expectation
    # values (not just counts) invariant under max_workers.
    stacked = np.asarray(
        [row for part in parts for row in part["values"]], dtype=np.float64
    ).reshape(shots, len(options.observables))
    means = stacked.mean(axis=0)
    variances = np.maximum(np.mean(stacked**2, axis=0) - means**2, 0.0)
    stds = np.sqrt(variances / shots)
    return {
        "index": index,
        # No single final state exists for a trajectory average; counts,
        # memory and expectation means carry the result.
        "state": None,
        "counts": counts,
        "memory": memory,
        "values": tuple(float(v) for v in means),
        "expectation_std": tuple(float(s) for s in stds),
        "run_time_s": time.perf_counter() - t0,
        "sample_time_s": 0.0,
    }


def _dynamic_payload(
    plan: "ExecutionPlan",
    index: int,
    options: RunOptions,
    backend: Any,
    workers: int,
) -> Dict[str, Any]:
    """Per-element payload for a plan with dynamic ops.

    Density mode stays deterministic: one branch-bookkeeping evolution
    yields the ensemble-average state *and* the exact clbit distribution,
    which is sampled directly (readout error models qubit measurement
    hardware and is deliberately not applied to clbit registers).  Pure
    modes are stochastic: with shots they run per-shot trajectories;
    without shots the statevector backend runs a single seeded trajectory
    (the trajectory backend instead demands shots — its whole output is
    the trajectory average).
    """
    if plan.mode == "density":
        t0 = time.perf_counter()
        classical: Dict[str, Any] = {}
        state = backend.execute_plan(
            plan, classical=classical, sanitize=options.sanitize
        )
        run_time = time.perf_counter() - t0
        counts = memory = None
        sample_time = 0.0
        if options.shots:
            t0 = time.perf_counter()
            if plan.num_clbits:
                probs = np.zeros(1 << plan.num_clbits, dtype=np.float64)
                for bits, weight in classical["distribution"].items():
                    probs[bitstring_to_index(bits)] = weight
                probs /= probs.sum()
                counts, memory = _sample_probs(
                    probs, plan.num_clbits, options, index, workers
                )
            else:
                counts, memory = _sample(state, options, index, workers=workers)
            sample_time = time.perf_counter() - t0
        values = tuple(
            expectation(state, observable) for observable in options.observables
        )
        return {
            "index": index,
            "state": state,
            "counts": counts,
            "memory": memory,
            "values": values,
            "run_time_s": run_time,
            "sample_time_s": sample_time,
        }
    if options.shots == 0:
        if plan.mode == "trajectory":
            raise ExecutionError(
                "the trajectory backend needs shots >= 1: each shot is one "
                "Monte-Carlo trajectory and the result is their average; "
                "set shots= in RunOptions (or use backend='density_matrix' "
                "for the exact state)"
            )
        # Statevector + dynamic ops, no shots: one stochastic collapse,
        # seeded as trajectory 0 of this element for reproducibility.
        t0 = time.perf_counter()
        rng = ensure_rng(derive_seed(options.seed, index, 0))
        state = backend.execute_plan(plan, rng=rng, sanitize=options.sanitize)
        return {
            "index": index,
            "state": state,
            "counts": None,
            "memory": None,
            "values": tuple(
                expectation(state, observable) for observable in options.observables
            ),
            "run_time_s": time.perf_counter() - t0,
            "sample_time_s": 0.0,
        }
    return _trajectory_element(plan, index, options, backend, workers)


def _circuit_reports(
    circuits: Sequence[Circuit], backend: Any, options: RunOptions
) -> Optional[List["AnalysisReport"]]:
    """Static-analysis reports per circuit, or ``None`` when validation is off.

    Runs :func:`repro.analysis.analyze` on the circuits *as submitted*
    (pre-transpile), so diagnostic sites index the user's instructions.
    The import is lazy: ``validate="off"`` (the default) keeps the hot
    path free of the analysis layer entirely.
    """
    if options.validate == "off":
        return None
    from repro.analysis import AnalysisContext, analyze

    context = AnalysisContext(mode=getattr(backend, "plan_mode", None))
    return [analyze(circuit, context=context) for circuit in circuits]


def _enforce_validation(
    reports: Optional[Sequence["AnalysisReport"]], options: RunOptions
) -> None:
    """Under ``validate="strict"``, raise on any error-severity finding."""
    if options.validate != "strict":
        return
    for index, report in enumerate(reports):
        subject = f"circuit {index}" if len(reports) > 1 else "the circuit"
        report.raise_if_errors(subject)


def _effective_workers(options: RunOptions) -> int:
    from repro.service.pool import resolve_max_workers

    return resolve_max_workers(options.max_workers)


def _worker_options(options: RunOptions) -> RunOptions:
    """The options shipped to workers: compile-side knobs stripped.

    Workers receive already-compiled plans, so ``passes`` (arbitrary,
    possibly unpicklable pass objects) and the ``backend`` field (the
    live instance ships separately) would only widen the pickle surface.
    """
    return options.replace(passes=None, backend=None)


def _parallel_elements(
    plan_blobs: Sequence[bytes],
    points: Sequence[Optional[Dict[str, float]]],
    options: RunOptions,
    backend: Any,
    workers: int,
) -> List[Dict[str, Any]]:
    """Fan per-element work out to the pool; payload dicts in index order."""
    from repro.service.pool import _element_task, run_tasks

    shipped = _worker_options(options)
    tasks = [
        (blob, point, index, shipped, backend)
        for index, (blob, point) in enumerate(zip(plan_blobs, points))
    ]
    return run_tasks(_element_task, tasks, workers)


def _compile_timed(
    circuit: Circuit, backend: Any, options: RunOptions
) -> Tuple["ExecutionPlan", float, float]:
    """Compile via the plan cache, attributing only THIS call's work.

    Returns ``(plan, compile_time_s, transpile_time_s)`` where both
    timings describe the current call: a cache hit costs only the lookup
    and contributes zero transpile time, instead of echoing the original
    compile's wall times (which could exceed this call's own total).
    Hit detection reads the cache's miss counter around the compile —
    sound here because compilation is synchronous and single-threaded.
    """
    from repro.plan import compile_plan, plan_cache_info

    misses_before = plan_cache_info()["misses"]
    t0 = time.perf_counter()
    plan = compile_plan(circuit, backend, options)
    compile_time = time.perf_counter() - t0
    compiled_now = plan_cache_info()["misses"] > misses_before
    return plan, compile_time, (plan.transpile_time_s if compiled_now else 0.0)


def _sweep_is_batchable(
    template: Circuit, backend: Any, options: RunOptions
) -> bool:
    """Whether a sweep can stack into one batched state evolution.

    Batched evolution is pure-state arithmetic with no per-element
    randomness, so it requires the statevector lowering, no
    shots/memory/noise, and no dynamic ops (measure/reset/if_bit collapse
    each sweep point independently); everything else falls back to
    per-element plan execution (same compiled plan, bound per point).
    """
    return (
        getattr(backend, "plan_mode", None) == "statevector"
        and options.shots == 0
        and not options.memory
        and options.noise_model is None
        and not template.has_dynamic_ops()
    )


def _run_sweep(
    template: Circuit,
    backend: Any,
    options: RunOptions,
    bindings: List[Dict[str, float]],
    start: float,
) -> BatchResult:
    """Execute a parameter sweep off one compiled template.

    On a plan-capable backend (one declaring ``plan_mode``) the template
    compiles exactly once (transpile + lowering, via the plan cache);
    bindings then either evolve together as a single ``(N, 2, ..., 2)``
    batch (one contraction per op) or bind the plan per element — never
    re-lowering either way.  A backend satisfying only the
    :class:`~repro.sim.Backend` protocol still sweeps: one transpile of
    the template, then ``bind() + run()`` per point.
    """
    plan_capable = getattr(backend, "plan_mode", None) is not None
    batchable = plan_capable and _sweep_is_batchable(template, backend, options)
    if options.sweep_mode == "batched" and not batchable:
        if template.has_dynamic_ops():
            raise ExecutionError(
                "sweep_mode='batched' cannot run dynamic circuits: "
                "measure/reset/if_bit collapse each sweep point "
                "independently, so there is no shared batched evolution — "
                "use sweep_mode='auto' or 'per_element'"
            )
        raise ExecutionError(
            "sweep_mode='batched' requires a plan-capable statevector "
            "backend with shots=0, memory=False and no noise model; use "
            "'auto' to fall back to per-element execution"
        )
    use_batched = batchable and options.sweep_mode != "per_element"
    reports = _circuit_reports([template], backend, options)

    plan = None
    if plan_capable:
        plan, compile_time, transpile_time = _compile_timed(
            template, backend, options
        )
        bound_template = plan.circuit

        def run_point(point: Dict[str, float]) -> Any:
            return backend.execute_plan(plan.bind(point))

    else:
        compile_time = 0.0
        transpile_time = 0.0
        bound_template = template
        if options.optimize or options.passes is not None:
            from repro.transpile import transpile

            t0 = time.perf_counter()
            bound_template = transpile(template, passes=options.passes)
            transpile_time = time.perf_counter() - t0
        element_options = options.replace(optimize=False, passes=None)

        def run_point(point: Dict[str, float]) -> Any:
            return backend.run(bound_template.bind(point), options=element_options)

    diagnostics = None
    if reports is not None:
        # Every sweep element runs the same template, so one report
        # (circuit + compiled-plan findings) covers the whole sweep.
        report = reports[0]
        if plan is not None:
            from repro.analysis import verify_plan

            report = report + verify_plan(plan)
        _enforce_validation([report], options)
        diagnostics = tuple(report)

    workers = _effective_workers(options)
    results: List[Result] = []
    if use_batched:
        from repro.observables import expectation_batched
        from repro.plan import run_batched_sweep

        t0 = time.perf_counter()
        batch_states = run_batched_sweep(plan, bindings)
        run_time = time.perf_counter() - t0
        sanitize_mode = resolve_sanitize_mode(options.sanitize)
        if sanitize_mode != "off":
            # Batched evolution has no per-op hook; run the final-state
            # checks on every element of the stack (lazy import keeps the
            # default path analysis-free, like _circuit_reports).
            from repro.analysis.sanitize import sanitize_batch

            sanitize_batch(plan, batch_states, sanitize_mode)
        per_observable = [
            expectation_batched(batch_states, observable)
            for observable in options.observables
        ]
        element_time = run_time / len(bindings)
        for index, point in enumerate(bindings):
            state = backend._finalize(batch_states[index], plan.num_qubits)
            values = tuple(values[index] for values in per_observable)
            metadata = {
                "backend": backend.name,
                "seed": derive_seed(options.seed, index),
                "run_time_s": element_time,
                "sample_time_s": 0.0,
            }
            if diagnostics is not None:
                metadata["diagnostics"] = diagnostics
            results.append(
                Result(
                    # Deferred: Result.circuit resolves the bound circuit
                    # on first access, so an N-point sweep does not pay N
                    # full template re-binds just to fill a field most
                    # consumers never read.
                    lambda point=point: bound_template.bind(point),
                    state,
                    observables=options.observables,
                    expectation_values=values,
                    parameters=point,
                    metadata=metadata,
                )
            )
    else:
        if plan_capable:
            if workers > 1 and len(bindings) > 1:
                # The plan compiled (and pickles) once; workers only
                # bind/execute/sample.  Per-element seeds derive from the
                # element index, so the fan-out is results-invisible.
                from repro.service.pool import dump_plan

                blob = dump_plan(plan)
                payloads = _parallel_elements(
                    [blob] * len(bindings), bindings, options, backend, workers
                )
            else:
                payloads = [
                    element_payload(
                        plan, point, index, options, backend, workers=workers
                    )
                    for index, point in enumerate(bindings)
                ]
        else:
            # Protocol-only backends have no plan to ship; they sweep
            # serially (sharded sampling still applies, still off the
            # element-index seeds).
            payloads = []
            for index, point in enumerate(bindings):
                t0 = time.perf_counter()
                state = run_point(point)
                run_time = time.perf_counter() - t0
                counts = memory = None
                sample_time = 0.0
                if options.shots:
                    t0 = time.perf_counter()
                    counts, memory = _sample(
                        state, options, index, workers=workers
                    )
                    sample_time = time.perf_counter() - t0
                values = tuple(
                    expectation(state, observable)
                    for observable in options.observables
                )
                payloads.append(
                    {
                        "index": index,
                        "state": state,
                        "counts": counts,
                        "memory": memory,
                        "values": values,
                        "run_time_s": run_time,
                        "sample_time_s": sample_time,
                    }
                )
        for payload, point in zip(payloads, bindings):
            metadata = {
                "backend": backend.name,
                "seed": derive_seed(options.seed, payload["index"]),
                "run_time_s": payload["run_time_s"],
                "sample_time_s": payload["sample_time_s"],
            }
            if "expectation_std" in payload:
                metadata["expectation_std"] = payload["expectation_std"]
            if diagnostics is not None:
                metadata["diagnostics"] = diagnostics
            results.append(
                Result(
                    lambda point=point: bound_template.bind(point),
                    payload["state"],
                    counts=payload["counts"],
                    memory=payload["memory"],
                    observables=options.observables,
                    expectation_values=payload["values"],
                    parameters=point,
                    metadata=metadata,
                )
            )
    return BatchResult(
        results,
        metadata={
            "backend": backend.name,
            "sweep_mode": "batched" if use_batched else "per_element",
            "workers": 1 if use_batched else workers,
            "transpile_time_s": transpile_time,
            "plan_compile_time_s": compile_time,
            "total_time_s": time.perf_counter() - start,
        },
    )


def _run_batch(
    circuits: List[Circuit],
    options: RunOptions,
    bindings: Optional[List[Dict[str, float]]],
    single: bool,
) -> Union[Result, BatchResult]:
    start = time.perf_counter()
    backend = get_backend(options.backend)

    if bindings is not None:
        return _run_sweep(circuits[0], backend, options, bindings, start)

    plan_capable = getattr(backend, "plan_mode", None) is not None
    reports = _circuit_reports(circuits, backend, options)
    transpile_time = 0.0
    compile_time = 0.0
    if not plan_capable and (options.optimize or options.passes is not None):
        # Protocol-only backends know nothing of plans: transpile here,
        # then hand them pre-optimised circuits with optimisation off.
        from repro.transpile import transpile

        t0 = time.perf_counter()
        circuits = [transpile(c, passes=options.passes) for c in circuits]
        transpile_time = time.perf_counter() - t0
    element_options = options.replace(optimize=False, passes=None)

    for index, circuit in enumerate(circuits):
        unbound = circuit.parameters()
        if unbound:
            raise ExecutionError(
                f"circuit {index} still has unbound parameter(s) "
                f"{[p.name for p in unbound]}; bind them or pass "
                "parameter_sweep="
            )

    workers = _effective_workers(options)
    if plan_capable:
        # Compile every element in the parent (through the plan cache)
        # with the *full* options, so transpile + lowering amortise
        # together across repeated execute() calls — workers never
        # compile, whatever the worker count.
        plans = []
        for circuit in circuits:
            plan, element_compile, element_transpile = _compile_timed(
                circuit, backend, options
            )
            compile_time += element_compile
            transpile_time += element_transpile
            plans.append(plan)
        if reports is not None:
            from repro.analysis import verify_plan

            reports = [
                report + verify_plan(plan)
                for report, plan in zip(reports, plans)
            ]
            _enforce_validation(reports, options)
        result_circuits = [plan.circuit for plan in plans]
        if workers > 1 and len(plans) > 1:
            from repro.service.pool import dump_plan

            blobs = [dump_plan(plan) for plan in plans]
            payloads = _parallel_elements(
                blobs, [None] * len(plans), options, backend, workers
            )
        else:
            payloads = [
                element_payload(
                    plan, None, index, options, backend, workers=workers
                )
                for index, plan in enumerate(plans)
            ]
    else:
        if reports is not None:
            _enforce_validation(reports, options)
        result_circuits = circuits
        payloads = []
        for index, circuit in enumerate(circuits):
            t0 = time.perf_counter()
            state = backend.run(circuit, options=element_options)
            run_time = time.perf_counter() - t0
            counts = memory = None
            sample_time = 0.0
            if options.shots:
                t0 = time.perf_counter()
                counts, memory = _sample(state, options, index, workers=workers)
                sample_time = time.perf_counter() - t0
            values = tuple(
                expectation(state, observable)
                for observable in options.observables
            )
            payloads.append(
                {
                    "index": index,
                    "state": state,
                    "counts": counts,
                    "memory": memory,
                    "values": values,
                    "run_time_s": run_time,
                    "sample_time_s": sample_time,
                }
            )

    results: List[Result] = []
    for payload, result_circuit in zip(payloads, result_circuits):
        metadata = {
            "backend": backend.name,
            "seed": derive_seed(options.seed, payload["index"]),
            "run_time_s": payload["run_time_s"],
            "sample_time_s": payload["sample_time_s"],
        }
        if "expectation_std" in payload:
            metadata["expectation_std"] = payload["expectation_std"]
        if reports is not None:
            metadata["diagnostics"] = tuple(reports[payload["index"]])
        results.append(
            Result(
                result_circuit,
                payload["state"],
                counts=payload["counts"],
                memory=payload["memory"],
                observables=options.observables,
                expectation_values=payload["values"],
                parameters=None,
                metadata=metadata,
            )
        )
    if single:
        return results[0]
    return BatchResult(
        results,
        metadata={
            "backend": backend.name,
            "workers": workers,
            "transpile_time_s": transpile_time,
            "plan_compile_time_s": compile_time,
            "total_time_s": time.perf_counter() - start,
        },
    )


def submit(
    circuits: Union[Circuit, Iterable[Circuit]],
    options: Optional[RunOptions] = None,
    *,
    parameter_sweep: Optional[Sweep] = None,
    **kwargs: Any,
) -> Job:
    """Build a lazy :class:`Job` for ``circuits`` under ``options``.

    Accepts either a prebuilt :class:`RunOptions` or the same fields as
    loose keywords (``backend=``, ``shots=``, ``seed=``, ``optimize=``,
    ``passes=``, ``noise_model=``, ``observables=``, ``memory=``).
    """
    options = RunOptions.coerce(options, **kwargs)

    single = isinstance(circuits, Circuit)
    circuit_list = [circuits] if single else list(circuits)
    if not circuit_list:
        raise ExecutionError("execute() needs at least one circuit")
    for index, circuit in enumerate(circuit_list):
        if not isinstance(circuit, Circuit):
            raise ExecutionError(
                f"batch element {index} is {type(circuit).__name__}, "
                "expected a Circuit"
            )

    bindings: Optional[List[Dict[str, float]]] = None
    if parameter_sweep is not None:
        if len(circuit_list) != 1:
            raise ExecutionError(
                f"a parameter sweep runs one template circuit, got "
                f"{len(circuit_list)}"
            )
        bindings = _normalise_sweep(parameter_sweep, circuit_list[0])
        single = False  # a sweep always yields a BatchResult
    else:
        for index, circuit in enumerate(circuit_list):
            unbound = circuit.parameters()
            if unbound:
                raise ExecutionError(
                    f"batch element {index} has unbound parameter(s) "
                    f"{[p.name for p in unbound]}; bind them "
                    "(Circuit.bind) or pass parameter_sweep="
                )

    num_elements = len(bindings) if bindings is not None else len(circuit_list)
    return Job(
        lambda: _run_batch(circuit_list, options, bindings, single),
        options,
        num_elements,
    )


def execute(
    circuits: Union[Circuit, Iterable[Circuit]],
    options: Optional[RunOptions] = None,
    *,
    parameter_sweep: Optional[Sweep] = None,
    **kwargs: Any,
) -> Union[Result, BatchResult]:
    """Execute circuits and return their results — the one front door.

    A single :class:`Circuit` yields a :class:`Result`; a sequence of
    circuits, or a ``parameter_sweep`` over one parametric template,
    yields a :class:`BatchResult` in submission order.  See
    :class:`RunOptions` for every knob and the module docstring for the
    seeding and sweep-transpile guarantees.
    """
    return submit(
        circuits, options, parameter_sweep=parameter_sweep, **kwargs
    ).result()
