"""Execution layer: the ``execute()`` front door and its result model.

``execute(circuits, **options)`` replaces the per-function kwarg sprawl
of ``run()`` / ``sample_counts()`` / ``run_suite()`` with one surface:
a frozen :class:`RunOptions` bundle, a lazy :class:`Job` handle, and
:class:`Result` / :class:`BatchResult` objects carrying the final state,
counts, per-observable expectation values, and timing metadata.  The
older entry points remain as thin shims over the same machinery.
"""

from repro.execution.options import RunOptions
from repro.execution.job import BatchResult, Job, Result
from repro.execution.api import execute, submit

__all__ = ["BatchResult", "Job", "Result", "RunOptions", "execute", "submit"]
