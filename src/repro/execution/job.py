"""The :class:`Job` handle and its :class:`Result` / :class:`BatchResult`.

``execute()`` separates *what to run* (circuits + :class:`RunOptions`,
held by a :class:`Job`) from *what came out* (:class:`Result` objects
carrying the final state handle, sampled :class:`~repro.sampling.Counts`,
per-observable expectation values, and timing metadata).  Jobs run
lazily: the work happens on the first :meth:`Job.result` call and the
outcome is cached, so a handle can be passed around freely.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.utils.exceptions import ExecutionError

if TYPE_CHECKING:
    from repro.circuit import Circuit
    from repro.execution.options import RunOptions
    from repro.sampling.counts import Counts


class Result:
    """The outcome of executing one circuit.

    Everything is computed eagerly at execution time except
    :meth:`expectation`, which evaluates further observables on the
    retained state handle on demand.
    """

    __slots__ = (
        "_circuit",
        "_state",
        "_counts",
        "_memory",
        "_observables",
        "_expectation_values",
        "_parameters",
        "_metadata",
    )

    def __init__(
        self,
        circuit: Union["Circuit", Callable[[], "Circuit"]],
        state: Optional[Any],
        counts: Optional["Counts"] = None,
        memory: Optional[List[str]] = None,
        observables: Tuple[Any, ...] = (),
        expectation_values: Tuple[float, ...] = (),
        parameters: Optional[Dict[str, float]] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        if len(observables) != len(expectation_values):
            raise ExecutionError(
                f"{len(observables)} observable(s) but "
                f"{len(expectation_values)} expectation value(s)"
            )
        self._circuit = circuit
        self._state = state
        self._counts = counts
        self._memory = list(memory) if memory is not None else None
        self._observables = tuple(observables)
        self._expectation_values = tuple(float(v) for v in expectation_values)
        self._parameters = dict(parameters) if parameters is not None else None
        self._metadata = dict(metadata) if metadata is not None else {}

    @property
    def circuit(self) -> "Circuit":
        """The circuit that actually ran (transpiled and bound).

        Sweep results defer this: the execution layer hands in a zero-arg
        factory instead of a prebuilt circuit (binding N templates up
        front would cost O(points x gates) for a field most consumers
        never read), and the first access resolves and caches it.
        Circuits are not callable, so the check below cannot misfire on
        an eagerly-supplied circuit.
        """
        if callable(self._circuit):
            self._circuit = self._circuit()
        return self._circuit

    @property
    def state(self) -> Optional[Any]:
        """The final state handle (Statevector or DensityMatrix).

        ``None`` for shot-resolved dynamic/trajectory execution: those
        results are averages over stochastic trajectories, so no single
        final state exists — counts, memory, and the expectation means
        (with ``metadata["expectation_std"]``) carry the outcome.
        """
        return self._state

    @property
    def counts(self) -> Optional["Counts"]:
        """Sampled :class:`~repro.sampling.Counts`; ``None`` when shots=0."""
        return self._counts

    @property
    def memory(self) -> Optional[List[str]]:
        """Per-shot outcome list when ``memory=True`` was requested."""
        return list(self._memory) if self._memory is not None else None

    @property
    def observables(self) -> Tuple[Any, ...]:
        """The observables evaluated at execution time, in request order."""
        return self._observables

    @property
    def expectation_values(self) -> Tuple[float, ...]:
        """``<O>`` for each requested observable, aligned with observables."""
        return self._expectation_values

    @property
    def expectations(self) -> Dict[Any, float]:
        """Observable -> expectation value for the requested observables."""
        return dict(zip(self._observables, self._expectation_values))

    @property
    def parameters(self) -> Optional[Dict[str, float]]:
        """The parameter binding this result ran under (sweeps only)."""
        return dict(self._parameters) if self._parameters is not None else None

    @property
    def metadata(self) -> Dict[str, Any]:
        """Timing and provenance: backend, derived seed, wall-times."""
        return dict(self._metadata)

    def __getstate__(self) -> Dict[str, Any]:
        # Sweep results may defer the circuit behind a zero-arg closure,
        # and closures do not pickle; resolve it first so results can
        # cross process boundaries (worker pools) intact.
        _ = self.circuit
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def expectation(self, observable: Any) -> float:
        """Evaluate one more observable on the retained final state."""
        from repro.observables import expectation

        if self._state is None:
            raise ExecutionError(
                "this result retained no final state (trajectory-averaged "
                "results have none); request the observable via "
                "RunOptions(observables=...) so it is averaged over the "
                "trajectories at execution time"
            )
        return expectation(self._state, observable)

    def __repr__(self) -> str:
        shots = self._counts.shots if self._counts is not None else 0
        return (
            f"Result({self._state!r}, shots={shots}, "
            f"observables={len(self._observables)})"
        )


class BatchResult:
    """An ordered collection of per-circuit :class:`Result` objects."""

    __slots__ = ("_results", "_metadata")

    def __init__(
        self,
        results: Sequence[Result],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        results = tuple(results)
        if not results:
            raise ExecutionError("BatchResult needs at least one Result")
        if not all(isinstance(r, Result) for r in results):
            raise ExecutionError("BatchResult entries must be Result objects")
        self._results = results
        self._metadata = dict(metadata) if metadata is not None else {}

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[Result]:
        return iter(self._results)

    def __getitem__(self, index: Union[int, slice]) -> Union[Result, Tuple[Result, ...]]:
        return self._results[index]

    @property
    def results(self) -> Tuple[Result, ...]:
        return self._results

    @property
    def counts(self) -> Tuple[Any, ...]:
        """Per-circuit counts, aligned with the submitted batch."""
        return tuple(r.counts for r in self._results)

    @property
    def expectation_values(self) -> Tuple[Tuple[float, ...], ...]:
        """Per-circuit expectation tuples, aligned with the batch."""
        return tuple(r.expectation_values for r in self._results)

    @property
    def metadata(self) -> Dict[str, Any]:
        """Batch-level timing: transpile and total wall-time, backend."""
        return dict(self._metadata)

    def __repr__(self) -> str:
        return f"BatchResult({len(self._results)} results)"


class Job:
    """A lazy execution handle: circuits + options, run once on demand.

    Created by :func:`repro.execution.submit`; :meth:`result` performs
    the work on first call and caches the outcome (or the error), so
    repeated calls are free and deterministic.

    A job enqueued through :func:`repro.service.execute_async` is
    *async* instead: a dispatcher thread runs it, :attr:`status` moves
    through ``queued -> running -> done``/``error``, and
    :meth:`result` blocks (honouring ``timeout``) until it finishes.
    """

    __slots__ = ("_runner", "_options", "_num_elements", "_status", "_result", "_error", "_async")

    def __init__(
        self,
        runner: Callable[[], Union[Result, BatchResult]],
        options: "RunOptions",
        num_elements: int,
    ) -> None:
        self._runner = runner
        self._options = options
        self._num_elements = int(num_elements)
        self._status = "created"
        self._result: Union[None, Result, BatchResult] = None
        self._error: Optional[BaseException] = None
        # A service-attached JobState (duck-typed; the execution layer
        # never imports the service layer).  None = plain synchronous job.
        self._async = None

    @property
    def options(self) -> "RunOptions":
        """The :class:`RunOptions` this job runs under."""
        return self._options

    @property
    def num_elements(self) -> int:
        """Batch size: circuits submitted, or sweep points."""
        return self._num_elements

    @property
    def status(self) -> str:
        """``"created"``, ``"queued"``, ``"running"``, ``"done"``, or
        ``"error"``.  Synchronous jobs only ever report ``created``,
        ``running`` (briefly, on the executing thread), ``done``, or
        ``error``; the queued state belongs to async jobs."""
        if self._async is not None:
            return self._async.status
        return self._status

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self.status in ("done", "error")

    def _attach_async(self, state: Any) -> None:
        """Hand the job to an execution service (service layer only)."""
        if self._async is not None or self._status != "created":
            raise ExecutionError("job was already started or enqueued")
        self._async = state

    def _run_async(self) -> None:
        """Run the job on behalf of a service dispatcher."""
        state = self._async
        state.mark_running()
        try:
            result = self._runner()
        except BaseException as exc:  # workers/backends may raise anything
            state.mark_error(exc)
        else:
            state.mark_done(result)
            self._runner = None

    def result(self, timeout: Optional[float] = None) -> Union[Result, BatchResult]:
        """Run (first call) or fetch the cached outcome.

        For an async job this blocks until a dispatcher finishes it,
        raising :class:`~repro.utils.ExecutionTimeoutError` after
        ``timeout`` seconds (the job keeps running; call again to
        collect).  For a synchronous job the work happens inline on the
        first call and ``timeout`` is ignored.

        A job that failed re-raises the same error on every call.
        KeyboardInterrupt/SystemExit are *not* cached — an interrupted
        synchronous job stays retryable.
        """
        if self._async is not None:
            if not self._async.wait(timeout):
                from repro.utils.exceptions import ExecutionTimeoutError

                raise ExecutionTimeoutError(
                    f"job still {self._async.status!r} after {timeout}s"
                )
            return self._async.outcome()
        if self._status == "error":
            raise self._error
        if self._status != "done":
            self._status = "running"
            try:
                self._result = self._runner()
            except Exception as exc:
                self._status = "error"
                self._error = exc
                raise
            except BaseException:
                self._status = "created"  # interrupted: stays retryable
                raise
            self._status = "done"
            self._runner = None  # free the closure (circuits, bindings)
        return self._result

    def __repr__(self) -> str:
        return f"Job({self._num_elements} element(s), status={self.status!r})"
