"""The frozen :class:`RunOptions` bundle: one object for every run knob.

Before this layer existed, ``run()``, ``sample_counts()`` and the bench
harness each restated the same growing keyword list by hand.  Every
execution-shaped entry point — :func:`repro.execute`, the
:class:`~repro.sim.Backend` protocol, the sampler — now accepts this one
immutable object instead, so adding a knob is a one-place change.

Kept deliberately free of imports from the simulation stack: backends
consume ``RunOptions`` (lazily imported at call time), so this module
must sit below them in the import graph.
"""

from __future__ import annotations

import dataclasses
import numbers
import os
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.utils.exceptions import ExecutionError

#: Runtime-sanitizer modes (see :mod:`repro.analysis.sanitize`).
SANITIZE_MODES = ("off", "warn", "strict")

#: Environment fallback for ``RunOptions.sanitize=None`` — lets a CI
#: matrix flip whole test suites to sanitized execution without touching
#: call sites, mirroring ``REPRO_MAX_WORKERS``.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"


def resolve_sanitize_mode(mode: Optional[str]) -> str:
    """The effective sanitizer mode: explicit value, else env var, else off.

    Lives here (below the simulation stack) so ``execute_plan`` can
    resolve the mode without importing :mod:`repro.analysis` — the
    resolved ``"off"`` keeps the hot path entirely analysis-free.
    """
    if mode is None:
        mode = os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() or "off"
    if mode not in SANITIZE_MODES:
        raise ExecutionError(
            f"sanitize mode must be one of {SANITIZE_MODES}, got {mode!r}"
        )
    return mode


def _as_int(value: Any) -> Optional[int]:
    """Coerce ints and numpy integers to int; None for anything else.

    bools are excluded — ``shots=True`` is always a bug, not one shot.
    """
    if isinstance(value, numbers.Integral) and not isinstance(value, bool):
        return int(value)
    return None


@dataclass(frozen=True)
class RunOptions:
    """Immutable configuration of one execution.

    Parameters
    ----------
    backend:
        Registered backend name, live backend instance, or ``None`` for
        the default (``"statevector"``).
    shots:
        Measurement shots to sample per circuit; ``0`` (default) skips
        sampling entirely (``Result.counts`` is then ``None``).
    seed:
        Integer base seed.  Batch element ``i`` samples with
        ``derive_seed(seed, i)``, so results are reproducible regardless
        of batch size or execution order; ``None`` draws fresh entropy.
    optimize:
        Transpile through the default pass pipeline before simulation.
    passes:
        Explicit pass pipeline (a ``PassManager`` or sequence of
        ``Pass`` objects); implies optimisation.
    noise_model:
        Declarative :class:`~repro.noise.NoiseModel`.  Gate-noise rules
        require the density-matrix backend; readout error composes with
        any backend at sampling time.
    observables:
        :class:`~repro.observables.Pauli` / ``PauliSum`` observables to
        evaluate on each final state (a single observable is accepted
        and wrapped).  Values land on ``Result.expectation_values``.
    memory:
        Also record the per-shot outcome list (requires ``shots > 0``);
        counts are then tallied from the same draw, so the two always
        agree.
    sweep_mode:
        How ``execute`` evolves a ``parameter_sweep``: ``"auto"``
        (default) batches all bindings into one stacked state tensor
        whenever the sweep is batchable (statevector backend, no shots,
        no noise) and falls back to per-element plan execution otherwise;
        ``"batched"`` demands the batched path (raising when the sweep
        is not batchable); ``"per_element"`` forces one execution per
        binding.  Either way the parametric template compiles exactly
        once.
    max_workers:
        Worker processes for per-element sweeps, batches, and sharded
        shot sampling.  ``None`` (default) defers to the
        ``REPRO_MAX_WORKERS`` environment variable (absent -> serial);
        ``1`` forces the serial path.  Worker count never changes
        results: element/shard seeds derive from positions, not from
        scheduling, so any ``max_workers`` is bitwise-identical to
        serial for the same options.
    shard_shots:
        Number of shards to split each element's shot sampling into
        (``0``/``1`` = no sharding).  Shard ``j`` of element ``i`` draws
        from ``derive_seed(seed, i, j)``, so the merged counts depend
        only on ``(seed, shard_shots)`` — sharded sampling is applied on
        the serial path too, keeping results independent of
        ``max_workers``.  Note k > 1 shards draw from k derived streams,
        so counts differ (validly) from the unsharded stream.
    validate:
        Static analysis of every circuit (and its compiled plan) before
        execution: ``"off"`` (default) skips it entirely, ``"warn"``
        records the :class:`~repro.analysis.Diagnostic` list on
        ``Result.metadata["diagnostics"]``, and ``"strict"`` additionally
        raises :class:`~repro.utils.exceptions.AnalysisError` when any
        error-severity diagnostic is found.
    certify:
        Prove every transpile-pass application semantically equivalent
        (:func:`repro.analysis.certify_rewrite`) while compiling; the
        per-pass :class:`~repro.analysis.Certificate` dicts ride on
        ``plan.pass_stats`` and an unprovable rewrite raises
        :class:`~repro.utils.exceptions.CertificationError` at compile
        time.  Only meaningful together with ``optimize``/``passes``
        (an unoptimised compile applies no rewrites to certify).
    sanitize:
        Runtime numerical checks inside the shared ``execute_plan``
        loop (norm drift, NaN/Inf, dtype promotion, probability sums):
        ``None`` (default) defers to the ``REPRO_SANITIZE`` environment
        variable (absent -> ``"off"``); ``"off"`` disables them with
        zero hot-path cost; ``"warn"`` collects findings and fires a
        :class:`~repro.analysis.sanitize.SanitizerWarning`; ``"strict"``
        raises :class:`~repro.utils.exceptions.SanitizerError` at the
        offending op.
    """

    backend: Any = None
    shots: int = 0
    seed: Optional[int] = None
    optimize: bool = False
    passes: Any = None
    noise_model: Any = None
    observables: Tuple[Any, ...] = field(default=())
    memory: bool = False
    sweep_mode: str = "auto"
    max_workers: Optional[int] = None
    shard_shots: int = 0
    validate: str = "off"
    certify: bool = False
    sanitize: Optional[str] = None

    def __post_init__(self) -> None:
        shots = _as_int(self.shots)
        if shots is None:
            raise ExecutionError(f"shots must be an int, got {self.shots!r}")
        if shots < 0:
            raise ExecutionError(f"shots must be non-negative, got {shots}")
        object.__setattr__(self, "shots", shots)
        if self.seed is not None:
            seed = _as_int(self.seed)
            if seed is None:
                raise ExecutionError(
                    f"seed must be an int or None, got {self.seed!r}; "
                    "generators are not accepted here — per-element seeds "
                    "are derived"
                )
            object.__setattr__(self, "seed", seed)
        if self.memory and self.shots == 0:
            raise ExecutionError("memory=True requires shots > 0")
        observables = self.observables
        if observables is None:
            observables = ()
        elif not isinstance(observables, (tuple, list)):
            # A single observable is the common case; wrap it.
            observables = (observables,)
        object.__setattr__(self, "observables", tuple(observables))
        object.__setattr__(self, "optimize", bool(self.optimize))
        object.__setattr__(self, "memory", bool(self.memory))
        if self.sweep_mode not in ("auto", "batched", "per_element"):
            raise ExecutionError(
                f"sweep_mode must be 'auto', 'batched', or 'per_element', "
                f"got {self.sweep_mode!r}"
            )
        if self.max_workers is not None:
            max_workers = _as_int(self.max_workers)
            if max_workers is None or max_workers < 1:
                raise ExecutionError(
                    f"max_workers must be a positive int or None, got "
                    f"{self.max_workers!r}"
                )
            object.__setattr__(self, "max_workers", max_workers)
        shard_shots = _as_int(self.shard_shots)
        if shard_shots is None or shard_shots < 0:
            raise ExecutionError(
                f"shard_shots must be a non-negative int, got "
                f"{self.shard_shots!r}"
            )
        object.__setattr__(self, "shard_shots", shard_shots)
        if self.validate not in ("off", "warn", "strict"):
            raise ExecutionError(
                f"validate must be 'off', 'warn', or 'strict', "
                f"got {self.validate!r}"
            )
        object.__setattr__(self, "certify", bool(self.certify))
        if self.sanitize is not None and self.sanitize not in SANITIZE_MODES:
            raise ExecutionError(
                f"sanitize must be one of {SANITIZE_MODES} or None "
                f"(defer to {SANITIZE_ENV_VAR}), got {self.sanitize!r}"
            )

    def replace(self, **changes: Any) -> "RunOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def coerce(cls, options: "Optional[RunOptions]", **kwargs: Any) -> "RunOptions":
        """Resolve an ``(options, **kwargs)`` call surface to one object.

        Accepts either a prebuilt :class:`RunOptions` *or* loose keyword
        arguments, never both — mixing the two would make it ambiguous
        which value wins.
        """
        if options is not None:
            if kwargs:
                raise ExecutionError(
                    "pass either a RunOptions object or keyword options, "
                    f"not both (got options= and {sorted(kwargs)})"
                )
            if not isinstance(options, cls):
                raise ExecutionError(
                    f"expected RunOptions, got {type(options).__name__}"
                )
            return options
        try:
            return cls(**kwargs)
        except TypeError:
            valid = [f.name for f in dataclasses.fields(cls)]
            unknown = sorted(set(kwargs) - set(valid))
            raise ExecutionError(
                f"unknown execution option(s) {unknown}; valid options: {valid}"
            ) from None
