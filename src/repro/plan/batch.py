"""Batched sweep execution: N parameter bindings, one contraction per op.

A parameter sweep of N bindings over a statevector plan does not need N
separate evolutions: the N pure states stack into a single
``(N, 2, ..., 2)`` tensor (axis 0 = sweep point) and every op evolves all
of them at once.  Non-parametric ops broadcast — the same gate tensor
contracts onto the shifted target axes of the whole batch in one
``tensordot`` — while parametric slots build a stacked ``(N, 2**k, 2**k)``
matrix (one binding per point) and contract it point-wise via ``einsum``.
The arithmetic per amplitude is identical to N eager runs; the Python and
dispatch overhead is paid once instead of N times.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

import numpy as np

from repro.plan.plan import STATEVECTOR, ExecutionPlan
from repro.utils.exceptions import SimulationError


def _apply_stacked(
    batch: np.ndarray, matrices: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Contract per-point ``(N, 2**k, 2**k)`` matrices onto the batch.

    The target axes move next to the point axis, the state flattens to
    ``(N, 2**k, rest)``, and one ``einsum`` applies matrix ``i`` to state
    ``i`` — the batched analogue of a single gate contraction.
    """
    k = len(targets)
    dim = 1 << k
    points = batch.shape[0]
    shifted = tuple(t + 1 for t in targets)
    moved = np.moveaxis(batch, shifted, tuple(range(1, k + 1)))
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(points, dim, -1)
    out = np.einsum("nij,njr->nir", matrices, flat)
    return np.moveaxis(out.reshape(shape), tuple(range(1, k + 1)), shifted)


def run_batched_sweep(
    plan: ExecutionPlan,
    bindings: Sequence[Mapping[str, float]],
) -> np.ndarray:
    """Evolve all sweep ``bindings`` of ``plan`` as one batched state.

    Parameters
    ----------
    plan:
        A ``"statevector"``-mode :class:`~repro.plan.ExecutionPlan`
        (parametric or fully bound).  Density plans must go point-by-point
        — Kraus sums over an O(4**n) tensor leave no memory headroom for a
        batch axis.
    bindings:
        One mapping of parameter *name* to value per sweep point; every
        plan parameter must appear in every binding.

    Returns
    -------
    numpy.ndarray
        The ``(N,) + (2,) * n`` batch of final states from ``|0...0>``,
        in binding order; slice ``[i]`` is sweep point ``i``.
    """
    if not isinstance(plan, ExecutionPlan):
        raise SimulationError(
            f"expected an ExecutionPlan, got {type(plan).__name__}"
        )
    if plan.mode != STATEVECTOR:
        raise SimulationError(
            f"batched sweeps require a statevector plan, got mode {plan.mode!r}"
        )
    if plan.has_dynamic_ops:
        raise SimulationError(
            "batched sweeps cannot run dynamic circuits: measure/reset/"
            "if_bit collapse each sweep point independently, so there is "
            "no shared batched contraction — use sweep_mode='loop'"
        )
    points = len(bindings)
    if points == 0:
        raise SimulationError("batched sweep needs at least one binding")
    from repro.circuit.parameter import normalize_binding, validate_binding_names

    names = {parameter.name for parameter in plan.parameters}
    resolved: List[Mapping[str, float]] = []
    for index, binding in enumerate(bindings):
        point = normalize_binding(
            binding, SimulationError, label=f"sweep binding {index}"
        )
        validate_binding_names(
            point,
            names,
            SimulationError,
            label=f"sweep binding {index}",
            subject="plan",
            require_complete=True,
        )
        resolved.append(point)

    n = plan.num_qubits
    batch = np.zeros((points,) + (2,) * n, dtype=plan.dtype)
    batch[(slice(None),) + (0,) * n] = 1.0
    for op in plan.ops:
        if op.is_slot:
            matrices = np.stack(
                [op.resolve_matrix(binding) for binding in resolved]
            ).astype(plan.dtype)
            batch = _apply_stacked(batch, matrices, op.targets, n)
        else:
            batch = op.apply_batched(batch)
    return batch
