"""The process-wide :class:`~repro.plan.ExecutionPlan` cache.

``execute()`` and ``Backend.run()`` both compile through here, so running
the same circuit twice — or sweeping a parametric template whose plan was
compiled last call — skips transpilation and lowering entirely.

Keying: a plan is identified by the *content* of the circuit (its
instruction tuple compares gates by name/params/matrix, so two separately
built but identical circuits share a plan), the structural
:meth:`~repro.circuit.Circuit.stats` key as a cheap discriminator, the
backend's name/mode/dtype, and the compile-relevant options (``optimize``,
the identity of each ``passes`` entry, the identity + rule count of the
``noise_model``).  Entries hold strong references to the pass and noise
objects whose ``id()`` appears in the key, so a key can never collide with
a dead object's recycled id.  Pass objects are assumed to honour the
:class:`~repro.transpile.Pass` purity contract (same pass, same rewrite);
noise-model rule *additions* change the rule count and miss naturally.

The cache is LRU-bounded and instrumented: :func:`plan_cache_info`
exposes hits/misses/size for tests, benchmarks, and capacity planning.

All entry points take a module lock: the async execution service compiles
plans from dispatcher threads while user code compiles on the main thread,
and an unguarded ``move_to_end``/eviction race corrupts the OrderedDict.
The lock is process-local — worker processes get their own (empty) cache,
which is why the parent ships *compiled* plans to workers instead of
letting them compile.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:
    from repro.circuit import Circuit
    from repro.execution.options import RunOptions
    from repro.noise import NoiseModel
    from repro.plan.plan import ExecutionPlan

_MAXSIZE = 64

_LOCK = threading.Lock()
_CACHE: "OrderedDict[tuple, _Entry]" = OrderedDict()
_HITS = 0
_MISSES = 0


class _Entry:
    """A cached plan plus strong refs pinning the ids used in its key."""

    __slots__ = ("plan", "noise_model", "passes")

    def __init__(
        self,
        plan: "ExecutionPlan",
        noise_model: Optional["NoiseModel"],
        passes: Any,
    ) -> None:
        self.plan = plan
        self.noise_model = noise_model
        # Pin the pass *elements*, not just their container: replacing an
        # element of a caller-held list in place would otherwise free the
        # old pass, whose recycled id could collide with a new pass and
        # produce a stale hit.  For a PassManager the snapshot pins its
        # current pipeline the same way.
        if passes is None:
            self.passes = None
        elif isinstance(passes, (list, tuple)):
            self.passes = (passes, tuple(passes))
        else:
            self.passes = (passes, tuple(getattr(passes, "passes", ())))


def _passes_key(passes: Any) -> Optional[tuple]:
    if passes is None:
        return None
    if isinstance(passes, (list, tuple)):
        return tuple(id(p) for p in passes)
    # A PassManager (or anything else pipeline-shaped): key on the object
    # AND its current pass composition — PassManager.append() is public,
    # so id() alone would hand back a stale plan after a mutation.
    contained = getattr(passes, "passes", ())
    try:
        composition = tuple(id(p) for p in contained)
    except TypeError:
        composition = ()
    return (id(passes),) + composition


def _noise_key(noise_model: Optional["NoiseModel"]) -> Optional[tuple]:
    if noise_model is None:
        return None
    return (
        id(noise_model),
        len(getattr(noise_model, "_rules", ())),
        id(getattr(noise_model, "_readout", None)),
    )


def _key(
    circuit: "Circuit",
    backend_name: str,
    mode: str,
    dtype: Any,
    options: "RunOptions",
) -> tuple:
    return (
        backend_name,
        mode,
        str(dtype),
        circuit.num_qubits,
        circuit.stats().key(),
        circuit.instructions,
        bool(options.optimize),
        # Certified and uncertified compiles of the same circuit differ
        # (pass_stats carries the certificates), so they must not share
        # a cache entry — a certify=True call handed an uncertified plan
        # would silently skip the proof.
        bool(options.certify),
        _passes_key(options.passes),
        _noise_key(options.noise_model),
    )


def cache_get(
    circuit: "Circuit",
    backend_name: str,
    mode: str,
    dtype: Any,
    options: "RunOptions",
) -> Optional["ExecutionPlan"]:
    """The cached plan for this compilation, or ``None`` (counted either way)."""
    global _HITS, _MISSES
    key = _key(circuit, backend_name, mode, dtype, options)
    with _LOCK:
        entry = _CACHE.get(key)
        if entry is None:
            _MISSES += 1
            return None
        _CACHE.move_to_end(key)
        _HITS += 1
        return entry.plan


def cache_put(
    circuit: "Circuit",
    backend_name: str,
    mode: str,
    dtype: Any,
    options: "RunOptions",
    plan: "ExecutionPlan",
) -> None:
    """Insert ``plan``, evicting the least recently used entry when full."""
    key = _key(circuit, backend_name, mode, dtype, options)
    entry = _Entry(plan, options.noise_model, options.passes)
    with _LOCK:
        _CACHE[key] = entry
        _CACHE.move_to_end(key)
        while len(_CACHE) > _MAXSIZE:
            _CACHE.popitem(last=False)


def plan_cache_info() -> Dict[str, int]:
    """Cache counters: ``{"hits", "misses", "size", "maxsize"}``."""
    with _LOCK:
        return {
            "hits": _HITS,
            "misses": _MISSES,
            "size": len(_CACHE),
            "maxsize": _MAXSIZE,
        }


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
