"""Compile-once/run-many: lowering circuit IR to :class:`ExecutionPlan` ops.

The eager simulation path re-did the same bookkeeping on every ``run()``:
matrix lookup per instruction, axis arithmetic per contraction, noise-rule
matching per gate, and — for a parameter sweep — all of it once per
binding.  :func:`compile_plan` hoists that work to compile time: a circuit
lowers once into a flat op sequence whose matrices are already reshaped
for :func:`numpy.tensordot` with their contraction axes resolved, Kraus
channels grouped, and :class:`~repro.noise.NoiseModel` rules matched per
instruction.  Executing the plan (the backends' shared tight loop in
:class:`~repro.sim.BaseBackend`) is then nothing but contractions.

Parametric gates lower to :class:`ParametricSlotOp` placeholders;
:meth:`ExecutionPlan.bind` resolves the slots to concrete ops *without
re-lowering* the static ops around them, so an N-point sweep costs one
lowering plus N cheap slot substitutions (or a single batched contraction
per op — see :mod:`repro.plan.batch`).

Four lowering modes exist, selected by the target backend's ``plan_mode``:

* ``"statevector"`` — ops contract onto a ``(2,) * n`` pure-state tensor;
  channel instructions and gate-noise models are rejected at compile time.
* ``"density"`` — ops conjugate a ``(2,) * 2n`` density tensor
  (``U rho U†`` as two contractions, channels as Kraus sums); noise-model
  rules are matched per instruction *here*, not per run.
* ``"trajectory"`` — pure-state ops like ``"statevector"``, but channels
  (and matched noise rules) lower to :class:`TrajectoryKrausOp`: at
  execution time one Kraus operator is *sampled* per application from the
  seeded RNG stream (Monte-Carlo wavefunction unraveling), keeping noisy
  evolution at O(2**n) per trajectory.
* ``"ptm"`` — every gate *and* every channel becomes one real
  ``(4**k, 4**k)`` Pauli-transfer matrix contracting onto the ``(4,) * n``
  Pauli vector of rho (:class:`PTMOp`).  Because gates and noise now
  compose by plain matrix multiplication, lowering fuses adjacent
  gate+channel runs on overlapping qubits into single ops (up to
  :data:`PTM_FUSE_WIDTH` qubits) — channels stop being fusion barriers.
  Dynamic instructions are rejected in this mode.

Dynamic instructions (measure/reset/if_bit) lower to
:class:`MeasureOp`/:class:`ResetOp`/:class:`ConditionalOp` in every mode.
Plans containing them (or trajectory Kraus ops) set
:attr:`ExecutionPlan.has_dynamic_ops`; the backends' shared loop then
threads an RNG and a classical-bit register through
:func:`execute_dynamic_pure` / :func:`execute_dynamic_density` instead of
the plain op-after-op fast path.
"""

from __future__ import annotations

import contextlib
import time
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.circuit import Circuit, Parameter
from repro.circuit.ptm import embed_ptm, kraus_to_ptm
from repro.utils.exceptions import SimulationError

if TYPE_CHECKING:
    from repro.circuit.circuit import CircuitStats
    from repro.circuit.instruction import Instruction
    from repro.execution.options import RunOptions
    from repro.noise import NoiseModel

# Dynamic density evolution threads the state as classical-outcome
# branches: (clbit tuple, unnormalised rho).
Branches = List[Tuple[Tuple[int, ...], np.ndarray]]

STATEVECTOR = "statevector"
DENSITY = "density"
TRAJECTORY = "trajectory"
PTM = "ptm"

#: Maximum register width (qubits) of a fused PTM op, matching the
#: default width cap of :class:`~repro.transpile.FuseAdjacentGates`: a
#: fused (4**k, 4**k) block costs 16**k multiplies per contraction, so
#: runaway widening would undo the fusion win.
PTM_FUSE_WIDTH = 2

#: Density-mode classical branches below this trace weight are dropped:
#: they are fp dust from projecting deterministic outcomes, and keeping
#: them would only add zero tensors to every later contraction.
_BRANCH_ATOL = 1e-15

# Lowering hooks: callables invoked as fn(circuit, plan) after every *full*
# lowering (never on ExecutionPlan.bind, which only substitutes slot ops).
# Tests hang counters here to prove the compile-once/bind-many contract.
LowerHook = Callable[["Circuit", "ExecutionPlan"], None]

_LOWER_HOOKS: List[LowerHook] = []


def add_lower_hook(hook: LowerHook) -> None:
    """Register ``hook(circuit, plan)`` to fire after each full lowering."""
    if not callable(hook):
        raise SimulationError(f"lower hook must be callable, got {hook!r}")
    _LOWER_HOOKS.append(hook)


def remove_lower_hook(hook: LowerHook) -> None:
    """Unregister a hook added via :func:`add_lower_hook` (missing is a no-op)."""
    with contextlib.suppress(ValueError):
        _LOWER_HOOKS.remove(hook)


def _contract(
    state: np.ndarray,
    tensor: np.ndarray,
    targets: Sequence[int],
    in_axes: Sequence[int],
    out_axes: Sequence[int],
) -> np.ndarray:
    """One precomputed-axis tensordot: ``tensor`` onto ``targets`` of ``state``."""
    out = np.tensordot(tensor, state, axes=(in_axes, targets))
    return np.moveaxis(out, out_axes, targets)


class UnitaryOp:
    """A gate contraction onto a pure-state tensor, axes precomputed."""

    __slots__ = ("tensor", "targets", "in_axes", "out_axes", "batch_targets", "name")

    is_slot = False
    is_dynamic = False

    def __init__(
        self, name: str, matrix: np.ndarray, targets: Sequence[int], dtype: np.dtype
    ) -> None:
        k = len(targets)
        # asarray, not astype: when the backend dtype matches the gate
        # matrix (the common complex128 case) the cached gate matrix is
        # shared, exactly as the eager path shared it per application.
        self.tensor = np.asarray(matrix, dtype=dtype).reshape((2,) * (2 * k))
        self.targets = tuple(targets)
        self.in_axes = tuple(range(k, 2 * k))
        self.out_axes = tuple(range(k))
        # Targets shifted by one for the (N, 2, ..., 2) batched sweep
        # layout, where axis 0 is the sweep-point axis.
        self.batch_targets = tuple(t + 1 for t in self.targets)
        self.name = name

    def apply(self, state: np.ndarray) -> np.ndarray:
        return _contract(state, self.tensor, self.targets, self.in_axes, self.out_axes)

    def apply_batched(self, batch: np.ndarray) -> np.ndarray:
        return _contract(
            batch, self.tensor, self.batch_targets, self.in_axes, self.out_axes
        )

    def __repr__(self) -> str:
        return f"UnitaryOp({self.name} @ {self.targets})"


class DensityUnitaryOp:
    """``U rho U†`` on a density tensor: two precomputed-axis contractions."""

    __slots__ = (
        "tensor",
        "conj_tensor",
        "row_targets",
        "col_targets",
        "in_axes",
        "out_axes",
        "name",
    )

    is_slot = False
    is_dynamic = False

    def __init__(
        self,
        name: str,
        matrix: np.ndarray,
        targets: Sequence[int],
        num_qubits: int,
        dtype: np.dtype,
    ) -> None:
        k = len(targets)
        matrix = np.asarray(matrix, dtype=dtype)
        self.tensor = matrix.reshape((2,) * (2 * k))
        self.conj_tensor = np.conj(matrix).reshape((2,) * (2 * k))
        self.row_targets = tuple(targets)
        self.col_targets = tuple(num_qubits + t for t in targets)
        self.in_axes = tuple(range(k, 2 * k))
        self.out_axes = tuple(range(k))
        self.name = name

    def apply(self, rho: np.ndarray) -> np.ndarray:
        rho = _contract(rho, self.tensor, self.row_targets, self.in_axes, self.out_axes)
        return _contract(
            rho, self.conj_tensor, self.col_targets, self.in_axes, self.out_axes
        )

    def __repr__(self) -> str:
        return f"DensityUnitaryOp({self.name} @ {self.row_targets})"


class DensityKrausOp:
    """``sum_i K_i rho K_i†`` on a density tensor, operators prereshaped."""

    __slots__ = (
        "tensors",
        "conj_tensors",
        "row_targets",
        "col_targets",
        "in_axes",
        "out_axes",
        "name",
    )

    is_slot = False
    is_dynamic = False

    def __init__(
        self,
        name: str,
        kraus: Sequence[np.ndarray],
        targets: Sequence[int],
        num_qubits: int,
        dtype: np.dtype,
    ) -> None:
        k = len(targets)
        shape = (2,) * (2 * k)
        operators = [np.asarray(op, dtype=dtype) for op in kraus]
        self.tensors = tuple(op.reshape(shape) for op in operators)
        self.conj_tensors = tuple(np.conj(op).reshape(shape) for op in operators)
        self.row_targets = tuple(targets)
        self.col_targets = tuple(num_qubits + t for t in targets)
        self.in_axes = tuple(range(k, 2 * k))
        self.out_axes = tuple(range(k))
        self.name = name

    def apply(self, rho: np.ndarray) -> np.ndarray:
        total = None
        for tensor, conj_tensor in zip(self.tensors, self.conj_tensors):
            term = _contract(rho, tensor, self.row_targets, self.in_axes, self.out_axes)
            term = _contract(
                term, conj_tensor, self.col_targets, self.in_axes, self.out_axes
            )
            total = term if total is None else total + term
        return total

    def __repr__(self) -> str:
        return f"DensityKrausOp({self.name} @ {self.row_targets}, {len(self.tensors)} ops)"


# Gate PTMs memoised per (name, params, unitary bytes), mirroring the
# registry's gate cache: sweeps rebinding the same values and repeated
# lowerings share one U·U† conjugation instead of recomputing it per
# instruction.  The matrix bytes are part of the key because (name,
# params) does not determine the unitary for ad-hoc gates — every
# transpile-fused block is named "unitary" with no params.
_GATE_PTM_CACHE: "OrderedDict[Tuple[str, Tuple[float, ...], bytes], np.ndarray]" = (
    OrderedDict()
)
_GATE_PTM_CACHE_MAX = 4096


def _gate_ptm(
    name: str, params: Sequence[float], matrix: np.ndarray, num_qubits: int
) -> np.ndarray:
    key = (
        name,
        tuple(float(p) for p in params),
        np.ascontiguousarray(matrix).tobytes(),
    )
    cached = _GATE_PTM_CACHE.get(key)
    if cached is not None:
        _GATE_PTM_CACHE.move_to_end(key)
        return cached
    ptm = kraus_to_ptm((matrix,), num_qubits)
    ptm.setflags(write=False)
    _GATE_PTM_CACHE[key] = ptm
    if len(_GATE_PTM_CACHE) > _GATE_PTM_CACHE_MAX:
        _GATE_PTM_CACHE.popitem(last=False)
    return ptm


class PTMOp:
    """A real Pauli-transfer-matrix contraction onto a ``(4,) * n`` vector.

    The ptm-mode analogue of :class:`UnitaryOp` — same precomputed-axis
    tensordot discipline, base 4 instead of base 2, float64 instead of
    complex.  One op routinely covers a whole fused gate+channel run:
    in this basis noise composes with gates by matrix multiplication, so
    lowering collapses adjacent runs into a single ``(4**k, 4**k)`` block.
    """

    __slots__ = ("tensor", "targets", "in_axes", "out_axes", "name")

    is_slot = False
    is_dynamic = False

    def __init__(
        self, name: str, matrix: np.ndarray, targets: Sequence[int], dtype: np.dtype
    ) -> None:
        k = len(targets)
        # asarray, not astype: the common float64 case shares the cached
        # gate/channel PTM instead of copying it per op.
        self.tensor = np.asarray(matrix, dtype=dtype).reshape((4,) * (2 * k))
        self.targets = tuple(targets)
        self.in_axes = tuple(range(k, 2 * k))
        self.out_axes = tuple(range(k))
        self.name = name

    def apply(self, state: np.ndarray) -> np.ndarray:
        return _contract(state, self.tensor, self.targets, self.in_axes, self.out_axes)

    def __repr__(self) -> str:
        return f"PTMOp({self.name} @ {self.targets})"


class ParametricSlotOp:
    """A placeholder for a gate whose matrix waits on parameter binding.

    Carries everything needed to become a concrete op the instant values
    arrive: the registry gate name, the parameter template (bound reals
    mixed with :class:`~repro.circuit.Parameter` symbols), and the target
    qubits.  :meth:`resolve_matrix` goes through the registry's gate
    cache, so repeated bindings of the same value share one matrix.
    """

    __slots__ = ("gate_name", "params", "targets", "parameters", "index")

    is_slot = True
    is_dynamic = False

    def __init__(
        self,
        gate_name: str,
        params: Sequence[Union[float, Parameter]],
        targets: Sequence[int],
        index: int,
    ) -> None:
        self.gate_name = gate_name
        self.params = tuple(params)
        self.targets = tuple(targets)
        self.parameters = tuple(p for p in self.params if isinstance(p, Parameter))
        self.index = index

    def resolve_matrix(self, values: Mapping[str, float]) -> np.ndarray:
        from repro.gates import get_gate

        bound = tuple(
            values[p.name] if isinstance(p, Parameter) else p for p in self.params
        )
        return get_gate(self.gate_name, *bound).matrix

    def apply(self, state: np.ndarray) -> np.ndarray:
        raise SimulationError(
            f"plan op {self.index} ({self.gate_name!r}) has unbound "
            f"parameter(s) {[p.name for p in self.parameters]}; bind the "
            "plan before executing it"
        )

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.parameters)
        return f"ParametricSlotOp({self.gate_name}({names}) @ {self.targets})"


def _project_density(
    rho: np.ndarray, qubit: int, num_qubits: int, outcome: int
) -> np.ndarray:
    """``P rho P`` for the Z-basis projector onto ``outcome`` of ``qubit``."""
    out = np.zeros_like(rho)
    src = np.moveaxis(rho, (qubit, num_qubits + qubit), (0, 1))
    dst = np.moveaxis(out, (qubit, num_qubits + qubit), (0, 1))
    dst[outcome, outcome] = src[outcome, outcome]
    return out


def _density_trace(rho: np.ndarray, num_qubits: int) -> float:
    dim = 1 << num_qubits
    return float(np.trace(rho.reshape(dim, dim)).real)


class MeasureOp:
    """Projective Z measurement of one qubit, outcome into a clbit.

    Pure modes sample the outcome from the RNG stream, zero the other
    branch, and renormalise; density mode splits every classical branch
    into its two projected (unnormalised) sub-branches, so the final
    branch weights *are* the joint clbit distribution.
    """

    __slots__ = ("qubit", "clbit", "num_qubits", "name")

    is_slot = False
    is_dynamic = True

    def __init__(self, qubit: int, clbit: int, num_qubits: int) -> None:
        self.qubit = int(qubit)
        self.clbit = int(clbit)
        self.num_qubits = int(num_qubits)
        self.name = "measure"

    def apply(self, state: np.ndarray) -> np.ndarray:
        raise SimulationError(
            "measure is a dynamic op; execute the plan through a backend "
            "(execute_plan threads the RNG and classical bits)"
        )

    def apply_pure(
        self, state: np.ndarray, rng: np.random.Generator, bits: List[int]
    ) -> np.ndarray:
        moved = np.moveaxis(state, self.qubit, 0)
        p0 = float(np.sum(np.abs(moved[0]) ** 2))
        p1 = float(np.sum(np.abs(moved[1]) ** 2))
        # Drawing against the *unnormalised* total also absorbs norm
        # drift; a zero-probability branch can never be selected (see the
        # boundary: random() < 1 strictly, and random() >= 0 always).
        outcome = 0 if rng.random() * (p0 + p1) < p0 else 1
        prob = p0 if outcome == 0 else p1
        out = np.zeros_like(state)
        np.moveaxis(out, self.qubit, 0)[outcome] = moved[outcome] / np.sqrt(prob)
        bits[self.clbit] = outcome
        return out

    def apply_density(self, branches: Branches) -> Branches:
        merged: Dict[tuple, np.ndarray] = {}
        for bits, rho in branches:
            for outcome in (0, 1):
                projected = _project_density(rho, self.qubit, self.num_qubits, outcome)
                if _density_trace(projected, self.num_qubits) <= _BRANCH_ATOL:
                    continue
                key = bits[: self.clbit] + (outcome,) + bits[self.clbit + 1 :]
                if key in merged:
                    merged[key] = merged[key] + projected
                else:
                    merged[key] = projected
        return list(merged.items())

    def __repr__(self) -> str:
        return f"MeasureOp(qubit={self.qubit} -> clbit={self.clbit})"


class ResetOp:
    """Re-initialise one qubit to ``|0>``: measure, flip on 1, discard.

    Pure modes unravel stochastically (sampled projective collapse, then
    the kept branch moves to the ``|0>`` slice); density mode applies the
    exact channel ``rho -> P0 rho P0 + X P1 rho P1 X`` per branch, which
    is deterministic and trace-preserving.
    """

    __slots__ = ("qubit", "num_qubits", "name")

    is_slot = False
    is_dynamic = True

    def __init__(self, qubit: int, num_qubits: int) -> None:
        self.qubit = int(qubit)
        self.num_qubits = int(num_qubits)
        self.name = "reset"

    def apply(self, state: np.ndarray) -> np.ndarray:
        raise SimulationError(
            "reset is a dynamic op; execute the plan through a backend "
            "(execute_plan threads the RNG and classical bits)"
        )

    def apply_pure(
        self, state: np.ndarray, rng: np.random.Generator, bits: List[int]
    ) -> np.ndarray:
        moved = np.moveaxis(state, self.qubit, 0)
        p0 = float(np.sum(np.abs(moved[0]) ** 2))
        p1 = float(np.sum(np.abs(moved[1]) ** 2))
        outcome = 0 if rng.random() * (p0 + p1) < p0 else 1
        prob = p0 if outcome == 0 else p1
        out = np.zeros_like(state)
        # The kept branch lands on the |0> slice whichever outcome was
        # drawn — collapse and conditional flip in one assignment.
        np.moveaxis(out, self.qubit, 0)[0] = moved[outcome] / np.sqrt(prob)
        return out

    def apply_density(self, branches: Branches) -> Branches:
        out = []
        for bits, rho in branches:
            new = np.zeros_like(rho)
            src = np.moveaxis(rho, (self.qubit, self.num_qubits + self.qubit), (0, 1))
            dst = np.moveaxis(new, (self.qubit, self.num_qubits + self.qubit), (0, 1))
            dst[0, 0] = src[0, 0] + src[1, 1]
            out.append((bits, new))
        return out

    def __repr__(self) -> str:
        return f"ResetOp(qubit={self.qubit})"


class ConditionalOp:
    """A concrete unitary op applied only when a clbit reads ``value``.

    ``inner`` is a fully resolved :class:`UnitaryOp` (pure modes) or
    :class:`DensityUnitaryOp` (density mode) — the branch test is the only
    work left at execution time.
    """

    __slots__ = ("clbit", "value", "inner", "name")

    is_slot = False
    is_dynamic = True

    def __init__(
        self, clbit: int, value: int, inner: Union[UnitaryOp, DensityUnitaryOp]
    ) -> None:
        self.clbit = int(clbit)
        self.value = int(value)
        self.inner = inner
        self.name = f"if[{inner.name}]"

    def apply(self, state: np.ndarray) -> np.ndarray:
        raise SimulationError(
            "if_bit is a dynamic op; execute the plan through a backend "
            "(execute_plan threads the RNG and classical bits)"
        )

    def apply_pure(
        self, state: np.ndarray, rng: np.random.Generator, bits: List[int]
    ) -> np.ndarray:
        if bits[self.clbit] == self.value:
            return self.inner.apply(state)
        return state

    def apply_density(self, branches: Branches) -> Branches:
        return [
            (bits, self.inner.apply(rho) if bits[self.clbit] == self.value else rho)
            for bits, rho in branches
        ]

    def __repr__(self) -> str:
        return f"ConditionalOp(clbit={self.clbit}=={self.value}, {self.inner!r})"


class TrajectoryKrausOp:
    """Monte-Carlo unraveling of a Kraus channel on a pure state.

    Applies every Kraus operator to the (normalised) input, computes the
    branch weights ``||K_i psi||^2`` — which sum to 1 for a CPTP map —
    samples one branch from the RNG stream, and renormalises.  This is
    the trajectory backend's whole trick: the density-matrix Kraus *sum*
    becomes a Kraus *choice* per trajectory.
    """

    __slots__ = ("tensors", "targets", "in_axes", "out_axes", "name")

    is_slot = False
    is_dynamic = True

    def __init__(
        self,
        name: str,
        kraus: Sequence[np.ndarray],
        targets: Sequence[int],
        dtype: np.dtype,
    ) -> None:
        k = len(targets)
        shape = (2,) * (2 * k)
        self.tensors = tuple(
            np.asarray(op, dtype=dtype).reshape(shape) for op in kraus
        )
        self.targets = tuple(targets)
        self.in_axes = tuple(range(k, 2 * k))
        self.out_axes = tuple(range(k))
        self.name = name

    def apply(self, state: np.ndarray) -> np.ndarray:
        raise SimulationError(
            "trajectory Kraus sampling is a dynamic op; execute the plan "
            "through the trajectory backend (execute_plan threads the RNG)"
        )

    def apply_pure(
        self, state: np.ndarray, rng: np.random.Generator, bits: List[int]
    ) -> np.ndarray:
        candidates = []
        weights = []
        for tensor in self.tensors:
            candidate = _contract(state, tensor, self.targets, self.in_axes, self.out_axes)
            candidates.append(candidate)
            weights.append(float(np.vdot(candidate, candidate).real))
        draw = rng.random() * sum(weights)
        cumulative = 0.0
        chosen = None
        for index, weight in enumerate(weights):
            cumulative += weight
            if weight > 0.0 and draw < cumulative:
                chosen = index
                break
        if chosen is None:  # fp edge: draw landed on the trailing rounding gap
            chosen = int(np.argmax(weights))
        return candidates[chosen] / np.sqrt(weights[chosen])

    def __repr__(self) -> str:
        return (
            f"TrajectoryKrausOp({self.name} @ {self.targets}, "
            f"{len(self.tensors)} ops)"
        )


def execute_dynamic_pure(
    plan: "ExecutionPlan", tensor: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Run a dynamic pure-state plan: one stochastic trajectory.

    Returns ``(final_tensor, bits)`` where ``bits`` is the classical
    register (a tuple of 0/1 ints) after all measurements.  Identical for
    the statevector and trajectory modes — the op set is the only
    difference.
    """
    bits: List[int] = [0] * plan.num_clbits
    for op in plan.ops:
        if op.is_dynamic:
            tensor = op.apply_pure(tensor, rng, bits)
        else:
            tensor = op.apply(tensor)
    return tensor, tuple(bits)


def execute_dynamic_density(
    plan: "ExecutionPlan", tensor: np.ndarray
) -> Tuple[np.ndarray, Dict[str, float]]:
    """Run a dynamic density plan with classical-outcome bookkeeping.

    The state evolves as a list of ``(clbits, unnormalised rho)`` branches:
    measurements split branches (projector superoperators), conditionals
    apply per branch, and everything static is linear so same-clbit
    branches merge exactly.  Returns ``(rho_total, distribution)`` where
    ``rho_total`` is the deterministic ensemble average (trace 1) and
    ``distribution`` maps clbit strings to their exact probabilities.
    """
    branches = [((0,) * plan.num_clbits, tensor)]
    for op in plan.ops:
        if op.is_dynamic:
            branches = op.apply_density(branches)
        else:
            branches = [(bits, op.apply(rho)) for bits, rho in branches]
    total = None
    distribution: Dict[str, float] = {}
    for bits, rho in branches:
        total = rho if total is None else total + rho
        weight = max(_density_trace(rho, plan.num_qubits), 0.0)
        key = "".join(map(str, bits))
        distribution[key] = distribution.get(key, 0.0) + weight
    norm = sum(distribution.values())
    if norm > 0.0:
        distribution = {key: value / norm for key, value in distribution.items()}
    return total, distribution


PlanOp = Union[
    UnitaryOp,
    DensityUnitaryOp,
    DensityKrausOp,
    PTMOp,
    ParametricSlotOp,
    MeasureOp,
    ResetOp,
    ConditionalOp,
    TrajectoryKrausOp,
]


class ExecutionPlan:
    """A lowered, immutable program: what a backend actually executes.

    Produced by :func:`compile_plan`; executed by
    :meth:`~repro.sim.BaseBackend.execute_plan` (one tight loop shared by
    every backend) or, for parameter sweeps on the statevector engine, by
    :func:`repro.plan.run_batched_sweep` as one batched contraction per op.
    """

    __slots__ = (
        "_mode",
        "_num_qubits",
        "_ops",
        "_parameters",
        "_dtype",
        "_circuit",
        "_backend_name",
        "_pass_stats",
        "_stats",
        "_compile_time_s",
        "_transpile_time_s",
        "_num_clbits",
        "_has_dynamic",
    )

    def __init__(
        self,
        mode: str,
        num_qubits: int,
        ops: Sequence[PlanOp],
        parameters: Tuple[Parameter, ...],
        dtype: np.dtype,
        circuit: Circuit,
        backend_name: str,
        pass_stats: Tuple[dict, ...] = (),
        stats: Optional["CircuitStats"] = None,
        compile_time_s: float = 0.0,
        transpile_time_s: float = 0.0,
        *,
        num_clbits: int = 0,
    ) -> None:
        self._mode = mode
        self._num_qubits = int(num_qubits)
        self._ops = tuple(ops)
        self._parameters = tuple(parameters)
        self._dtype = np.dtype(dtype)
        self._circuit = circuit
        self._backend_name = backend_name
        self._pass_stats = tuple(pass_stats)
        self._stats = stats
        self._compile_time_s = float(compile_time_s)
        self._transpile_time_s = float(transpile_time_s)
        self._num_clbits = int(num_clbits)
        self._has_dynamic = any(op.is_dynamic for op in self._ops)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Lowering mode: ``"statevector"``, ``"density"``, ``"trajectory"``
        or ``"ptm"``."""
        return self._mode

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        """Width of the classical register dynamic ops write into."""
        return self._num_clbits

    @property
    def has_dynamic_ops(self) -> bool:
        """Whether execution needs the RNG/classical-bit threading path."""
        return self._has_dynamic

    @property
    def ops(self) -> Tuple[PlanOp, ...]:
        """The flat precomputed op sequence, in execution order."""
        return self._ops

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """Distinct unbound symbols, in first-use order (empty when bound)."""
        return self._parameters

    @property
    def is_parametric(self) -> bool:
        return bool(self._parameters)

    @property
    def dtype(self) -> np.dtype:
        """The dtype every op tensor was cast to at compile time."""
        return self._dtype

    @property
    def circuit(self) -> Circuit:
        """The (transpiled, possibly parametric) circuit this plan lowers."""
        return self._circuit

    @property
    def backend_name(self) -> str:
        """Name of the backend the plan was compiled for."""
        return self._backend_name

    @property
    def pass_stats(self) -> Tuple[dict, ...]:
        """Per-pass transpile statistics captured at compile time."""
        return self._pass_stats

    @property
    def stats(self) -> Optional["CircuitStats"]:
        """:class:`~repro.circuit.CircuitStats` of the lowered circuit."""
        return self._stats

    @property
    def compile_time_s(self) -> float:
        """Wall time of the original compile (transpile + lowering)."""
        return self._compile_time_s

    @property
    def transpile_time_s(self) -> float:
        """Wall time of the transpile portion of the original compile."""
        return self._transpile_time_s

    def __len__(self) -> int:
        return len(self._ops)

    def __repr__(self) -> str:
        parametric = (
            f", {len(self._parameters)} parameter(s)" if self._parameters else ""
        )
        return (
            f"ExecutionPlan({self._mode}, {self._num_qubits} qubits, "
            f"{len(self._ops)} ops{parametric})"
        )

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, binding: Mapping[Union[Parameter, str], float]) -> "ExecutionPlan":
        """Resolve every parametric slot and return the bound plan.

        Static ops are *shared* with this plan, not recomputed — binding
        never re-lowers (the lowering hooks do not fire).  Every plan
        parameter must be bound; stray keys are rejected like
        :meth:`Circuit.bind` rejects them.
        """
        from repro.circuit.parameter import normalize_binding, validate_binding_names

        values = normalize_binding(binding, SimulationError)
        validate_binding_names(
            values,
            (parameter.name for parameter in self._parameters),
            SimulationError,
            subject="plan",
            require_complete=True,
        )
        if not self._parameters:
            return self
        ops: List[PlanOp] = []
        for op in self._ops:
            if not op.is_slot:
                ops.append(op)
                continue
            matrix = op.resolve_matrix(values)
            if self._mode in (STATEVECTOR, TRAJECTORY):
                ops.append(UnitaryOp(op.gate_name, matrix, op.targets, self._dtype))
            elif self._mode == PTM:
                bound = tuple(
                    values[p.name] if isinstance(p, Parameter) else float(p)
                    for p in op.params
                )
                tensor = _gate_ptm(op.gate_name, bound, matrix, len(op.targets))
                ops.append(PTMOp(op.gate_name, tensor, op.targets, self._dtype))
            else:
                ops.append(
                    DensityUnitaryOp(
                        op.gate_name, matrix, op.targets, self._num_qubits, self._dtype
                    )
                )
        return ExecutionPlan(
            self._mode,
            self._num_qubits,
            ops,
            (),
            self._dtype,
            self._circuit,
            self._backend_name,
            self._pass_stats,
            self._stats,
            self._compile_time_s,
            self._transpile_time_s,
            num_clbits=self._num_clbits,
        )


def _lower_dynamic(
    instruction: "Instruction", mode: str, num_qubits: int, dtype: np.dtype
) -> PlanOp:
    """Lower one dynamic instruction (measure/reset/if_bit) for ``mode``."""
    operation = instruction.operation
    if instruction.is_measure:
        return MeasureOp(instruction.qubits[0], operation.clbit, num_qubits)
    if instruction.is_reset:
        return ResetOp(instruction.qubits[0], num_qubits)
    # Conditional: the wrapped gate is concrete (Conditional rejects
    # parametric operations), so the inner op resolves fully here.
    gate = operation.operation
    if mode in (STATEVECTOR, TRAJECTORY):
        inner = UnitaryOp(gate.name, gate.matrix, instruction.qubits, dtype)
    else:
        inner = DensityUnitaryOp(
            gate.name, gate.matrix, instruction.qubits, num_qubits, dtype
        )
    return ConditionalOp(operation.clbit, operation.value, inner)


class _PTMFusionGroup:
    """A pending run of PTMs being fused into one op at lowering time.

    The base-4 sibling of :class:`repro.transpile.fusion._FusionGroup`:
    absorbing an op widens the accumulated matrix by ``kron`` with the
    identity on any new qubits (existing qubits keep their slot order),
    embeds the incoming PTM at the right slots, and left-multiplies.
    Nothing here mutates its inputs, so cached gate/channel PTMs stay
    shared until a second member actually arrives.
    """

    __slots__ = ("qubits", "matrix", "names")

    def __init__(
        self, qubits: Sequence[int], matrix: np.ndarray, name: str
    ) -> None:
        self.qubits = list(qubits)
        self.matrix = matrix
        self.names = [name]

    def can_absorb(self, qubits: Sequence[int], max_width: int) -> bool:
        return len(set(self.qubits) | set(qubits)) <= max_width

    def absorb(self, qubits: Sequence[int], matrix: np.ndarray, name: str) -> None:
        new = [q for q in qubits if q not in self.qubits]
        if new:
            self.matrix = np.kron(self.matrix, np.eye(4 ** len(new)))
            self.qubits.extend(new)
        positions = [self.qubits.index(q) for q in qubits]
        incoming = embed_ptm(matrix, positions, len(self.qubits))
        self.matrix = incoming @ self.matrix
        self.names.append(name)


def _lower_ptm(
    circuit: Circuit,
    dtype: np.dtype,
    noise_model: Optional["NoiseModel"],
    backend_name: str,
) -> ExecutionPlan:
    """Lower a circuit into fused :class:`PTMOp` runs for the ptm mode.

    Gates and channels alike arrive as real PTMs and fuse greedily
    through each other — the statevector fusion pass must stop at every
    channel, but here a noisy layer collapses into one op per
    ``PTM_FUSE_WIDTH``-qubit group.  Parametric slots (unknown matrices)
    and ops wider than the cap stay barriers.
    """
    n = circuit.num_qubits
    ops: List[PlanOp] = []
    group: Optional[_PTMFusionGroup] = None

    def flush() -> None:
        nonlocal group
        if group is not None:
            ops.append(
                PTMOp(
                    "+".join(group.names),
                    group.matrix,
                    tuple(group.qubits),
                    dtype,
                )
            )
            group = None

    def feed(name: str, ptm: np.ndarray, qubits: Sequence[int]) -> None:
        nonlocal group
        if len(qubits) > PTM_FUSE_WIDTH:
            flush()
            ops.append(PTMOp(name, ptm, tuple(qubits), dtype))
            return
        if group is not None and group.can_absorb(qubits, PTM_FUSE_WIDTH):
            group.absorb(qubits, ptm, name)
            return
        flush()
        group = _PTMFusionGroup(qubits, ptm, name)

    for index, instruction in enumerate(circuit):
        operation = instruction.operation
        if instruction.is_dynamic:
            raise SimulationError(
                "circuit contains dynamic ops (measure/reset/if_bit); the "
                "ptm backend evolves Pauli vectors with no classical "
                "register — use backend='density_matrix' or "
                "backend='trajectory'"
            )
        if instruction.is_channel:
            feed(operation.name, operation.ptm, instruction.qubits)
            continue
        if instruction.is_parametric:
            flush()
            ops.append(
                ParametricSlotOp(
                    operation.name, operation.params, instruction.qubits, index
                )
            )
        else:
            feed(
                operation.name,
                _gate_ptm(
                    operation.name,
                    operation.params,
                    operation.matrix,
                    len(instruction.qubits),
                ),
                instruction.qubits,
            )
        if noise_model is not None:
            for channel, qubits in noise_model.channels_for(instruction):
                feed(channel.name, channel.ptm, qubits)
    flush()
    return ExecutionPlan(
        PTM,
        n,
        ops,
        circuit.parameters(),
        dtype,
        circuit,
        backend_name,
        stats=circuit.stats(),
        num_clbits=circuit.num_clbits,
    )


def _lower(
    circuit: Circuit,
    mode: str,
    dtype: np.dtype,
    noise_model: Optional["NoiseModel"],
    backend_name: str,
) -> ExecutionPlan:
    """Lower a (transpiled) circuit into plan ops for ``mode``."""
    if mode == PTM:
        return _lower_ptm(circuit, dtype, noise_model, backend_name)
    if mode not in (STATEVECTOR, DENSITY, TRAJECTORY):
        raise SimulationError(
            f"unknown plan mode {mode!r}; expected "
            f"{STATEVECTOR!r}, {DENSITY!r}, {TRAJECTORY!r} or {PTM!r}"
        )
    n = circuit.num_qubits
    pure = mode in (STATEVECTOR, TRAJECTORY)
    ops: List[PlanOp] = []
    for index, instruction in enumerate(circuit):
        operation = instruction.operation
        if instruction.is_dynamic:
            ops.append(_lower_dynamic(instruction, mode, n, dtype))
            continue
        if instruction.is_channel:
            if mode == STATEVECTOR:
                raise SimulationError(
                    "circuit contains channel instructions; the statevector "
                    "backend only simulates unitary gates — use "
                    "backend='density_matrix'"
                )
            if mode == TRAJECTORY:
                ops.append(
                    TrajectoryKrausOp(
                        operation.name, operation.kraus, instruction.qubits, dtype
                    )
                )
            else:
                ops.append(
                    DensityKrausOp(
                        operation.name, operation.kraus, instruction.qubits, n, dtype
                    )
                )
            continue
        if instruction.is_parametric:
            ops.append(
                ParametricSlotOp(
                    operation.name, operation.params, instruction.qubits, index
                )
            )
        elif pure:
            ops.append(
                UnitaryOp(operation.name, operation.matrix, instruction.qubits, dtype)
            )
        else:
            ops.append(
                DensityUnitaryOp(
                    operation.name, operation.matrix, instruction.qubits, n, dtype
                )
            )
        if noise_model is not None:
            # Rule matching hoisted out of the run loop: the rules
            # fired by an instruction depend only on its name and
            # qubits, both fixed at compile time (parametric or not).
            # Statevector mode never gets here — gate noise is rejected
            # by the backend's _validate_noise before lowering.
            for channel, qubits in noise_model.channels_for(instruction):
                if mode == TRAJECTORY:
                    ops.append(
                        TrajectoryKrausOp(channel.name, channel.kraus, qubits, dtype)
                    )
                else:
                    ops.append(
                        DensityKrausOp(channel.name, channel.kraus, qubits, n, dtype)
                    )
    plan = ExecutionPlan(
        mode,
        n,
        ops,
        circuit.parameters(),
        dtype,
        circuit,
        backend_name,
        stats=circuit.stats(),
        num_clbits=circuit.num_clbits,
    )
    return plan


def compile_plan(
    circuit: Circuit,
    backend: Any = None,
    options: Optional["RunOptions"] = None,
    *,
    use_cache: bool = True,
) -> ExecutionPlan:
    """Lower ``circuit`` into an :class:`ExecutionPlan` for ``backend``.

    Transpiles first when ``options.optimize`` / ``options.passes`` ask
    for it (the lowering itself rides :func:`repro.transpile.transpile`'s
    ``lower=`` hook, and the pass statistics land on ``plan.pass_stats``),
    matches any :class:`~repro.noise.NoiseModel` rules per instruction,
    and precomputes every op tensor in the backend's dtype.

    Parameters
    ----------
    circuit:
        The circuit (possibly parametric) to lower; never mutated.
    backend:
        Registered backend name, live backend instance, or ``None`` for
        the default.  The backend's ``plan_mode`` selects the lowering
        and its ``dtype`` the op-tensor precision.
    options:
        A :class:`~repro.execution.RunOptions` (``None`` for defaults);
        ``optimize`` / ``passes`` / ``noise_model`` participate in the
        lowering, the sampling knobs do not.
    use_cache:
        Consult/populate the process-wide plan cache (see
        :mod:`repro.plan.cache`).  Compilation is skipped entirely on a
        hit — repeated ``execute()`` of the same circuit reuses the plan.
    """
    from repro.execution.options import RunOptions
    from repro.plan.cache import cache_get, cache_put

    if not isinstance(circuit, Circuit):
        raise SimulationError(
            f"expected a Circuit, got {type(circuit).__name__}"
        )
    if options is None:
        options = RunOptions()
    elif not isinstance(options, RunOptions):
        raise SimulationError(
            f"options must be RunOptions, got {type(options).__name__}"
        )
    if backend is None or isinstance(backend, str):
        from repro.sim.registry import get_backend

        backend = get_backend(backend)
    mode = getattr(backend, "plan_mode", None)
    if mode not in (STATEVECTOR, DENSITY, TRAJECTORY, PTM):
        raise SimulationError(
            f"backend {getattr(backend, 'name', backend)!r} does not "
            "declare a plan_mode; only plan-capable backends can compile "
            "ExecutionPlans"
        )
    validate_noise = getattr(backend, "_validate_noise", None)
    if validate_noise is not None:
        validate_noise(options.noise_model)
    dtype = np.dtype(getattr(backend, "dtype", np.complex128))
    backend_name = getattr(backend, "name", type(backend).__name__)

    if use_cache:
        cached = cache_get(circuit, backend_name, mode, dtype, options)
        if cached is not None:
            return cached

    noise_model = options.noise_model
    has_gate_noise = noise_model is not None and getattr(
        noise_model, "has_gate_noise", False
    )
    start = time.perf_counter()
    transpile_time = 0.0
    pass_stats: Tuple[dict, ...] = ()
    if options.optimize or options.passes is not None:
        from repro.transpile import transpile

        managers: List = []
        marks: Dict[str, float] = {}

        def _hooked_lower(transpiled: Circuit) -> ExecutionPlan:
            # The hook fires the moment the pass pipeline hands over the
            # optimised circuit, so the transpile/lowering split below is
            # measured, not estimated.
            marks["transpiled_at"] = time.perf_counter()
            return _lower(
                transpiled,
                mode,
                dtype,
                noise_model if has_gate_noise else None,
                backend_name,
            )

        t0 = time.perf_counter()
        plan = transpile(
            circuit,
            passes=options.passes,
            pass_manager_out=managers,
            lower=_hooked_lower,
            certify=options.certify,
        )
        transpile_time = marks.get("transpiled_at", time.perf_counter()) - t0
        if managers:
            pass_stats = managers[0].last_stats_dicts()
    else:
        plan = _lower(
            circuit,
            mode,
            dtype,
            noise_model if has_gate_noise else None,
            backend_name,
        )
    plan = ExecutionPlan(
        plan.mode,
        plan.num_qubits,
        plan.ops,
        plan.parameters,
        plan.dtype,
        plan.circuit,
        plan.backend_name,
        pass_stats,
        plan.stats,
        compile_time_s=time.perf_counter() - start,
        transpile_time_s=transpile_time,
        num_clbits=plan.num_clbits,
    )
    for hook in tuple(_LOWER_HOOKS):
        hook(circuit, plan)
    if use_cache:
        cache_put(circuit, backend_name, mode, dtype, options, plan)
    return plan
