"""Compiled execution plans: lower once, run many.

:func:`compile_plan` lowers a (possibly parametric) circuit into an
:class:`ExecutionPlan` — a flat sequence of precomputed ops (gate tensors
reshaped for ``tensordot`` with contraction axes resolved, Kraus groups,
noise-model rules matched per instruction, parametric slots that
:meth:`~ExecutionPlan.bind` resolves without re-lowering).  Backends
execute plans through one shared tight loop
(:meth:`~repro.sim.BaseBackend.execute_plan`);
:func:`run_batched_sweep` evolves all N bindings of a statevector sweep
as a single batch-axis tensor, one contraction per op.

Plans are cached process-wide (:mod:`repro.plan.cache`) so repeated
execution of the same circuit under the same options skips compilation.
"""

from repro.plan.plan import (
    ConditionalOp,
    DensityKrausOp,
    DensityUnitaryOp,
    ExecutionPlan,
    MeasureOp,
    ParametricSlotOp,
    PTMOp,
    ResetOp,
    TrajectoryKrausOp,
    UnitaryOp,
    add_lower_hook,
    compile_plan,
    execute_dynamic_density,
    execute_dynamic_pure,
    remove_lower_hook,
)
from repro.plan.batch import run_batched_sweep
from repro.plan.cache import clear_plan_cache, plan_cache_info

__all__ = [
    "ConditionalOp",
    "DensityKrausOp",
    "DensityUnitaryOp",
    "ExecutionPlan",
    "MeasureOp",
    "PTMOp",
    "ParametricSlotOp",
    "ResetOp",
    "TrajectoryKrausOp",
    "UnitaryOp",
    "add_lower_hook",
    "clear_plan_cache",
    "compile_plan",
    "execute_dynamic_density",
    "execute_dynamic_pure",
    "plan_cache_info",
    "remove_lower_hook",
    "run_batched_sweep",
]
