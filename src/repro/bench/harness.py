"""The bench driver: time each workload unfused vs. transpiled vs. planned.

Report schema (``schema_version`` 7) — stable from this PR onward so CI
artifacts stay comparable across commits::

    {
      "schema_version": 6,
      "config": {"smoke": bool, "shots": int, "seed": int,
                 "repeats": int, "max_fused_width": int,
                 "backend": str,
                 "noise_model": str | null,   # suite-wide model label
                 "sweep": bool,               # was --sweep requested
                 "parallel": bool,            # was --parallel requested
                 "workers": int,              # --workers value
                 "trajectory": bool},         # was --trajectory requested
      "workloads": [
        {
          "name": str, "num_qubits": int,
          "backend": str,              # backend the workload ran on
          "noise": str | null,         # embedded-channel and/or model
                                       # label, null when noiseless
          "gates_unfused": int, "gates_fused": int,   # Circuit.stats()
          "depth_unfused": int, "depth_fused": int,   # Circuit.stats()
          "transpile_time_s": float,   # pass pipeline only
          "plan_compile_ms": float,    # fused-circuit lowering only
          "run_time_unfused_s": float, # plan execution only — compile
          "run_time_fused_s": float,   # and transpile excluded, so the
                                       # speedup is attributed honestly
          "speedup": float | null,     # unfused / fused wall-time; null
                                       # when the fused time measured 0
                                       # (Infinity is not valid JSON)
          "counts_match": bool,        # seeded sampling equivalence
          "expectation_z0": float,     # <Z_0> on the unfused final state
          "expectations_match": bool,  # fused <Z_0> agrees to 1e-9
          "eager_matches_plan": bool,  # run() (compile+execute) and
                                       # precompiled-plan execution give
                                       # bitwise-identical states
          # --- PTM columns: non-null only on density-matrix rows ------
          "run_time_ptm_s": float | null,   # same fused circuit on the
                                            # ptm backend, plan execution
          "ptm_speedup_vs_density": float | null,  # fused density time /
                                            # ptm time; null off-density
                                            # or when ptm measured 0
          "ptm_counts_match": bool | null,  # ptm counts == density
                                            # counts under the same seed
          "ptm_expectations_match": bool | null,  # ptm <Z_0> agrees with
                                            # density to 1e-9
          "plan_ops_density": int | null,   # fused-circuit density plan
          "plan_ops_ptm": int | null,       # fused-circuit ptm plan
          "ptm_fewer_ops": bool | null      # fusion through channels
                                            # strictly shrank the plan
        }, ...
      ],
      "sweep": null | {                # present (non-null) with --sweep
        "name": str, "num_qubits": int, "points": int,
        "parameters": int,             # symbols bound per point
        "transpile_calls": int,        # MUST be 1: one compile, N binds
        "plan_compile_ms": float,      # template lowering, fresh/uncached
        "run_time_batched_s": float,   # all points, one batched tensor
        "run_time_per_element_s": float,  # same plan, bound per point
        "batched_speedup": float | null,  # per-element / batched
        "expectations": [float, ...],  # batched <Z_0> per sweep point
        "expectations_match": bool,    # batched vs per-element to 1e-9
        "reproducible": bool           # batched re-run is bitwise equal
      },
      "parallel": null | {             # present (non-null) with --parallel
        "workers": int,                # worker processes for parallel legs
        "cpu_count": int | null,       # os.cpu_count() on the bench host —
                                       # speedup gates only make sense >= 2
        "sweep": {                     # per-element (density+noise) sweep
          "name": str, "backend": str, "num_qubits": int,
          "points": int, "shots": int,
          "run_time_serial_s": float,     # max_workers=1
          "run_time_parallel_s": float,   # max_workers=workers, warm pool
          "parallel_speedup": float | null,  # serial / parallel
          "results_match": bool,          # parallel bitwise == serial
          "workers1_matches_serial": bool # max_workers=1 bitwise == default
        },
        "sharded_shots": {             # one state, sampling split k ways
          "name": str, "num_qubits": int,
          "shots": int, "shard_shots": int,
          "run_time_serial_s": float,     # k shards, sampled in-process
          "run_time_parallel_s": float,   # same k shards on the pool
          "parallel_speedup": float | null,
          "counts_match": bool,           # sharded serial == sharded pool
          "unsharded_matches_shard1": bool  # shard_shots=1 == plain path
        }
      },
      "trajectory": null | {           # present (non-null) with --trajectory
        "trajectories": int,           # Monte-Carlo shots per workload
        "workloads": [                 # noisy density-cap-sized workloads
          {
            "name": str, "num_qubits": int,
            "expectation_density": float,     # exact <Z_0>, one density run
            "expectation_trajectory": float,  # trajectory-averaged <Z_0>
            "std_error": float,               # standard error of the mean
            "agreement": bool,     # |diff| <= 5 * max(std_error, floor)
            "run_time_density_s": float,      # exact mixed-state evolution
            "run_time_trajectory_s": float,   # all trajectories, serial
            "trajectory_speedup": float | null  # density / trajectory
          }, ...
        ]
      }
    }

Schema history: version 1 lacked the ``backend``/``noise`` fields and
emitted ``float("inf")`` speedups; version 2 predates the execution
layer — no expectation columns and no ``sweep`` section; version 3
predates compiled execution plans — no ``plan_compile_ms`` /
``eager_matches_plan`` columns, a single sweep ``run_time_s``, and
workload timings measured through ``run()`` (which now compiles), so
compile cost leaked into the headline numbers; version 4 predates the
parallel execution service — no ``parallel`` section and no
``parallel``/``workers`` config keys; version 5 predates the
Monte-Carlo trajectory backend — no ``trajectory`` section and no
``trajectory`` config key; version 6 predates the Pauli-transfer-matrix
backend — no ``run_time_ptm_s`` / ``ptm_speedup_vs_density`` /
``ptm_counts_match`` / ``ptm_expectations_match`` /
``plan_ops_density`` / ``plan_ops_ptm`` / ``ptm_fewer_ops`` workload
columns (and no ``brickwork_depolarized`` family).

Counts and expectation values are produced through the unified
:func:`repro.execute` front door, so the harness exercises exactly the
surface users are told to call.  Wall-times are best-of-``repeats``
``perf_counter`` measurements of *plan execution* alone — circuit
construction, transpilation, and plan lowering are each timed in their
own columns — so the headline number isolates the amplitude-array
sweeps that fusion and batching are meant to reduce.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.workloads import (
    Workload,
    default_workloads,
    parameterized_rotations,
    sweep_bindings,
)
from repro.circuit import Circuit
from repro.execution import RunOptions, execute
from repro.observables import Pauli
from repro.plan import compile_plan
from repro.sim import get_backend
from repro.transpile import Pass, transpile
from repro.utils.exceptions import SimulationError

SCHEMA_VERSION = 7

# Mixed-state cost is O(4**n) memory *per contraction temporary*: n = 12
# is already ~270 MB a copy (minutes of bench wall-time), n = 16 would be
# 64 GiB before the first gate.  Refuse early with a clear message
# instead of dying in np.zeros or grinding for hours.
DENSITY_WIDTH_CAP = 10

_EXPECTATION_ATOL = 1e-9


class _CountingPass(Pass):
    """Identity pass that records how many times the pipeline ran.

    Appended to the sweep pipeline so the report can *prove* the
    one-transpile-N-binds contract instead of asserting it in prose.
    """

    def __init__(self) -> None:
        self.calls = 0

    def run(self, circuit: Circuit) -> Circuit:
        self.calls += 1
        return circuit


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_workload(
    workload: Workload,
    backend,
    circuit: Circuit,
    shots: int,
    seed: int,
    repeats: int,
    max_fused_width: int,
    noise_model,
    noise_label: "Optional[str]",
) -> Dict[str, object]:
    start = time.perf_counter()
    fused = transpile(circuit, max_fused_width=max_fused_width)
    transpile_time = time.perf_counter() - start

    # Lower both circuits to plans up front (uncached, so the compile
    # column measures real lowering work) and time *plan execution* only:
    # run() would re-resolve the cache and fold compile cost into the
    # first repeat, mis-attributing the fusion speedup.
    run_options = RunOptions(noise_model=noise_model)
    plan_unfused = compile_plan(circuit, backend, run_options, use_cache=False)
    t0 = time.perf_counter()
    plan_fused = compile_plan(fused, backend, run_options, use_cache=False)
    plan_compile_ms = (time.perf_counter() - t0) * 1000.0
    run_unfused = _best_time(
        lambda: backend.execute_plan(plan_unfused), repeats
    )
    run_fused = _best_time(
        lambda: backend.execute_plan(plan_fused), repeats
    )
    # The refactor's invariant, proven per workload: the thin run()
    # wrapper (compile + execute) and direct execution of a precompiled
    # plan are the same code path, bit for bit.
    eager_matches_plan = bool(
        np.array_equal(
            backend.run(fused, options=run_options).data,
            backend.execute_plan(plan_fused).data,
        )
    )

    # Counts and expectations come through the unified front door; the
    # same seed both ways makes the fused/unfused comparison exact.
    observable = Pauli("Z", qubits=(0,))
    options = RunOptions(
        backend=backend,
        shots=shots,
        seed=seed,
        noise_model=noise_model,
        observables=(observable,),
    )
    result_unfused = execute(circuit, options)
    result_fused = execute(fused, options)
    expectation_unfused = result_unfused.expectation_values[0]
    expectation_fused = result_fused.expectation_values[0]

    # PTM columns: the same fused circuit on the Pauli-transfer engine,
    # raced against the density backend (the other exact mixed-state
    # engine).  Rows on any other backend carry nulls — a statevector
    # baseline would compare different physics.
    ptm_columns: Dict[str, object] = {
        "run_time_ptm_s": None,
        "ptm_speedup_vs_density": None,
        "ptm_counts_match": None,
        "ptm_expectations_match": None,
        "plan_ops_density": None,
        "plan_ops_ptm": None,
        "ptm_fewer_ops": None,
    }
    if backend.name == "density_matrix":
        ptm_backend = get_backend("ptm")
        plan_ptm = compile_plan(fused, ptm_backend, run_options, use_cache=False)
        run_ptm = _best_time(lambda: ptm_backend.execute_plan(plan_ptm), repeats)
        result_ptm = execute(
            fused,
            RunOptions(
                backend=ptm_backend,
                shots=shots,
                seed=seed,
                noise_model=noise_model,
                observables=(observable,),
            ),
        )
        ptm_columns.update(
            run_time_ptm_s=run_ptm,
            ptm_speedup_vs_density=(
                run_fused / run_ptm if run_ptm > 0 else None
            ),
            ptm_counts_match=result_ptm.counts == result_fused.counts,
            ptm_expectations_match=abs(
                result_ptm.expectation_values[0] - expectation_fused
            )
            <= _EXPECTATION_ATOL,
            plan_ops_density=len(plan_fused.ops),
            plan_ops_ptm=len(plan_ptm.ops),
            ptm_fewer_ops=len(plan_ptm.ops) < len(plan_fused.ops),
        )

    stats_unfused = circuit.stats()
    stats_fused = fused.stats()
    return {
        "name": workload.name,
        "num_qubits": workload.num_qubits,
        "backend": backend.name,
        "noise": noise_label,
        "gates_unfused": stats_unfused.num_instructions,
        "gates_fused": stats_fused.num_instructions,
        "depth_unfused": stats_unfused.depth,
        "depth_fused": stats_fused.depth,
        "transpile_time_s": transpile_time,
        "plan_compile_ms": plan_compile_ms,
        "run_time_unfused_s": run_unfused,
        "run_time_fused_s": run_fused,
        # null, not float("inf"): json.dumps would emit the non-standard
        # ``Infinity`` token and break strict parsers of the CI artifact.
        "speedup": run_unfused / run_fused if run_fused > 0 else None,
        "counts_match": result_unfused.counts == result_fused.counts,
        "expectation_z0": expectation_unfused,
        "expectations_match": abs(expectation_unfused - expectation_fused)
        <= _EXPECTATION_ATOL,
        "eager_matches_plan": eager_matches_plan,
        **ptm_columns,
    }


def _bench_sweep(
    smoke: bool, seed: int, max_fused_width: int, repeats: int
) -> Dict[str, object]:
    """Benchmark the batched-sweep workload: one plan, two execution modes.

    The layered-rotation template sweeps the same seeded bindings twice
    through ``execute()`` — once with ``sweep_mode="batched"`` (all
    points as one stacked state tensor) and once with
    ``sweep_mode="per_element"`` (the same compiled plan, bound per
    point) — so ``batched_speedup`` compares identical arithmetic and
    differs only in how it is dispatched.  An instrumented pass pipeline
    makes ``transpile_calls`` a measurement, not an assumption;
    ``reproducible`` re-runs the batched sweep and compares expectations
    bitwise; ``plan_compile_ms`` lowers the template fresh (uncached)
    after the counting snapshot is taken.
    """
    from repro.transpile.base import default_passes

    num_qubits = 4 if smoke else 8
    points = 8 if smoke else 16
    template, parameters = parameterized_rotations(num_qubits, layers=2)
    bindings = sweep_bindings(parameters, points, seed=seed)
    counting = _CountingPass()
    passes = list(default_passes(max_fused_width)) + [counting]
    observable = Pauli("Z", qubits=(0,))

    def run_sweep(mode: str):
        return execute(
            template,
            seed=seed,
            passes=passes,
            observables=(observable,),
            parameter_sweep=bindings,
            sweep_mode=mode,
        )

    # Cold run first: compiles the template plan (cached for every run
    # below) and snapshots the one-compile-per-sweep contract.  (No floor
    # division over later runs — that would round 3 calls down to 1 and
    # hide a regression.)
    batch = run_sweep("batched")
    transpile_calls = counting.calls

    # Both timed legs are warm (plan-cache hits), so the comparison is
    # pure execution; best-of-at-least-3 keeps the CI gate off the noise
    # floor even in single-repeat smoke runs.
    sweep_repeats = max(repeats, 3)
    run_batched = _best_time(lambda: run_sweep("batched"), sweep_repeats)
    run_per_element = _best_time(lambda: run_sweep("per_element"), sweep_repeats)

    per_element = run_sweep("per_element")
    expectations_match = all(
        abs(a[0] - b[0]) <= _EXPECTATION_ATOL
        for a, b in zip(batch.expectation_values, per_element.expectation_values)
    )
    repeat = run_sweep("batched")
    reproducible = batch.expectation_values == repeat.expectation_values

    # Fresh, uncached lowering of the template — measured after the
    # counting snapshot so the extra pipeline run cannot pollute it.
    backend = get_backend(None)
    t0 = time.perf_counter()
    plan = compile_plan(
        template, backend, RunOptions(passes=passes), use_cache=False
    )
    compile_ms = (time.perf_counter() - t0 - plan.transpile_time_s) * 1000.0

    return {
        "name": template.name,
        "num_qubits": num_qubits,
        "points": points,
        "parameters": len(parameters),
        "transpile_calls": transpile_calls,
        "plan_compile_ms": compile_ms,
        "run_time_batched_s": run_batched,
        "run_time_per_element_s": run_per_element,
        # null, not Infinity, when the batched leg measured 0 (see the
        # workload speedup column).
        "batched_speedup": (
            run_per_element / run_batched if run_batched > 0 else None
        ),
        "expectations": [values[0] for values in batch.expectation_values],
        "expectations_match": bool(expectations_match),
        "reproducible": bool(reproducible),
    }


def _bench_parallel(
    smoke: bool, seed: int, repeats: int, workers: int
) -> Dict[str, object]:
    """Benchmark the parallel execution service against its serial twin.

    Two legs, each timing the *same options* with ``max_workers=1``
    versus ``max_workers=workers`` so the columns differ only in
    scheduling:

    * ``sweep`` — a per-element density-matrix sweep with depolarizing
      gate noise, the workload the service shards element-wise.  Heavy
      per-point contractions amortise the pickle-and-ship cost, so this
      is where multi-process wins first.
    * ``sharded_shots`` — one statevector, a large shot count split into
      ``shard_shots`` seed-derived shards sampled concurrently.

    Each leg also records parity booleans (parallel results bitwise
    equal to serial) so CI gates on correctness even on hosts where the
    speedup gate is meaningless — ``cpu_count`` is in the report
    precisely because a 1-CPU runner cannot be expected to go faster.
    Speedups are ``null``, never Infinity, when the parallel leg
    measured 0.  The first parallel run of each leg is untimed warm-up:
    it forks the worker pool so pool start-up cost stays out of the
    steady-state columns.
    """
    from repro.noise import NoiseModel, depolarizing

    timing_repeats = max(repeats, 3)

    # --- leg 1: per-element sweep (density + noise) -------------------
    # Sized so even the smoke leg has tens of milliseconds of serial
    # work per run: lighter legs drown in fork/pickle overhead and make
    # the multi-core speedup gate flaky.
    num_qubits = 6
    points = 8 if smoke else 16
    shots = 512 if smoke else 1024
    template, parameters = parameterized_rotations(num_qubits, layers=2)
    bindings = sweep_bindings(parameters, points, seed=seed)
    model = NoiseModel("bench-depolarizing").add_channel(depolarizing(0.02))

    def run_sweep(max_workers: Optional[int]):
        return execute(
            template,
            backend="density_matrix",
            noise_model=model,
            shots=shots,
            seed=seed,
            parameter_sweep=bindings,
            sweep_mode="per_element",
            max_workers=max_workers,
        )

    serial = run_sweep(None)
    workers1 = run_sweep(1)
    parallel = run_sweep(workers)  # warm-up: forks the pool, fills caches
    results_match = all(
        a.counts == b.counts
        and a.expectation_values == b.expectation_values
        and np.array_equal(a.state.tensor(), b.state.tensor())
        for a, b in zip(serial, parallel)
    )
    workers1_matches_serial = all(
        a.counts == b.counts
        and np.array_equal(a.state.tensor(), b.state.tensor())
        for a, b in zip(serial, workers1)
    )
    sweep_serial_s = _best_time(lambda: run_sweep(1), timing_repeats)
    sweep_parallel_s = _best_time(lambda: run_sweep(workers), timing_repeats)

    sweep_leg = {
        "name": template.name,
        "backend": "density_matrix",
        "num_qubits": num_qubits,
        "points": points,
        "shots": shots,
        "run_time_serial_s": sweep_serial_s,
        "run_time_parallel_s": sweep_parallel_s,
        "parallel_speedup": (
            sweep_serial_s / sweep_parallel_s if sweep_parallel_s > 0 else None
        ),
        "results_match": bool(results_match),
        "workers1_matches_serial": bool(workers1_matches_serial),
    }

    # --- leg 2: sharded shots on one statevector ----------------------
    shard_qubits = 10
    shard_shots_total = 32768 if smoke else 131072
    shard_count = workers * 2
    circuit = Circuit(shard_qubits, name="sharded_sampling").h(0)
    for qubit in range(shard_qubits - 1):
        circuit.cx(qubit, qubit + 1)

    def run_shots(max_workers: Optional[int], shard_shots: int):
        return execute(
            circuit,
            shots=shard_shots_total,
            seed=seed,
            memory=True,
            shard_shots=shard_shots,
            max_workers=max_workers,
        )

    sharded_serial = run_shots(1, shard_count)
    sharded_parallel = run_shots(workers, shard_count)  # warm-up run
    counts_match = (
        sharded_serial.counts == sharded_parallel.counts
        and sharded_serial.memory == sharded_parallel.memory
    )
    # shard_shots=1 takes the plain single-draw path bit for bit.
    unsharded_matches_shard1 = (
        run_shots(None, 0).counts == run_shots(None, 1).counts
    )
    shots_serial_s = _best_time(
        lambda: run_shots(1, shard_count), timing_repeats
    )
    shots_parallel_s = _best_time(
        lambda: run_shots(workers, shard_count), timing_repeats
    )

    shard_leg = {
        "name": circuit.name,
        "num_qubits": shard_qubits,
        "shots": shard_shots_total,
        "shard_shots": shard_count,
        "run_time_serial_s": shots_serial_s,
        "run_time_parallel_s": shots_parallel_s,
        "parallel_speedup": (
            shots_serial_s / shots_parallel_s if shots_parallel_s > 0 else None
        ),
        "counts_match": bool(counts_match),
        "unsharded_matches_shard1": bool(unsharded_matches_shard1),
    }

    return {
        "workers": int(workers),
        "cpu_count": os.cpu_count(),
        "sweep": sweep_leg,
        "sharded_shots": shard_leg,
    }


#: Agreement-gate floor for the trajectory-vs-density check: a noiseless
#: observable can have zero sampling variance, and gating on 5 * 0 would
#: demand exact float equality between two different algorithms.
_TRAJECTORY_STD_FLOOR = 1e-3


def _bench_trajectory(smoke: bool, seed: int, repeats: int) -> Dict[str, object]:
    """Benchmark Monte-Carlo trajectories against exact density evolution.

    Runs the two noisy workload families at the density width cap —
    exactly where the O(4**n) mixed-state representation hurts most and
    the O(2**n)-per-trajectory unraveling is supposed to win — and
    checks statistical agreement: the trajectory estimate of ``<Z_0>``
    must land within five standard errors of the exact density value
    (with a small floor so a zero-variance observable cannot demand
    float equality).  CI gates on ``agreement``, not on the speedup —
    wall-clock is host-dependent, the estimator contract is not.
    """
    from repro.bench.workloads import ghz_depolarizing, layered_damped

    num_qubits = DENSITY_WIDTH_CAP
    trajectories = 128 if smoke else 256
    layers = 2 if smoke else 4
    observable = Pauli("Z", qubits=(0,))
    rows: List[Dict[str, object]] = []
    for circuit in (
        ghz_depolarizing(num_qubits),
        layered_damped(num_qubits, layers=layers),
    ):

        def run_density(circuit=circuit):
            return execute(
                circuit, backend="density_matrix", observables=(observable,)
            )

        def run_trajectory(circuit=circuit):
            return execute(
                circuit,
                backend="trajectory",
                shots=trajectories,
                seed=seed,
                observables=(observable,),
            )

        density = run_density()
        trajectory = run_trajectory()
        density_s = _best_time(run_density, repeats)
        trajectory_s = _best_time(run_trajectory, repeats)
        exact = density.expectation_values[0]
        estimate = trajectory.expectation_values[0]
        std_error = trajectory.metadata["expectation_std"][0]
        rows.append(
            {
                "name": circuit.name,
                "num_qubits": num_qubits,
                "expectation_density": exact,
                "expectation_trajectory": estimate,
                "std_error": std_error,
                "agreement": bool(
                    abs(estimate - exact)
                    <= 5 * max(std_error, _TRAJECTORY_STD_FLOOR)
                ),
                "run_time_density_s": density_s,
                "run_time_trajectory_s": trajectory_s,
                "trajectory_speedup": (
                    density_s / trajectory_s if trajectory_s > 0 else None
                ),
            }
        )
    return {"trajectories": trajectories, "workloads": rows}


def run_suite(
    workloads: Optional[Sequence[Workload]] = None,
    smoke: bool = False,
    shots: int = 1024,
    seed: int = 1234,
    repeats: Optional[int] = None,
    max_fused_width: int = 2,
    backend: Optional[str] = None,
    noise_model=None,
    sweep: bool = False,
    parallel: bool = False,
    workers: int = 2,
    trajectory: bool = False,
) -> Dict[str, object]:
    """Run the benchmark suite and return the schema-7 report dict.

    Parameters
    ----------
    workloads:
        Explicit workload list; defaults to :func:`default_workloads`
        at full or ``smoke`` size.
    smoke:
        Small/fast configuration for CI gating: fewer/smaller workloads
        and — unless ``repeats`` is given explicitly — a single timing
        repeat.
    shots, seed:
        Sampling configuration for the counts-equivalence check; the same
        seed is used for the unfused and fused run so the Counts must be
        identical.
    repeats:
        Wall-times are the best of this many runs.  ``None`` (default)
        resolves to 1 in smoke mode and 3 otherwise.
    max_fused_width:
        Width cap handed to the default transpile pipeline.
    backend:
        Default backend — a registered name or a configured instance —
        for workloads that do not pin one (``Workload.backend`` always
        wins); ``None`` means ``"statevector"``.
    noise_model:
        Optional :class:`~repro.noise.NoiseModel` applied to every
        workload (beyond any channels already embedded in the circuits).
        A model with gate-noise rules requires every workload to run on
        the density-matrix backend — combine it with
        ``backend="density_matrix"`` and density-sized workloads, or the
        first statevector-backed workload raises ``SimulationError``.
        Note that attaching per-gate noise makes the fused run a
        *different* open system, so expect ``counts_match`` to fail —
        useful for measuring that effect, not for CI gating.
    sweep:
        Also benchmark a batched parameter sweep through
        :func:`repro.execute` (see :func:`_bench_sweep`); the report's
        top-level ``"sweep"`` entry is ``null`` otherwise.
    parallel:
        Also benchmark the parallel execution service (see
        :func:`_bench_parallel`): a per-element sweep and a sharded-shot
        sampling leg, each serial vs. ``workers`` processes with parity
        checks.  The report's top-level ``"parallel"`` entry is ``null``
        otherwise.
    workers:
        Worker-process count for the parallel legs (ignored unless
        ``parallel`` is set).  Speedup columns only mean something when
        the host has at least that many cores — the report records
        ``cpu_count`` so consumers can tell.
    trajectory:
        Also benchmark the Monte-Carlo trajectory backend against exact
        density-matrix evolution on the noisy workload families at the
        density width cap (see :func:`_bench_trajectory`); the report's
        top-level ``"trajectory"`` entry is ``null`` otherwise.
    """
    if repeats is None:
        repeats = 1 if smoke else 3
    if workloads is None:
        workloads = default_workloads(smoke=smoke)
    # Normalise a name *or instance* to the live backend once, so the cap
    # check and the JSON report always see the backend's registered name
    # (get_backend(None) resolves the registry default).
    default_backend = get_backend(backend)
    has_gate_noise = noise_model is not None and getattr(
        noise_model, "has_gate_noise", False
    )
    model_label = (
        (getattr(noise_model, "name", None) or "noise_model")
        if has_gate_noise
        else None
    )
    # Validate the whole plan upfront — caps, backend compatibility — and
    # build each circuit once: refusing (or crashing on) workload k after
    # benching workloads 0..k-1 would throw their measurements away.
    plan = []
    for w in workloads:
        w_backend = get_backend(w.backend) if w.backend else default_backend
        if w_backend.name == "density_matrix" and w.num_qubits > DENSITY_WIDTH_CAP:
            raise SimulationError(
                f"workload {w.name!r} has {w.num_qubits} qubits; the "
                f"density-matrix backend needs O(4**n) memory and is capped "
                f"at {DENSITY_WIDTH_CAP} qubits in the bench suite — use "
                "smoke sizes or an explicit workload list"
            )
        circuit = w.build()
        if w_backend.name == "statevector" and (
            has_gate_noise or circuit.has_channels()
        ):
            raise SimulationError(
                f"workload {w.name!r} runs on the statevector backend, which "
                "cannot apply gate noise (noise-model rules or embedded "
                "channels) — pass backend='density_matrix' (and "
                "density-sized workloads)"
            )
        # The row label records all noise in play: channels embedded in
        # the circuit and/or the suite-wide model's gate noise.
        noise_label = " + ".join(filter(None, [w.noise, model_label])) or None
        plan.append((w, w_backend, circuit, noise_label))
    results: List[Dict[str, object]] = [
        _bench_workload(
            w,
            w_backend,
            circuit,
            shots,
            seed,
            repeats,
            max_fused_width,
            noise_model,
            noise_label,
        )
        for w, w_backend, circuit, noise_label in plan
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": bool(smoke),
            "shots": int(shots),
            "seed": int(seed),
            "repeats": int(repeats),
            "max_fused_width": int(max_fused_width),
            "backend": default_backend.name,
            "noise_model": model_label,
            "sweep": bool(sweep),
            "parallel": bool(parallel),
            "workers": int(workers),
            "trajectory": bool(trajectory),
        },
        "workloads": results,
        "sweep": (
            _bench_sweep(smoke, seed, max_fused_width, repeats) if sweep else None
        ),
        "parallel": (
            _bench_parallel(smoke, seed, repeats, workers) if parallel else None
        ),
        "trajectory": (
            _bench_trajectory(smoke, seed, repeats) if trajectory else None
        ),
    }
