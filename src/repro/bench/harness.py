"""The bench driver: time each workload unfused vs. transpiled.

Report schema (``schema_version`` 1) — stable from this PR onward so CI
artifacts stay comparable across commits::

    {
      "schema_version": 1,
      "config": {"smoke": bool, "shots": int, "seed": int,
                 "repeats": int, "max_fused_width": int},
      "workloads": [
        {
          "name": str, "num_qubits": int,
          "gates_unfused": int, "gates_fused": int,
          "depth_unfused": int, "depth_fused": int,
          "transpile_time_s": float,
          "run_time_unfused_s": float, "run_time_fused_s": float,
          "speedup": float,            # unfused / fused wall-time
          "counts_match": bool         # seeded sampling equivalence
        }, ...
      ]
    }

Wall-times are best-of-``repeats`` ``perf_counter`` measurements of the
simulation alone (circuit construction and transpilation are timed
separately), so the headline number isolates the amplitude-array sweeps
that fusion is meant to reduce.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.workloads import Workload, default_workloads
from repro.circuit import Circuit
from repro.sampling import sample_counts
from repro.sim import StatevectorBackend
from repro.transpile import transpile

SCHEMA_VERSION = 1


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_workload(
    workload: Workload,
    backend: StatevectorBackend,
    shots: int,
    seed: int,
    repeats: int,
    max_fused_width: int,
) -> Dict[str, object]:
    circuit: Circuit = workload.build()

    start = time.perf_counter()
    fused = transpile(circuit, max_fused_width=max_fused_width)
    transpile_time = time.perf_counter() - start

    run_unfused = _best_time(lambda: backend.run(circuit), repeats)
    run_fused = _best_time(lambda: backend.run(fused), repeats)

    counts_match = sample_counts(circuit, shots, seed=seed) == sample_counts(
        fused, shots, seed=seed
    )

    return {
        "name": workload.name,
        "num_qubits": workload.num_qubits,
        "gates_unfused": len(circuit),
        "gates_fused": len(fused),
        "depth_unfused": circuit.depth(),
        "depth_fused": fused.depth(),
        "transpile_time_s": transpile_time,
        "run_time_unfused_s": run_unfused,
        "run_time_fused_s": run_fused,
        "speedup": run_unfused / run_fused if run_fused > 0 else float("inf"),
        "counts_match": bool(counts_match),
    }


def run_suite(
    workloads: Optional[Sequence[Workload]] = None,
    smoke: bool = False,
    shots: int = 1024,
    seed: int = 1234,
    repeats: int = 3,
    max_fused_width: int = 2,
) -> Dict[str, object]:
    """Run the benchmark suite and return the schema-1 report dict.

    Parameters
    ----------
    workloads:
        Explicit workload list; defaults to :func:`default_workloads`
        at full or ``smoke`` size.
    smoke:
        Small/fast configuration for CI gating (fewer qubits, one repeat
        unless ``repeats`` is overridden by the caller).
    shots, seed:
        Sampling configuration for the counts-equivalence check; the same
        seed is used for the unfused and fused run so the Counts must be
        identical.
    repeats:
        Wall-times are the best of this many runs.
    max_fused_width:
        Width cap handed to the default transpile pipeline.
    """
    if workloads is None:
        workloads = default_workloads(smoke=smoke)
    backend = StatevectorBackend()
    results: List[Dict[str, object]] = [
        _bench_workload(w, backend, shots, seed, repeats, max_fused_width)
        for w in workloads
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "smoke": bool(smoke),
            "shots": int(shots),
            "seed": int(seed),
            "repeats": int(repeats),
            "max_fused_width": int(max_fused_width),
        },
        "workloads": results,
    }
