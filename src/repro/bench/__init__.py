"""Benchmark harness: canonical workloads timed with and without fusion.

``run_suite`` executes each workload unfused and transpiled on its
backend (statevector or density-matrix, noisy families included), records
wall-times, gate counts and seeded counts/expectation-equivalence checks
through the unified ``repro.execute`` front door, and returns a
JSON-stable report (``schema_version`` 7).  On noisy (density-matrix)
rows the same fused circuit is also raced on the Pauli-transfer-matrix
backend, recording ``ptm_speedup_vs_density`` alongside counts- and
expectation-equivalence checks.  ``python -m repro.bench --json`` is the
CLI entry point; ``--smoke`` selects the small configuration CI runs on
every push, ``--sweep`` adds the batched parameter-sweep benchmark.
"""

from repro.bench.harness import SCHEMA_VERSION, run_suite
from repro.bench.workloads import (
    Workload,
    brickwork_depolarized,
    default_workloads,
    ghz,
    ghz_depolarizing,
    layered_damped,
    layered_rotations,
    parameterized_rotations,
    random_dense,
    sweep_bindings,
)

__all__ = [
    "SCHEMA_VERSION",
    "Workload",
    "brickwork_depolarized",
    "default_workloads",
    "ghz",
    "ghz_depolarizing",
    "layered_damped",
    "layered_rotations",
    "parameterized_rotations",
    "random_dense",
    "run_suite",
    "sweep_bindings",
]
