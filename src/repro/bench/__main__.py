"""CLI for the benchmark suite: ``python -m repro.bench [--json] [--smoke]``.

Prints a human-readable table by default, the schema-7 JSON report with
``--json``; ``--sweep`` adds the batched parameter-sweep benchmark run
through ``repro.execute``, ``--parallel`` adds the parallel execution
service legs (per-element sweep + sharded shots, serial vs.
``--workers`` processes), and ``--trajectory`` adds the Monte-Carlo
trajectory backend vs. exact density-matrix evolution on the noisy
workload families.  Exits non-zero if any workload's fused execution
fails the seeded counts/expectation-equivalence checks, if run() and
precompiled-plan execution diverge, if the sweep is not reproducible,
transpiles more than once, drifts between batched and per-element
execution, or runs *slower* batched than per-element, if any parallel
parity boolean fails, or if a trajectory estimate falls outside five
standard errors of the exact density expectation — CI treats all of
those as regressions.  Parallel *speedup* is only gated when the host
reports at least two CPUs (a 1-CPU runner cannot be expected to go
faster); the trajectory speedup column is reported but never gated.

The density-matrix rows additionally race the Pauli-transfer-matrix
backend on the same fused circuit.  PTM equivalence (counts and
expectations vs. density) and the fewer-plan-ops invariant are gated
unconditionally; the ``ptm_speedup_vs_density`` column is gated at
``>= 1.0`` — if fusing noise into gates cannot beat Kraus evolution,
that is a regression in the whole point of the backend.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.harness import run_suite
from repro.sim import available_backends
from repro.utils.exceptions import SimulationError


def _format_table(report: dict) -> str:
    header = (
        f"{'workload':<22} {'n':>3} {'backend':>15} {'gates':>11} {'depth':>9} "
        f"{'t_unfused':>10} {'t_fused':>10} {'speedup':>8} {'ptm':>8} {'counts':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in report["workloads"]:
        speedup = row["speedup"]
        speedup_cell = f"{speedup:>7.2f}x" if speedup is not None else f"{'n/a':>8}"
        ptm = row["ptm_speedup_vs_density"]
        ptm_cell = f"{ptm:>7.2f}x" if ptm is not None else f"{'-':>8}"
        lines.append(
            f"{row['name']:<22} {row['num_qubits']:>3} {row['backend']:>15} "
            f"{row['gates_unfused']:>4}->{row['gates_fused']:<5} "
            f"{row['depth_unfused']:>3}->{row['depth_fused']:<4} "
            f"{row['run_time_unfused_s']:>10.2g} {row['run_time_fused_s']:>10.2g} "
            f"{speedup_cell} {ptm_cell} {'ok' if row['counts_match'] else 'FAIL':>7}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the simulation backends with and without gate fusion.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the schema-7 JSON report on stdout"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small/fast CI configuration (fewer qubits, single repeat)",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="also benchmark a batched parameter sweep through repro.execute",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="also benchmark the parallel execution service "
        "(per-element sweep + sharded shots, serial vs. --workers processes)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the --parallel legs (default 2)",
    )
    parser.add_argument(
        "--trajectory",
        action="store_true",
        help="also benchmark the Monte-Carlo trajectory backend against "
        "exact density-matrix evolution on the noisy workloads",
    )
    parser.add_argument("--shots", type=int, default=1024, help="shots for the counts check")
    parser.add_argument("--seed", type=int, default=1234, help="sampling seed")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (default 3, 1 with --smoke)"
    )
    parser.add_argument(
        "--max-fused-width", type=int, default=2, help="fusion width cap (qubits)"
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        choices=sorted(available_backends()),
        help="default backend for workloads that do not pin one",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="also write the JSON report to this path"
    )
    args = parser.parse_args(argv)

    try:
        report = run_suite(
            smoke=args.smoke,
            shots=args.shots,
            seed=args.seed,
            repeats=args.repeats,
            max_fused_width=args.max_fused_width,
            backend=args.backend,
            sweep=args.sweep,
            parallel=args.parallel,
            workers=args.workers,
            trajectory=args.trajectory,
        )
    except SimulationError as exc:
        # E.g. --backend density_matrix at full statevector sizes: the
        # harness refuses O(4**n) blowups with a clear message.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        print(_format_table(report))
        sweep = report["sweep"]
        if sweep is not None:
            speedup = sweep["batched_speedup"]
            speedup_cell = f"{speedup:.2f}x" if speedup is not None else "n/a"
            print(
                f"sweep: {sweep['name']} x {sweep['points']} points, "
                f"batched {sweep['run_time_batched_s']:.2g}s vs per-element "
                f"{sweep['run_time_per_element_s']:.2g}s ({speedup_cell}, "
                f"{sweep['transpile_calls']} transpile call), reproducible: "
                f"{'ok' if sweep['reproducible'] else 'FAIL'}"
            )
        parallel = report["parallel"]
        if parallel is not None:
            for label, leg, parity_keys in (
                ("sweep", parallel["sweep"], ("results_match",)),
                (
                    "shards",
                    parallel["sharded_shots"],
                    ("counts_match", "unsharded_matches_shard1"),
                ),
            ):
                speedup = leg["parallel_speedup"]
                speedup_cell = f"{speedup:.2f}x" if speedup is not None else "n/a"
                parity_ok = all(leg[key] for key in parity_keys)
                print(
                    f"parallel/{label}: {leg['name']}, serial "
                    f"{leg['run_time_serial_s']:.2g}s vs "
                    f"{parallel['workers']} workers "
                    f"{leg['run_time_parallel_s']:.2g}s ({speedup_cell}), "
                    f"parity: {'ok' if parity_ok else 'FAIL'}"
                )
        trajectory = report["trajectory"]
        if trajectory is not None:
            for row in trajectory["workloads"]:
                speedup = row["trajectory_speedup"]
                speedup_cell = f"{speedup:.2f}x" if speedup is not None else "n/a"
                print(
                    f"trajectory: {row['name']}, density "
                    f"{row['run_time_density_s']:.2g}s vs "
                    f"{trajectory['trajectories']} trajectories "
                    f"{row['run_time_trajectory_s']:.2g}s ({speedup_cell}), "
                    f"<Z0> {row['expectation_trajectory']:.4f} vs exact "
                    f"{row['expectation_density']:.4f} "
                    f"(sigma {row['std_error']:.2g}), agreement: "
                    f"{'ok' if row['agreement'] else 'FAIL'}"
                )

    failed = False
    mismatched = [w["name"] for w in report["workloads"] if not w["counts_match"]]
    if mismatched:
        print(
            f"counts mismatch after fusion: {', '.join(mismatched)}", file=sys.stderr
        )
        failed = True
    drifted = [
        w["name"] for w in report["workloads"] if not w["expectations_match"]
    ]
    if drifted:
        print(
            f"expectation drift after fusion: {', '.join(drifted)}",
            file=sys.stderr,
        )
        failed = True
    diverged = [
        w["name"] for w in report["workloads"] if not w["eager_matches_plan"]
    ]
    if diverged:
        print(
            f"run() diverges from precompiled-plan execution: "
            f"{', '.join(diverged)}",
            file=sys.stderr,
        )
        failed = True
    # PTM gates run on every row that has PTM columns (density rows).
    # Equivalence and the fewer-ops invariant are correctness contracts;
    # the speedup floor is the backend's reason to exist.
    ptm_rows = [
        w for w in report["workloads"] if w["ptm_counts_match"] is not None
    ]
    ptm_mismatched = [
        w["name"]
        for w in ptm_rows
        if not (w["ptm_counts_match"] and w["ptm_expectations_match"])
    ]
    if ptm_mismatched:
        print(
            f"ptm backend diverges from density evolution: "
            f"{', '.join(ptm_mismatched)}",
            file=sys.stderr,
        )
        failed = True
    ptm_unfused = [w["name"] for w in ptm_rows if not w["ptm_fewer_ops"]]
    if ptm_unfused:
        print(
            f"ptm plan is not smaller than the density plan (fusion through "
            f"channels regressed): {', '.join(ptm_unfused)}",
            file=sys.stderr,
        )
        failed = True
    ptm_slow = [
        (w["name"], w["ptm_speedup_vs_density"])
        for w in ptm_rows
        if w["ptm_speedup_vs_density"] is not None
        and w["ptm_speedup_vs_density"] < 1.0
    ]
    if ptm_slow:
        detail = ", ".join(f"{name} ({value:.2f}x)" for name, value in ptm_slow)
        print(
            f"ptm backend slower than density evolution: {detail}",
            file=sys.stderr,
        )
        failed = True
    sweep = report["sweep"]
    if sweep is not None:
        if not sweep["reproducible"]:
            print("sweep results are not reproducible", file=sys.stderr)
            failed = True
        if sweep["transpile_calls"] != 1:
            print(
                f"sweep transpiled {sweep['transpile_calls']} times, "
                "expected exactly 1",
                file=sys.stderr,
            )
            failed = True
        if not sweep["expectations_match"]:
            print(
                "batched sweep expectations drift from per-element execution",
                file=sys.stderr,
            )
            failed = True
        speedup = sweep["batched_speedup"]
        if speedup is not None and speedup < 1.0:
            print(
                f"batched sweep is slower than per-element execution "
                f"({speedup:.2f}x)",
                file=sys.stderr,
            )
            failed = True
    parallel = report["parallel"]
    if parallel is not None:
        for flag, message in (
            (
                parallel["sweep"]["results_match"],
                "parallel sweep results diverge from serial execution",
            ),
            (
                parallel["sweep"]["workers1_matches_serial"],
                "max_workers=1 sweep diverges from the default serial path",
            ),
            (
                parallel["sharded_shots"]["counts_match"],
                "parallel sharded-shot counts diverge from serial sharding",
            ),
            (
                parallel["sharded_shots"]["unsharded_matches_shard1"],
                "shard_shots=1 diverges from the unsharded sampling path",
            ),
        ):
            if not flag:
                print(message, file=sys.stderr)
                failed = True
        # Speedup is host-dependent: only gate it where more than one
        # core exists, and leave headroom (0.9x) for scheduler noise at
        # smoke sizes — correctness gates above are unconditional.
        cpu_count = parallel["cpu_count"]
        if cpu_count is not None and cpu_count >= 2:
            for label, leg in (
                ("sweep", parallel["sweep"]),
                ("sharded shots", parallel["sharded_shots"]),
            ):
                speedup = leg["parallel_speedup"]
                if speedup is not None and speedup < 0.9:
                    print(
                        f"parallel {label} is slower than serial execution "
                        f"({speedup:.2f}x with {parallel['workers']} workers "
                        f"on {cpu_count} CPUs)",
                        file=sys.stderr,
                    )
                    failed = True
    trajectory = report["trajectory"]
    if trajectory is not None:
        disagreeing = [
            row["name"]
            for row in trajectory["workloads"]
            if not row["agreement"]
        ]
        if disagreeing:
            print(
                "trajectory expectations outside 5 sigma of exact density "
                f"evolution: {', '.join(disagreeing)}",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
