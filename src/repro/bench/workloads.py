"""Canonical benchmark circuits.

Three families spanning the fusion spectrum:

* ``ghz`` — entangling CX chain, almost nothing for fusion to merge;
  the floor case.
* ``layered_rotations`` — QFT-like layers of per-qubit Euler rotations
  (rz·ry·rz) separated by CX brickwork; the dense single-qubit runs are
  exactly what :class:`~repro.transpile.FuseAdjacentGates` collapses.
* ``random_dense`` — seeded random mix of one- and two-qubit gates; the
  "typical workload" middle ground.

Each family is exposed both as a plain circuit builder and, via
:func:`default_workloads`, as named :class:`Workload` entries with the
sizes the suite runs at (n = 8..16 full, smaller for ``--smoke``).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.circuit import Circuit
from repro.utils.rng import ensure_rng


class Workload:
    """A named, deterministic circuit factory for the bench suite."""

    __slots__ = ("name", "num_qubits", "_build")

    def __init__(self, name: str, num_qubits: int, build: Callable[[], Circuit]) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self._build = build

    def build(self) -> Circuit:
        return self._build()

    def __repr__(self) -> str:
        return f"Workload({self.name}, n={self.num_qubits})"


def ghz(num_qubits: int) -> Circuit:
    """The ``n``-qubit GHZ preparation: H then a CX chain."""
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def layered_rotations(num_qubits: int, layers: int = 4, seed: int = 7) -> Circuit:
    """QFT-like layered circuit: per-qubit rz·ry·rz runs + CX brickwork.

    Angles are drawn from a seeded generator so the same ``(n, layers,
    seed)`` always builds the identical circuit.
    """
    rng = ensure_rng(seed)
    circuit = Circuit(num_qubits, name=f"layered_rotations_{num_qubits}")
    for layer in range(layers):
        for q in range(num_qubits):
            a, b, c = rng.uniform(0.0, 6.283185307179586, size=3)
            circuit.rz(a, q).ry(b, q).rz(c, q)
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    return circuit


def random_dense(num_qubits: int, num_gates: int = 120, seed: int = 11) -> Circuit:
    """Seeded random circuit mixing one- and two-qubit standard gates."""
    rng = ensure_rng(seed)
    one_qubit = ("h", "x", "s", "t")
    rotations = ("rx", "ry", "rz")
    two_qubit = ("cx", "cz", "swap")
    circuit = Circuit(num_qubits, name=f"random_dense_{num_qubits}")
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.35:
            name = one_qubit[int(rng.integers(len(one_qubit)))]
            getattr(circuit, name)(int(rng.integers(num_qubits)))
        elif kind < 0.7:
            name = rotations[int(rng.integers(len(rotations)))]
            getattr(circuit, name)(
                float(rng.uniform(0.0, 6.283185307179586)),
                int(rng.integers(num_qubits)),
            )
        else:
            name = two_qubit[int(rng.integers(len(two_qubit)))]
            a = int(rng.integers(num_qubits))
            b = int(rng.integers(num_qubits - 1))
            if b >= a:
                b += 1
            getattr(circuit, name)(a, b)
    return circuit


def default_workloads(smoke: bool = False) -> List[Workload]:
    """The suite's workload list: 3 families x sizes (small for smoke)."""
    sizes: Tuple[int, ...] = (4, 6) if smoke else (8, 12, 16)
    layers = 2 if smoke else 4
    gates_per_qubit = 6 if smoke else 12
    workloads: List[Workload] = []
    for n in sizes:
        workloads.append(Workload("ghz", n, lambda n=n: ghz(n)))
        workloads.append(
            Workload(
                "layered_rotations",
                n,
                lambda n=n: layered_rotations(n, layers=layers),
            )
        )
        workloads.append(
            Workload(
                "random_dense",
                n,
                lambda n=n: random_dense(n, num_gates=gates_per_qubit * n),
            )
        )
    return workloads
