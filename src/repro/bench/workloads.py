"""Canonical benchmark circuits.

Six families spanning the fusion and noise spectrum:

* ``ghz`` — entangling CX chain, almost nothing for fusion to merge;
  the floor case.
* ``layered_rotations`` — QFT-like layers of per-qubit Euler rotations
  (rz·ry·rz) separated by CX brickwork; the dense single-qubit runs are
  exactly what :class:`~repro.transpile.FuseAdjacentGates` collapses.
* ``random_dense`` — seeded random mix of one- and two-qubit gates; the
  "typical workload" middle ground.
* ``ghz_depolarizing`` — GHZ with a depolarizing channel after every
  gate; exercises the density-matrix backend's channel hot path.
* ``layered_damped`` — layered rotations with amplitude damping after
  each brickwork layer; mixed fusion + noise (channels are barriers, so
  the rotation runs between them still fuse).
* ``brickwork_depolarized`` — deep rotation brickwork with a
  depolarizing channel after *every* gate; the channel density makes
  circuit-level gate fusion nearly useless (every run is a barrier) and
  is exactly where the PTM backend's fusion *through* channels shines.

Noisy families embed :class:`~repro.circuit.Channel` instructions in the
circuit (rather than using a :class:`~repro.noise.NoiseModel`) so the
noise placement is part of the IR and survives transpilation exactly —
the fused and unfused runs stay distribution-identical.

Each family is exposed both as a plain circuit builder and, via
:func:`default_workloads`, as named :class:`Workload` entries with the
sizes the suite runs at (n = 8..16 full statevector, n = 4..8 for the
O(4**n)-memory density-matrix families, smaller for ``--smoke``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.circuit import Circuit, Parameter
from repro.utils.rng import ensure_rng


class Workload:
    """A named, deterministic circuit factory for the bench suite.

    ``backend`` pins the workload to a registered backend name (``None``
    defers to the suite default); ``noise`` is a human-readable label of
    the noise baked into the built circuit (``None`` for noiseless).
    """

    __slots__ = ("name", "num_qubits", "_build", "backend", "noise")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        build: Callable[[], Circuit],
        backend: Optional[str] = None,
        noise: Optional[str] = None,
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self._build = build
        self.backend = backend
        self.noise = noise

    def build(self) -> Circuit:
        return self._build()

    def __repr__(self) -> str:
        extra = f", backend={self.backend}" if self.backend else ""
        extra += f", noise={self.noise}" if self.noise else ""
        return f"Workload({self.name}, n={self.num_qubits}{extra})"


def ghz(num_qubits: int) -> Circuit:
    """The ``n``-qubit GHZ preparation: H then a CX chain."""
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def layered_rotations(num_qubits: int, layers: int = 4, seed: int = 7) -> Circuit:
    """QFT-like layered circuit: per-qubit rz·ry·rz runs + CX brickwork.

    Angles are drawn from a seeded generator so the same ``(n, layers,
    seed)`` always builds the identical circuit.
    """
    rng = ensure_rng(seed)
    circuit = Circuit(num_qubits, name=f"layered_rotations_{num_qubits}")
    for layer in range(layers):
        for q in range(num_qubits):
            a, b, c = rng.uniform(0.0, 6.283185307179586, size=3)
            circuit.rz(a, q).ry(b, q).rz(c, q)
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    return circuit


def random_dense(num_qubits: int, num_gates: int = 120, seed: int = 11) -> Circuit:
    """Seeded random circuit mixing one- and two-qubit standard gates."""
    rng = ensure_rng(seed)
    one_qubit = ("h", "x", "s", "t")
    rotations = ("rx", "ry", "rz")
    two_qubit = ("cx", "cz", "swap")
    circuit = Circuit(num_qubits, name=f"random_dense_{num_qubits}")
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.35:
            name = one_qubit[int(rng.integers(len(one_qubit)))]
            getattr(circuit, name)(int(rng.integers(num_qubits)))
        elif kind < 0.7:
            name = rotations[int(rng.integers(len(rotations)))]
            getattr(circuit, name)(
                float(rng.uniform(0.0, 6.283185307179586)),
                int(rng.integers(num_qubits)),
            )
        else:
            name = two_qubit[int(rng.integers(len(two_qubit)))]
            a = int(rng.integers(num_qubits))
            b = int(rng.integers(num_qubits - 1))
            if b >= a:
                b += 1
            getattr(circuit, name)(a, b)
    return circuit


def ghz_depolarizing(num_qubits: int, p: float = 0.02) -> Circuit:
    """GHZ preparation with a depolarizing channel after every gate."""
    from repro.noise import depolarizing

    channel = depolarizing(p)
    circuit = Circuit(num_qubits, name=f"ghz_depolarizing_{num_qubits}")
    circuit.h(0).channel(channel, (0,))
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
        circuit.channel(channel, (q,)).channel(channel, (q + 1,))
    return circuit


def layered_damped(
    num_qubits: int, layers: int = 4, gamma: float = 0.03, seed: int = 7
) -> Circuit:
    """Layered rotations with amplitude damping on every qubit per layer.

    The damping channels sit *between* brickwork layers, so the rz·ry·rz
    runs inside each layer remain fusable while the noise placement is
    pinned in the IR.
    """
    from repro.noise import amplitude_damping

    channel = amplitude_damping(gamma)
    rng = ensure_rng(seed)
    circuit = Circuit(num_qubits, name=f"layered_damped_{num_qubits}")
    for layer in range(layers):
        for q in range(num_qubits):
            a, b, c = rng.uniform(0.0, 6.283185307179586, size=3)
            circuit.rz(a, q).ry(b, q).rz(c, q)
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
        for q in range(num_qubits):
            circuit.channel(channel, (q,))
    return circuit


def brickwork_depolarized(
    num_qubits: int, layers: int = 4, p: float = 0.01, seed: int = 13
) -> Circuit:
    """Deep rotation brickwork with depolarizing noise after *every* gate.

    Per layer: an rz·ry pair (each followed by a one-qubit depolarizing
    channel) on every qubit, then CX brickwork with a channel on both
    ends of each CX.  With a channel behind every gate there are no
    channel-free gate runs left for circuit-level fusion to merge —
    density-mode plans carry one Kraus op per channel, while PTM-mode
    lowering folds whole gate+channel bricks into single real ops.
    """
    from repro.noise import depolarizing

    channel = depolarizing(p)
    rng = ensure_rng(seed)
    circuit = Circuit(num_qubits, name=f"brickwork_depolarized_{num_qubits}")
    for layer in range(layers):
        for q in range(num_qubits):
            a, b = rng.uniform(0.0, 6.283185307179586, size=2)
            circuit.rz(a, q).channel(channel, (q,))
            circuit.ry(b, q).channel(channel, (q,))
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
            circuit.channel(channel, (q,)).channel(channel, (q + 1,))
    return circuit


def parameterized_rotations(
    num_qubits: int, layers: int = 2
) -> Tuple[Circuit, List[Parameter]]:
    """A parametric rotation template for batched sweeps.

    Per layer: an ``ry(theta_l_q)`` on every qubit (each angle its own
    :class:`~repro.circuit.Parameter`) followed by CX brickwork.  Returns
    the unbound circuit together with its parameters in binding order —
    the bench ``--sweep`` mode and the execute() tests stamp this
    template out over many bindings through a single transpile.
    """
    parameters: List[Parameter] = []
    circuit = Circuit(num_qubits, name=f"parameterized_rotations_{num_qubits}")
    for layer in range(layers):
        for q in range(num_qubits):
            theta = Parameter(f"theta_{layer}_{q}")
            parameters.append(theta)
            circuit.ry(theta, q)
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    return circuit, parameters


def sweep_bindings(
    parameters: List[Parameter], points: int, seed: int = 17
) -> List[dict]:
    """``points`` seeded random bindings over ``parameters``."""
    rng = ensure_rng(seed)
    return [
        {
            p: float(angle)
            for p, angle in zip(
                parameters,
                rng.uniform(0.0, 6.283185307179586, size=len(parameters)),
            )
        }
        for _ in range(points)
    ]


def default_workloads(smoke: bool = False) -> List[Workload]:
    """The suite's workload list: 5 families x sizes (small for smoke).

    Density-matrix families run at smaller widths than the statevector
    ones — mixed-state memory is O(4**n), so n = 10 density costs what
    n = 20 statevector would.
    """
    sizes: Tuple[int, ...] = (4, 6) if smoke else (8, 12, 16)
    noisy_sizes: Tuple[int, ...] = (4,) if smoke else (6, 8)
    layers = 2 if smoke else 4
    # The channel-after-every-gate family is where fusion-through-noise
    # pays off; run it deeper than the other noisy families so the win
    # is measured where it matters.
    brickwork_layers = 3 if smoke else 6
    gates_per_qubit = 6 if smoke else 12
    # One constant per noisy family, threaded through both the builder
    # call and the report label so they can never disagree.
    depolarizing_p = 0.02
    damping_gamma = 0.03
    brickwork_p = 0.01
    workloads: List[Workload] = []
    for n in sizes:
        workloads.append(Workload("ghz", n, lambda n=n: ghz(n)))
        workloads.append(
            Workload(
                "layered_rotations",
                n,
                lambda n=n: layered_rotations(n, layers=layers),
            )
        )
        workloads.append(
            Workload(
                "random_dense",
                n,
                lambda n=n: random_dense(n, num_gates=gates_per_qubit * n),
            )
        )
    for n in noisy_sizes:
        workloads.append(
            Workload(
                "ghz_depolarizing",
                n,
                lambda n=n: ghz_depolarizing(n, p=depolarizing_p),
                backend="density_matrix",
                noise=f"depolarizing(p={depolarizing_p:g})",
            )
        )
        workloads.append(
            Workload(
                "layered_damped",
                n,
                lambda n=n: layered_damped(n, layers=layers, gamma=damping_gamma),
                backend="density_matrix",
                noise=f"amplitude_damping(gamma={damping_gamma:g})",
            )
        )
        workloads.append(
            Workload(
                "brickwork_depolarized",
                n,
                lambda n=n: brickwork_depolarized(
                    n, layers=brickwork_layers, p=brickwork_p
                ),
                backend="density_matrix",
                noise=f"depolarizing(p={brickwork_p:g}) per gate",
            )
        )
    return workloads
