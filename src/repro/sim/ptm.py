"""Pauli-transfer-matrix simulation: the :class:`PauliVector` state and backend.

The density operator of an ``n``-qubit register is expanded in the
orthonormal Pauli basis ``P_a = sigma_a / sqrt(2)`` per qubit and stored
as the *real* ``(4,) * n`` tensor ``r[a_1, ..., a_n] = Tr(P_a rho)``
(axis ``q`` is qubit ``q``'s Pauli index, digits ``0=I, 1=X, 2=Y, 3=Z``).
In this picture every gate *and* every Kraus channel is one real
``(4**k, 4**k)`` Pauli-transfer matrix contracted onto the target axes
with :func:`numpy.tensordot` — the same O(4**n * 4**k) small-tensor
discipline as the other engines, never a dense ``4**n x 4**n``
superoperator.  Because noise now composes with gates by plain matrix
multiplication, the ``"ptm"`` lowering fuses whole gate+channel runs into
single ops (see :mod:`repro.plan.plan`), which is where the speedup over
the density backend comes from: fewer ops, each a single real
contraction instead of a complex two-sided Kraus sum.

Readout is equally direct: only the I/Z components survive the
computational-basis diagonal, so Born probabilities are one tiny
``(4, 2)`` contraction per qubit and a Pauli-string expectation is a
*single component lookup* scaled by ``sqrt(2**n)``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.circuit.ptm import (
    density_to_pauli_vector,
    pauli_vector_probabilities,
    pauli_vector_to_density,
    pauli_vector_trace,
    zero_pauli_vector,
)
from repro.sim.density import DensityMatrix
from repro.sim.registry import BaseBackend, register_backend
from repro.sim.statevector import Statevector, _index, norm_atol
from repro.utils.exceptions import SimulationError

_ATOL = 1e-10


class PauliVector:
    """A mixed state as its real Pauli-basis component vector.

    Component ``r[a_1, ..., a_n] = Tr(P_a rho)`` in the normalised Pauli
    basis; a trace-one state has ``r[0, ..., 0] = 1 / sqrt(2**n)``.  The
    data tensor is float64 and read-only, like every other state type.
    """

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: np.ndarray, validate: bool = True) -> None:
        data = np.asarray(data)
        if np.iscomplexobj(data):
            raise SimulationError(
                "Pauli vectors are real by construction; got complex data "
                f"(dtype {data.dtype})"
            )
        data = data.astype(np.float64)
        size = data.size
        num_qubits = max((int(size).bit_length() - 1) // 2, 0)
        if size < 4 or 4**num_qubits != size:
            raise SimulationError(
                f"Pauli vector size {size} is not a power of four >= 4"
            )
        if data.ndim != 1 and data.shape != (4,) * num_qubits:
            raise SimulationError(
                f"Pauli vector shape {data.shape} is neither flat nor "
                f"{(4,) * num_qubits}"
            )
        data = data.reshape((4,) * num_qubits)
        data.setflags(write=False)
        if validate:
            atol = norm_atol(np.complex128)
            trace = pauli_vector_trace(data)
            if abs(trace - 1.0) > atol:
                raise SimulationError(
                    f"Pauli vector has trace {trace:.6g}, expected 1"
                )
        self._data = data
        self._num_qubits = num_qubits

    def __setstate__(self, state: tuple) -> None:
        # Default __slots__ pickling restores attributes but loses the
        # data buffer's read-only flag (numpy arrays unpickle writeable);
        # re-freeze so unpickled Pauli vectors stay immutable.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "PauliVector":
        """The pure projector ``|0...0><0...0|``."""
        if num_qubits < 1:
            raise SimulationError(f"need >= 1 qubit, got {num_qubits}")
        return cls(zero_pauli_vector(num_qubits), validate=False)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "PauliVector":
        """The Pauli expansion of the pure projector ``|psi><psi|``."""
        return cls.from_density_matrix(DensityMatrix.from_statevector(state))

    @classmethod
    def from_density_matrix(cls, state: DensityMatrix) -> "PauliVector":
        """The Pauli expansion of an existing :class:`DensityMatrix`."""
        return cls(density_to_pauli_vector(state.tensor()), validate=False)

    @classmethod
    def from_bitstring(cls, bitstring: str) -> "PauliVector":
        """The computational-basis projector ``|bitstring><bitstring|``."""
        _index(bitstring)  # validates characters
        sqrt2 = float(np.sqrt(2.0))
        out: np.ndarray = np.ones((), dtype=np.float64)
        for bit in bitstring:
            single = (
                np.array(
                    [1.0, 0.0, 0.0, 1.0 if bit == "0" else -1.0],
                    dtype=np.float64,
                )
                / sqrt2
            )
            out = np.multiply.outer(out, single)
        return cls(out, validate=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        """The ``(4,) * n`` float64 component tensor (a copy)."""
        return self._data.copy()

    def tensor(self) -> np.ndarray:
        """The ``(4,) * n`` tensor view (read-only); axis ``q`` is qubit
        ``q``'s Pauli index."""
        return self._data

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Born probabilities over all ``2**n`` basis states.

        Read straight off the I/Z components — one ``(4, 2)`` contraction
        per qubit, no detour through the dense density matrix.  Tiny
        negative entries from floating-point drift are clipped so
        downstream multinomial sampling never sees a negative probability.
        """
        probs = pauli_vector_probabilities(self._data).reshape(-1)
        return np.clip(probs.astype(np.float64), 0.0, None)

    def trace(self) -> float:
        """``tr(rho)`` (1 for a valid state, up to floating point)."""
        return pauli_vector_trace(self._data)

    def purity(self) -> float:
        """``tr(rho**2)``: the squared norm of the component vector
        (Parseval in an orthonormal operator basis)."""
        return float(np.sum(self._data**2))

    def expectation_z(self, qubit: int) -> float:
        """``<Z_qubit>`` — a single component lookup in this basis."""
        if qubit < 0 or qubit >= self._num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self._num_qubits}-qubit state"
            )
        index = [0] * self._num_qubits
        index[qubit] = 3
        return float(
            self._data[tuple(index)] * (2.0 ** (self._num_qubits / 2.0))
        )

    def to_density_matrix(self) -> DensityMatrix:
        """Resum the basis expansion into a :class:`DensityMatrix`."""
        dim = 1 << self._num_qubits
        rho = pauli_vector_to_density(self._data).reshape(dim, dim)
        return DensityMatrix(rho, validate=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliVector):
            return NotImplemented
        # rtol=0: component magnitudes are bounded by 1, so the comparison
        # tolerance is absolute, as everywhere else in the library.
        return self._num_qubits == other._num_qubits and bool(
            np.allclose(self._data, other._data, rtol=0.0, atol=_ATOL)
        )

    def __repr__(self) -> str:
        return (
            f"PauliVector({self._num_qubits} qubits, "
            f"purity {self.purity():.4g})"
        )


class PTMBackend(BaseBackend):
    """Executes :class:`~repro.circuit.Circuit` IR on a real Pauli vector.

    ``run()`` and the evolution loop come from
    :class:`~repro.sim.registry.BaseBackend` (the exact same method
    objects as every other backend): circuits lower to a ``"ptm"``-mode
    :class:`~repro.plan.ExecutionPlan` whose ops contract fused real
    ``(4**k, 4**k)`` Pauli-transfer matrices onto the ``(4,) * n``
    component tensor.  Channels and declarative gate noise are first-class
    citizens — and, unlike in density mode, they *fuse with the gates
    around them* at lowering time, so deep noisy circuits execute fewer,
    cheaper (real-arithmetic) ops.  Dynamic circuits
    (measure/reset/if_bit) are rejected at compile time: a Pauli vector
    carries no classical register — use ``density_matrix`` or
    ``trajectory`` for those.

    Parameters
    ----------
    dtype:
        Component dtype; only ``float64`` is supported (the PTMs are
        real by construction).
    """

    name = "ptm"
    plan_mode = "ptm"

    def __init__(self, dtype: np.dtype = np.float64) -> None:
        dtype = np.dtype(dtype)
        if dtype != np.dtype(np.float64):
            raise SimulationError(f"unsupported Pauli-vector dtype {dtype}")
        self._dtype = dtype

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def _initial_tensor(
        self,
        num_qubits: int,
        initial_state: Union[None, str, Statevector, DensityMatrix, "PauliVector"],
    ) -> np.ndarray:
        """The starting ``(4,) * n`` Pauli component tensor."""
        if initial_state is None:
            return zero_pauli_vector(num_qubits)
        if isinstance(initial_state, str):
            if len(initial_state) != num_qubits:
                raise SimulationError(
                    f"initial bitstring {initial_state!r} has "
                    f"{len(initial_state)} bits, circuit has {num_qubits} qubits"
                )
            return PauliVector.from_bitstring(initial_state).data
        if isinstance(initial_state, (Statevector, DensityMatrix, PauliVector)):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit has {num_qubits}"
                )
            if isinstance(initial_state, Statevector):
                return PauliVector.from_statevector(initial_state).data
            if isinstance(initial_state, DensityMatrix):
                return PauliVector.from_density_matrix(initial_state).data
            return initial_state.data
        raise SimulationError(
            f"cannot initialise from {type(initial_state).__name__}"
        )

    def _finalize(self, tensor: np.ndarray, num_qubits: int) -> PauliVector:
        return PauliVector(tensor, validate=False)


register_backend("ptm", PTMBackend)
