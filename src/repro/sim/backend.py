"""Vectorised statevector execution of circuit IR.

The state lives as a ``(2,) * n`` tensor (axis ``q`` = qubit ``q``) and a
``k``-qubit gate is contracted onto its target axes with
:func:`numpy.tensordot` — an O(2**n * 2**k) operation — instead of being
embedded into a dense ``2**n x 2**n`` operator, which would cost O(4**n)
memory and time.  :func:`apply_gate_tensor` is that contraction for a
single ad-hoc application (observables and state queries use it);
circuit evolution itself goes through a compiled
:class:`~repro.plan.ExecutionPlan`, whose ops precompute the same
reshape/axis bookkeeping once per circuit instead of once per call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.noise import NoiseModel

import numpy as np

from repro.sim.registry import BaseBackend, register_backend
from repro.sim.statevector import Statevector
from repro.utils.exceptions import SimulationError


def apply_gate_tensor(
    state: np.ndarray, matrix: np.ndarray, targets: Sequence[int]
) -> np.ndarray:
    """Contract a ``2**k x 2**k`` gate onto ``targets`` of a ``(2,) * n`` state.

    ``targets[0]`` is the gate's most significant index bit, matching the
    bitstring convention.  Returns a new ``(2,) * n`` tensor.
    """
    k = len(targets)
    # Match the state's dtype so a complex64 simulation is not silently
    # promoted back to complex128 by the contraction.
    gate_tensor = np.asarray(matrix, dtype=state.dtype).reshape((2,) * (2 * k))
    # Contract the gate's input axes (the trailing k) with the target axes of
    # the state; tensordot leaves the gate's output axes first.
    out = np.tensordot(gate_tensor, state, axes=(tuple(range(k, 2 * k)), tuple(targets)))
    return np.moveaxis(out, tuple(range(k)), tuple(targets))


class StatevectorBackend(BaseBackend):
    """Executes :class:`~repro.circuit.Circuit` IR on a dense statevector.

    ``run()`` and the evolution loop come from
    :class:`~repro.sim.registry.BaseBackend` — every circuit lowers to a
    ``"statevector"``-mode :class:`~repro.plan.ExecutionPlan` (channel
    instructions are rejected at compile time) and executes through the
    shared ``execute_plan`` loop.  This class supplies only the
    pure-state representation hooks and the noise policy: a
    :class:`~repro.noise.NoiseModel` with gate-noise rules is rejected
    (a pure state cannot represent Kraus mixing — use the
    ``density_matrix`` backend), while a readout-error-only model is
    accepted and applied by the sampling layer, not here.

    Parameters
    ----------
    dtype:
        Amplitude dtype, ``complex128`` (default) or ``complex64`` for
        halved memory on wide registers.
    """

    name = "statevector"
    plan_mode = "statevector"

    def __init__(self, dtype: np.dtype = np.complex128) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise SimulationError(f"unsupported amplitude dtype {dtype}")
        self._dtype = dtype

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def _validate_noise(self, noise_model: Optional["NoiseModel"]) -> None:
        if noise_model is not None and getattr(noise_model, "has_gate_noise", False):
            raise SimulationError(
                "the statevector backend cannot apply gate noise; "
                "use backend='density_matrix'"
            )

    def _initial_tensor(
        self, num_qubits: int, initial_state: Union[None, str, Statevector]
    ) -> np.ndarray:
        """The starting ``(2,) * n`` amplitude tensor.

        ``initial_state`` may be ``None`` (``|0...0>``), a bitstring, or
        an existing :class:`Statevector` of matching width.
        """
        if initial_state is None:
            state = np.zeros((2,) * num_qubits, dtype=self._dtype)
            state[(0,) * num_qubits] = 1.0
            return state
        if isinstance(initial_state, str):
            if len(initial_state) != num_qubits:
                raise SimulationError(
                    f"initial bitstring {initial_state!r} has "
                    f"{len(initial_state)} bits, circuit has {num_qubits} qubits"
                )
            return (
                Statevector.from_bitstring(initial_state)
                .tensor()
                .astype(self._dtype)
            )
        if isinstance(initial_state, Statevector):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit has {num_qubits}"
                )
            return initial_state.tensor().astype(self._dtype)
        raise SimulationError(
            f"cannot initialise from {type(initial_state).__name__}"
        )

    def _finalize(self, tensor: np.ndarray, num_qubits: int) -> Statevector:
        return Statevector(tensor.reshape(-1), validate=False)


register_backend("statevector", StatevectorBackend)
