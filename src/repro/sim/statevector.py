"""The :class:`Statevector` result type and its measurement-free queries."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.utils.bitstrings import bitstring_to_index, index_to_bitstring
from repro.utils.exceptions import SimulationError

_ATOL = 1e-10


def norm_atol(dtype: np.dtype) -> float:
    """Normalisation tolerance scaled to ``dtype`` precision.

    ``sqrt(eps)`` of the dtype's underlying float: ~1.5e-8 for
    ``complex128`` and ~3.5e-4 for ``complex64``.  A fixed tolerance tuned
    for double precision spuriously rejects valid single-precision states
    after deep circuits, where per-gate rounding accumulates at float32
    scale.
    """
    return float(np.sqrt(np.finfo(np.dtype(dtype)).eps))


def _index(bitstring: str) -> int:
    """bitstring_to_index, re-raised under the sim layer's error contract."""
    try:
        return bitstring_to_index(bitstring)
    except ValueError as exc:
        raise SimulationError(str(exc)) from None


class Statevector:
    """A normalised pure state of an ``n``-qubit register.

    The amplitude of bitstring ``b`` lives at flat index
    ``bitstring_to_index(b)``; equivalently :meth:`tensor` returns the
    ``(2,) * n`` view whose axis ``q`` indexes qubit ``q``.
    """

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: np.ndarray, validate: bool = True) -> None:
        data = np.asarray(data)
        # Preserve single-precision amplitudes (half-memory mode); promote
        # everything else to complex128.
        dtype = np.complex64 if data.dtype == np.complex64 else np.complex128
        data = data.astype(dtype).reshape(-1)
        # astype above always copies, so freezing keeps the state immutable
        # without aliasing the caller's buffer; views (tensor()) inherit it.
        data.setflags(write=False)
        size = data.size
        num_qubits = int(size).bit_length() - 1
        if size < 2 or (1 << num_qubits) != size:
            raise SimulationError(
                f"statevector length {size} is not a power of two >= 2"
            )
        if validate:
            norm = np.linalg.norm(data)
            if abs(norm - 1.0) > norm_atol(data.dtype):
                raise SimulationError(
                    f"statevector is not normalised (norm {norm:.6g})"
                )
        self._data = data
        self._num_qubits = num_qubits

    def __setstate__(self, state: tuple) -> None:
        # Default __slots__ pickling restores attributes but loses the
        # amplitude buffer's read-only flag (numpy arrays unpickle
        # writeable); re-freeze so unpickled states stay immutable.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state ``|0...0>``."""
        if num_qubits < 1:
            raise SimulationError(f"need >= 1 qubit, got {num_qubits}")
        data = np.zeros(1 << num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data, validate=False)

    @classmethod
    def from_bitstring(cls, bitstring: str) -> "Statevector":
        """The computational basis state ``|bitstring>``."""
        data = np.zeros(1 << len(bitstring), dtype=complex)
        data[_index(bitstring)] = 1.0
        return cls(data, validate=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        """The flat length-``2**n`` amplitude array (a copy)."""
        return self._data.copy()

    def tensor(self) -> np.ndarray:
        """The ``(2,) * n`` tensor view (read-only); axis ``q`` indexes qubit ``q``."""
        return self._data.reshape((2,) * self._num_qubits)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def amplitude(self, bitstring: str) -> complex:
        if len(bitstring) != self._num_qubits:
            raise SimulationError(
                f"bitstring {bitstring!r} has {len(bitstring)} bits, "
                f"state has {self._num_qubits} qubits"
            )
        return complex(self._data[_index(bitstring)])

    def probabilities(self) -> np.ndarray:
        """Born probabilities over all ``2**n`` basis states, in index order."""
        return np.abs(self._data) ** 2

    def probability(self, bitstring: str) -> float:
        return abs(self.amplitude(bitstring)) ** 2

    def probabilities_dict(self, threshold: float = _ATOL) -> Dict[str, float]:
        """Bitstring -> probability for outcomes above ``threshold``."""
        probs = self.probabilities()
        (indices,) = np.nonzero(probs > threshold)
        return {
            index_to_bitstring(int(i), self._num_qubits): float(probs[i])
            for i in indices
        }

    def inner(self, other: "Statevector") -> complex:
        """The overlap ``<self|other>``."""
        if other.num_qubits != self._num_qubits:
            raise SimulationError(
                f"cannot overlap {self._num_qubits}- and "
                f"{other.num_qubits}-qubit states"
            )
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|**2``."""
        return abs(self.inner(other)) ** 2

    def expectation(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """``<psi| M |psi>`` for operator ``matrix`` acting on ``qubits``.

        The operator is applied by tensor contraction on the reshaped state —
        it is never embedded into a ``2**n x 2**n`` matrix.
        """
        from repro.sim.backend import apply_gate_tensor

        qubits = tuple(int(q) for q in qubits)
        if any(q < 0 or q >= self._num_qubits for q in qubits):
            raise SimulationError(
                f"qubits {qubits} out of range for {self._num_qubits}-qubit state"
            )
        if len(set(qubits)) != len(qubits):
            raise SimulationError(f"duplicate qubit indices: {qubits}")
        matrix = np.asarray(matrix, dtype=complex)
        dim = 1 << len(qubits)
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"operator shape {matrix.shape} does not match qubits {qubits}"
            )
        applied = apply_gate_tensor(self.tensor(), matrix, qubits)
        return complex(np.vdot(self._data, applied.reshape(-1)))

    def expectation_z(self, qubit: int) -> float:
        """``<Z_qubit>`` computed directly from probabilities."""
        if qubit < 0 or qubit >= self._num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self._num_qubits}-qubit state"
            )
        probs = self.probabilities().reshape((2,) * self._num_qubits)
        marginal = np.moveaxis(probs, qubit, 0).reshape(2, -1).sum(axis=1)
        return float(marginal[0] - marginal[1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statevector):
            return NotImplemented
        # rtol=0 as for DensityMatrix: amplitudes are bounded by 1, so the
        # advertised _ATOL must be absolute, not dominated by rtol's 1e-5.
        return self._num_qubits == other._num_qubits and np.allclose(
            self._data, other._data, rtol=0.0, atol=_ATOL
        )

    def __repr__(self) -> str:
        return f"Statevector({self._num_qubits} qubits)"
