"""Backend contract and the name -> backend registry.

Every simulator exposes the same :class:`Backend` surface —
``run(circuit, initial_state=None, options=None)`` taking a single
:class:`~repro.execution.RunOptions` object and returning a state with
``num_qubits`` and ``probabilities()`` — so the execution layer, sampler
and bench harness dispatch by *name* through :func:`get_backend` instead
of hard-coding a backend class.  Backends register themselves at import
time (``repro.sim`` imports both shipped backends), and user backends
join via :func:`register_backend`.

:class:`BaseBackend` implements that ``run()`` once — option resolution,
legacy-keyword shimming, unbound-parameter rejection, compilation to an
:class:`~repro.plan.ExecutionPlan`, and the shared plan-execution loop
(:meth:`BaseBackend.execute_plan`) — so concrete backends only provide
their state-representation hooks: :attr:`~BaseBackend.plan_mode`,
``_initial_tensor``, ``_finalize`` (and optionally a noise validation
hook).  The shipped backends share the *identical* ``run`` and
``execute_plan`` method objects; each contract is stated exactly once.

A third-party backend does not have to subclass :class:`BaseBackend`:
anything satisfying the :class:`Backend` protocol (``name`` + ``run``)
registers and serves ``run``/``sample_counts``/``execute`` — including
parameter sweeps, which fall back to one transpile plus ``bind()+run()``
per point.  Plan compilation, the plan cache, and batched sweeps are
reserved for plan-capable backends (those declaring ``plan_mode``).
"""

from __future__ import annotations

import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.circuit import Circuit
from repro.execution.options import resolve_sanitize_mode
from repro.utils.exceptions import SimulationError

if TYPE_CHECKING:
    from repro.execution.options import RunOptions
    from repro.noise import NoiseModel
    from repro.plan.plan import ExecutionPlan

DEFAULT_BACKEND = "statevector"

_LEGACY_RUN_KWARGS_MESSAGE = (
    "the optimize=/passes=/noise_model= keywords of run() are deprecated; "
    "pass a RunOptions (options=RunOptions(optimize=..., passes=..., "
    "noise_model=...)) or use repro.execute()"
)


@runtime_checkable
class Backend(Protocol):
    """Structural contract every simulation backend satisfies."""

    name: str

    def run(
        self,
        circuit: Circuit,
        initial_state: Any = None,
        options: Optional["RunOptions"] = None,
    ) -> Any:  # pragma: no cover - protocol signature only
        ...


class BaseBackend:
    """Shared ``run()`` / ``execute_plan()`` driver for concrete backends.

    There is exactly one evolution code path: ``run()`` compiles the
    circuit into an :class:`~repro.plan.ExecutionPlan` (through the
    process-wide plan cache) and hands it to :meth:`execute_plan`, whose
    tight loop — one precomputed op after another — is shared by every
    backend.  Subclasses set :attr:`name` and :attr:`plan_mode` and
    implement only the state-representation hooks:
    ``_initial_tensor(num_qubits, initial_state)`` (allocate/convert the
    starting tensor) and ``_finalize(tensor, num_qubits)`` (wrap the
    evolved tensor in the backend's state type).  The ``_validate_noise``
    hook lets a backend reject noise it cannot represent before any state
    is allocated.
    """

    name = "base"
    # "statevector" or "density": selects the repro.plan lowering mode.
    # Concrete subclasses MUST declare it (compile_plan rejects backends
    # without one, loudly, instead of guessing a state representation).
    plan_mode = None

    def run(
        self,
        circuit: Circuit,
        initial_state: Any = None,
        options: Optional["RunOptions"] = None,
        *,
        optimize: bool = False,
        passes: Any = None,
        noise_model: Optional["NoiseModel"] = None,
    ) -> Any:
        """Simulate ``circuit`` from ``initial_state`` under ``options``.

        ``options`` is a :class:`~repro.execution.RunOptions`; the
        ``optimize`` / ``passes`` / ``noise_model`` keywords are the
        legacy pre-options surface — **deprecated**, accepted only when
        ``options`` is not given (the two spellings must not be mixed),
        and emitting a :class:`DeprecationWarning` when used.
        """
        from repro.execution.options import RunOptions

        if not isinstance(circuit, Circuit):
            raise SimulationError(
                f"expected a Circuit, got {type(circuit).__name__}"
            )
        if options is None:
            if optimize or passes is not None or noise_model is not None:
                warnings.warn(
                    _LEGACY_RUN_KWARGS_MESSAGE, DeprecationWarning, stacklevel=2
                )
            options = RunOptions(
                optimize=optimize, passes=passes, noise_model=noise_model
            )
        else:
            if optimize or passes is not None or noise_model is not None:
                raise SimulationError(
                    "pass either options= or the legacy optimize/passes/"
                    "noise_model keywords, not both"
                )
            if not isinstance(options, RunOptions):
                raise SimulationError(
                    f"options must be RunOptions, got {type(options).__name__}"
                )
        self._validate_noise(options.noise_model)
        unbound = circuit.parameters()
        if unbound:
            raise SimulationError(
                f"circuit has unbound parameter(s) "
                f"{[p.name for p in unbound]}; bind them (Circuit.bind) or "
                "run a parameter sweep through repro.execute"
            )
        # Imported lazily: the plan layer consumes the same circuit IR
        # this backend executes, and a module-level import either way
        # would create a cycle (compile_plan resolves backends by name).
        from repro.plan import compile_plan

        plan = compile_plan(circuit, self, options)
        rng = None
        if plan.has_dynamic_ops and plan.mode != "density":
            # A direct run() of a dynamic circuit on a pure-state backend
            # is a single stochastic trajectory; options.seed makes it
            # reproducible.  Shot-resolved sampling lives in execute().
            rng = np.random.default_rng(options.seed)
        return self.execute_plan(
            plan, initial_state, rng=rng, sanitize=options.sanitize
        )

    def execute_plan(
        self,
        plan: "ExecutionPlan",
        initial_state: Any = None,
        *,
        rng: Optional[np.random.Generator] = None,
        classical: Optional[Dict[str, Any]] = None,
        sanitize: Optional[str] = None,
    ) -> Any:
        """Run a compiled, fully bound plan — the one evolution loop.

        ``plan`` must have been compiled for this backend's
        :attr:`plan_mode`.  Dtype mismatches are tolerated and the
        *plan's* dtype wins: op tensors were cast at compile time, and
        the initial tensor is cast to match below, so executing a
        ``complex64`` plan on a ``complex128``-configured backend (or
        vice versa) stays in the plan's precision end to end.

        Plans with dynamic ops leave the plain op-after-op fast path:

        * pure modes thread ``rng`` (fresh unseeded generator when
          ``None``) and a classical-bit register through
          :func:`~repro.plan.execute_dynamic_pure` — one stochastic
          trajectory; the final clbit string lands in
          ``classical["bits"]`` when a dict is passed.
        * density mode runs the deterministic branch bookkeeping of
          :func:`~repro.plan.execute_dynamic_density`; the exact clbit
          distribution lands in ``classical["distribution"]``.

        ``sanitize`` enables the runtime numerical watchdog
        (:class:`repro.analysis.sanitize.Sanitizer`): ``None`` defers to
        the ``REPRO_SANITIZE`` environment variable, ``"off"`` (the
        resolved default) adds zero cost — the analysis layer is only
        imported once a non-off mode is requested.  Static plans are
        checked after every op; dynamic plans (whose intermediate states
        live inside the branch/trajectory bookkeeping) get final-state
        checks.  Findings land in ``classical["sanitizer"]`` when a
        dict is passed.
        """
        from repro.plan import (
            ExecutionPlan,
            execute_dynamic_density,
            execute_dynamic_pure,
        )

        if not isinstance(plan, ExecutionPlan):
            raise SimulationError(
                f"expected an ExecutionPlan, got {type(plan).__name__}"
            )
        if plan.mode != self.plan_mode:
            raise SimulationError(
                f"plan was lowered for mode {plan.mode!r}, but backend "
                f"{self.name!r} executes {self.plan_mode!r} plans"
            )
        if plan.parameters:
            raise SimulationError(
                f"plan has unbound parameter(s) "
                f"{[p.name for p in plan.parameters]}; bind the plan "
                "(ExecutionPlan.bind) before executing it"
            )
        sanitize_mode = resolve_sanitize_mode(sanitize)
        sanitizer = None
        if sanitize_mode != "off":
            # Lazy by design: the resolved "off" default never imports
            # the analysis layer (the validate="off" pattern).
            from repro.analysis.sanitize import Sanitizer

            sanitizer = Sanitizer(plan, sanitize_mode)
        tensor = self._initial_tensor(plan.num_qubits, initial_state)
        if tensor.dtype != plan.dtype:
            tensor = tensor.astype(plan.dtype)
        if not plan.has_dynamic_ops:
            if sanitizer is None:
                for op in plan.ops:
                    tensor = op.apply(tensor)
            else:
                for site, op in enumerate(plan.ops):
                    tensor = op.apply(tensor)
                    sanitizer.after_op(tensor, site, op)
            if sanitizer is not None:
                findings = sanitizer.finish(tensor)
                if classical is not None:
                    classical["sanitizer"] = findings
            return self._finalize(tensor, plan.num_qubits)
        if plan.mode == "density":
            tensor, distribution = execute_dynamic_density(plan, tensor)
            if classical is not None:
                classical["distribution"] = distribution
        else:
            if rng is None:
                rng = np.random.default_rng()
            tensor, bits = execute_dynamic_pure(plan, tensor, rng)
            if classical is not None:
                classical["bits"] = "".join(map(str, bits))
        if sanitizer is not None:
            findings = sanitizer.finish(tensor)
            if classical is not None:
                classical["sanitizer"] = findings
        return self._finalize(tensor, plan.num_qubits)

    def _validate_noise(self, noise_model: Optional["NoiseModel"]) -> None:
        """Reject noise this backend cannot represent (default: accept)."""

    def _initial_tensor(self, num_qubits: int, initial_state: Any) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract hook

    def _finalize(self, tensor: np.ndarray, num_qubits: int) -> Any:
        raise NotImplementedError  # pragma: no cover - abstract hook


BackendLike = Union[None, str, Backend]

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register ``factory`` as the constructor for backend ``name``.

    The factory is called lazily, once, on the first :func:`get_backend`
    lookup; the instance is then shared (backends are stateless between
    runs).  Re-registering an existing name raises — the registry is a
    process-wide namespace, as for gates.
    """
    key = str(name).lower()
    if key in _FACTORIES:
        raise SimulationError(f"backend {name!r} is already registered")
    if not callable(factory):
        raise SimulationError(
            f"backend factory for {name!r} must be callable, got {factory!r}"
        )
    _FACTORIES[key] = factory


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(backend: BackendLike = None) -> Backend:
    """Resolve ``backend`` to a live backend instance.

    ``None`` means the default (``"statevector"``); a string is looked up
    in the registry (case-insensitively); an object that already quacks
    like a backend (has ``run`` and ``name``) is passed through so
    callers can hand in a specially configured instance (e.g. a
    ``complex64`` backend).
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        key = backend.lower()
        if key not in _FACTORIES:
            raise SimulationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            )
        if key not in _INSTANCES:
            _INSTANCES[key] = _FACTORIES[key]()
        return _INSTANCES[key]
    if callable(getattr(backend, "run", None)) and hasattr(backend, "name"):
        return backend
    raise SimulationError(
        f"cannot resolve a backend from {type(backend).__name__}; "
        "pass a name, a backend instance, or None"
    )


def run(
    circuit: Circuit,
    initial_state: Any = None,
    optimize: bool = False,
    passes: Any = None,
    backend: BackendLike = None,
    noise_model: Optional["NoiseModel"] = None,
    options: Optional["RunOptions"] = None,
) -> Any:
    """Simulate ``circuit`` on ``backend`` (default ``"statevector"``).

    A thin shim over the unified backend surface, kept for the original
    kwarg-style call sites: the keywords are folded into a
    :class:`~repro.execution.RunOptions` (or ``options=`` is forwarded
    as-is) and dispatched to ``Backend.run``.  The ``optimize`` /
    ``passes`` / ``noise_model`` keywords are **deprecated** (a
    :class:`DeprecationWarning` fires); ``backend=`` remains supported.
    Returns whatever state type the backend produces
    (:class:`~repro.sim.Statevector` or :class:`~repro.sim.DensityMatrix`).
    New code wanting counts or expectation values should prefer
    :func:`repro.execute`.
    """
    from repro.execution.options import RunOptions

    if options is None:
        if optimize or passes is not None or noise_model is not None:
            warnings.warn(
                _LEGACY_RUN_KWARGS_MESSAGE, DeprecationWarning, stacklevel=2
            )
        options = RunOptions(
            optimize=optimize, passes=passes, noise_model=noise_model
        )
    elif optimize or passes is not None or noise_model is not None:
        raise SimulationError(
            "pass either options= or the legacy optimize/passes/"
            "noise_model keywords, not both"
        )
    elif backend is not None and options.backend is not None:
        # Same rule as the other duplicated knobs: never silently pick one.
        raise SimulationError(
            "backend is specified both as a keyword and in options; "
            "pass it in one place only"
        )
    resolved = get_backend(backend if backend is not None else options.backend)
    return resolved.run(circuit, initial_state, options)
