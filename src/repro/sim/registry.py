"""Backend contract and the name -> backend registry.

Every simulator exposes the same :class:`Backend` surface —
``run(circuit, initial_state=None, options=None)`` taking a single
:class:`~repro.execution.RunOptions` object and returning a state with
``num_qubits`` and ``probabilities()`` — so the execution layer, sampler
and bench harness dispatch by *name* through :func:`get_backend` instead
of hard-coding a backend class.  Backends register themselves at import
time (``repro.sim`` imports both shipped backends), and user backends
join via :func:`register_backend`.

:class:`BaseBackend` implements that ``run()`` once — option resolution,
legacy-keyword shimming, transpilation, unbound-parameter rejection — so
concrete backends only provide ``_execute`` (and optionally a noise
validation hook).  The shipped backends share the *identical* ``run``
method object; the parameter list is stated exactly once.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol, Union, runtime_checkable

from repro.circuit import Circuit
from repro.utils.exceptions import SimulationError

DEFAULT_BACKEND = "statevector"


@runtime_checkable
class Backend(Protocol):
    """Structural contract every simulation backend satisfies."""

    name: str

    def run(
        self,
        circuit: Circuit,
        initial_state=None,
        options=None,
    ):  # pragma: no cover - protocol signature only
        ...


class BaseBackend:
    """Shared ``run()`` driver for concrete backends.

    Subclasses set :attr:`name` and implement
    ``_execute(circuit, initial_state, options)`` on an
    already-validated, already-transpiled, fully-bound circuit; the
    ``_validate_noise`` hook lets a backend reject noise it cannot
    represent before any state is allocated.
    """

    name = "base"

    def run(
        self,
        circuit: Circuit,
        initial_state=None,
        options=None,
        *,
        optimize: bool = False,
        passes=None,
        noise_model=None,
    ):
        """Simulate ``circuit`` from ``initial_state`` under ``options``.

        ``options`` is a :class:`~repro.execution.RunOptions`; the
        ``optimize`` / ``passes`` / ``noise_model`` keywords are the
        legacy pre-options surface, accepted only when ``options`` is
        not given (the two spellings must not be mixed).
        """
        from repro.execution.options import RunOptions

        if not isinstance(circuit, Circuit):
            raise SimulationError(
                f"expected a Circuit, got {type(circuit).__name__}"
            )
        if options is None:
            options = RunOptions(
                optimize=optimize, passes=passes, noise_model=noise_model
            )
        else:
            if optimize or passes is not None or noise_model is not None:
                raise SimulationError(
                    "pass either options= or the legacy optimize/passes/"
                    "noise_model keywords, not both"
                )
            if not isinstance(options, RunOptions):
                raise SimulationError(
                    f"options must be RunOptions, got {type(options).__name__}"
                )
        self._validate_noise(options.noise_model)
        if options.optimize or options.passes is not None:
            # Imported lazily: the transpiler consumes the same circuit IR
            # this backend executes, and a module-level import either way
            # would create a cycle once transpile utilities touch sim.
            from repro.transpile import transpile

            circuit = transpile(circuit, passes=options.passes)
        unbound = circuit.parameters()
        if unbound:
            raise SimulationError(
                f"circuit has unbound parameter(s) "
                f"{[p.name for p in unbound]}; bind them (Circuit.bind) or "
                "run a parameter sweep through repro.execute"
            )
        return self._execute(circuit, initial_state, options)

    def _validate_noise(self, noise_model) -> None:
        """Reject noise this backend cannot represent (default: accept)."""

    def _execute(self, circuit: Circuit, initial_state, options):
        raise NotImplementedError  # pragma: no cover - abstract hook


BackendLike = Union[None, str, Backend]

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register ``factory`` as the constructor for backend ``name``.

    The factory is called lazily, once, on the first :func:`get_backend`
    lookup; the instance is then shared (backends are stateless between
    runs).  Re-registering an existing name raises — the registry is a
    process-wide namespace, as for gates.
    """
    key = str(name).lower()
    if key in _FACTORIES:
        raise SimulationError(f"backend {name!r} is already registered")
    if not callable(factory):
        raise SimulationError(
            f"backend factory for {name!r} must be callable, got {factory!r}"
        )
    _FACTORIES[key] = factory


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(backend: BackendLike = None) -> Backend:
    """Resolve ``backend`` to a live backend instance.

    ``None`` means the default (``"statevector"``); a string is looked up
    in the registry (case-insensitively); an object that already quacks
    like a backend (has ``run`` and ``name``) is passed through so
    callers can hand in a specially configured instance (e.g. a
    ``complex64`` backend).
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        key = backend.lower()
        if key not in _FACTORIES:
            raise SimulationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            )
        if key not in _INSTANCES:
            _INSTANCES[key] = _FACTORIES[key]()
        return _INSTANCES[key]
    if callable(getattr(backend, "run", None)) and hasattr(backend, "name"):
        return backend
    raise SimulationError(
        f"cannot resolve a backend from {type(backend).__name__}; "
        "pass a name, a backend instance, or None"
    )


def run(
    circuit: Circuit,
    initial_state=None,
    optimize: bool = False,
    passes=None,
    backend: BackendLike = None,
    noise_model=None,
    options=None,
):
    """Simulate ``circuit`` on ``backend`` (default ``"statevector"``).

    A thin shim over the unified backend surface, kept for the original
    kwarg-style call sites: the keywords are folded into a
    :class:`~repro.execution.RunOptions` (or ``options=`` is forwarded
    as-is) and dispatched to ``Backend.run``.  Returns whatever state
    type the backend produces (:class:`~repro.sim.Statevector` or
    :class:`~repro.sim.DensityMatrix`).  New code wanting counts or
    expectation values should prefer :func:`repro.execute`.
    """
    from repro.execution.options import RunOptions

    if options is None:
        options = RunOptions(
            optimize=optimize, passes=passes, noise_model=noise_model
        )
    elif optimize or passes is not None or noise_model is not None:
        raise SimulationError(
            "pass either options= or the legacy optimize/passes/"
            "noise_model keywords, not both"
        )
    elif backend is not None and options.backend is not None:
        # Same rule as the other duplicated knobs: never silently pick one.
        raise SimulationError(
            "backend is specified both as a keyword and in options; "
            "pass it in one place only"
        )
    resolved = get_backend(backend if backend is not None else options.backend)
    return resolved.run(circuit, initial_state, options)
