"""Backend protocol and the name -> backend registry.

Every simulator exposes the same :class:`Backend` surface —
``run(circuit, initial_state=None, optimize=..., passes=..., noise_model=...)``
returning a state object with ``num_qubits`` and ``probabilities()`` — so
the sampler and bench harness dispatch by *name* through
:func:`get_backend` instead of hard-coding a backend class.  Backends
register themselves at import time (``repro.sim`` imports both shipped
backends), and user backends join via :func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol, Union, runtime_checkable

from repro.circuit import Circuit
from repro.utils.exceptions import SimulationError

DEFAULT_BACKEND = "statevector"


@runtime_checkable
class Backend(Protocol):
    """Structural contract every simulation backend satisfies."""

    name: str

    def run(
        self,
        circuit: Circuit,
        initial_state=None,
        optimize: bool = False,
        passes=None,
        noise_model=None,
    ):  # pragma: no cover - protocol signature only
        ...


BackendLike = Union[None, str, Backend]

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register ``factory`` as the constructor for backend ``name``.

    The factory is called lazily, once, on the first :func:`get_backend`
    lookup; the instance is then shared (backends are stateless between
    runs).  Re-registering an existing name raises — the registry is a
    process-wide namespace, as for gates.
    """
    key = str(name).lower()
    if key in _FACTORIES:
        raise SimulationError(f"backend {name!r} is already registered")
    if not callable(factory):
        raise SimulationError(
            f"backend factory for {name!r} must be callable, got {factory!r}"
        )
    _FACTORIES[key] = factory


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(backend: BackendLike = None) -> Backend:
    """Resolve ``backend`` to a live backend instance.

    ``None`` means the default (``"statevector"``); a string is looked up
    in the registry; an object that already quacks like a backend (has
    ``run`` and ``name``) is passed through so callers can hand in a
    specially configured instance (e.g. a ``complex64`` backend).
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        key = backend.lower()
        if key not in _FACTORIES:
            raise SimulationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            )
        if key not in _INSTANCES:
            _INSTANCES[key] = _FACTORIES[key]()
        return _INSTANCES[key]
    if callable(getattr(backend, "run", None)) and hasattr(backend, "name"):
        return backend
    raise SimulationError(
        f"cannot resolve a backend from {type(backend).__name__}; "
        "pass a name, a backend instance, or None"
    )


def run(
    circuit: Circuit,
    initial_state=None,
    optimize: bool = False,
    passes=None,
    backend: BackendLike = None,
    noise_model=None,
):
    """Simulate ``circuit`` on ``backend`` (default ``"statevector"``).

    The unified entry point: ``backend`` selects the simulator by name or
    instance, ``noise_model`` attaches declarative noise (density-matrix
    backend only).  Returns whatever state type the backend produces
    (:class:`~repro.sim.Statevector` or
    :class:`~repro.sim.DensityMatrix`).
    """
    return get_backend(backend).run(
        circuit,
        initial_state,
        optimize=optimize,
        passes=passes,
        noise_model=noise_model,
    )
