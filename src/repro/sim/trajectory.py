"""Monte-Carlo trajectory backend: noisy circuits at pure-state cost.

The density-matrix backend evolves the exact O(4**n) mixed state; a
trajectory *samples* the mixture instead.  Circuits lower in
``"trajectory"`` mode — pure-state ops, with every channel (and every
matched noise-model rule) becoming a
:class:`~repro.plan.TrajectoryKrausOp` that draws ONE Kraus operator per
application from the seeded RNG stream.  Each run of the plan is one
O(2**n)-memory trajectory; averaging many trajectories converges on the
density-matrix answer with statistical error ~1/sqrt(T).

Through :func:`repro.execute` the ``shots`` option doubles as the
trajectory count (one trajectory = one shot = one sampled outcome), and
trajectories shard across workers with per-trajectory derived seeds, so
results are bitwise-identical for any ``max_workers``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.backend import StatevectorBackend
from repro.sim.registry import register_backend

if TYPE_CHECKING:
    from repro.noise import NoiseModel


class TrajectoryBackend(StatevectorBackend):
    """Statevector evolution with stochastically unraveled Kraus noise.

    Inherits every pure-state representation hook from
    :class:`~repro.sim.StatevectorBackend`; only the lowering mode and
    the noise policy differ.  Gate-noise models are *accepted*: their
    channels lower to Kraus-sampling ops rather than Kraus sums, so a
    noisy ``run()`` returns a single random pure-state trajectory
    (seed it via ``RunOptions(seed=...)``), and ``execute()`` averages
    ``shots`` trajectories.
    """

    name = "trajectory"
    plan_mode = "trajectory"

    def _validate_noise(self, noise_model: Optional["NoiseModel"]) -> None:
        # Unlike the parent, gate noise is exactly what this backend is
        # for; any NoiseModel (or None) is acceptable.
        return None


register_backend("trajectory", TrajectoryBackend)
