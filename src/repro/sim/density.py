"""Mixed-state simulation: the :class:`DensityMatrix` type and its backend.

The density operator of an ``n``-qubit register lives as a ``(2,) * 2n``
tensor — the first ``n`` axes index rows (kets), the last ``n`` columns
(bras), both in the library's qubit-axis convention.  A gate ``U`` on
targets ``t`` evolves ``rho -> U rho U†`` as *two* tensordot contractions
(``U`` on the row axes ``t``, ``conj(U)`` on the column axes ``n + t``),
each O(4**n * 2**k); a Kraus channel is the sum of such conjugations over
its operators.  Nothing ever materialises a dense ``4**n x 4**n``
superoperator — memory stays O(4**n), the square of the statevector cost
and the price of admission for open-system dynamics.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from repro.sim.backend import apply_gate_tensor
from repro.sim.registry import BaseBackend, register_backend
from repro.sim.statevector import Statevector, _index, norm_atol
from repro.utils.bitstrings import index_to_bitstring
from repro.utils.exceptions import SimulationError

_ATOL = 1e-10


class DensityMatrix:
    """A trace-one Hermitian density operator of an ``n``-qubit register.

    Matrix element ``rho[i, j]`` couples basis states ``i`` (ket) and
    ``j`` (bra) in the flat bitstring-index convention; :meth:`tensor`
    returns the ``(2,) * 2n`` view whose axis ``q`` (rows) / ``n + q``
    (columns) indexes qubit ``q``.
    """

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: np.ndarray, validate: bool = True) -> None:
        data = np.asarray(data)
        dtype = np.complex64 if data.dtype == np.complex64 else np.complex128
        data = data.astype(dtype)
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise SimulationError(
                f"density matrix must be square, got shape {data.shape}"
            )
        size = data.shape[0]
        num_qubits = int(size).bit_length() - 1
        if size < 2 or (1 << num_qubits) != size:
            raise SimulationError(
                f"density matrix dimension {size} is not a power of two >= 2"
            )
        data.setflags(write=False)
        if validate:
            atol = norm_atol(data.dtype)
            trace = complex(np.trace(data))
            if abs(trace - 1.0) > atol:
                raise SimulationError(
                    f"density matrix has trace {trace:.6g}, expected 1"
                )
            if not np.allclose(data, data.conj().T, rtol=0.0, atol=atol):
                raise SimulationError("density matrix is not Hermitian")
        self._data = data
        self._num_qubits = num_qubits

    def __setstate__(self, state: tuple) -> None:
        # Default __slots__ pickling restores attributes but loses the
        # data buffer's read-only flag (numpy arrays unpickle writeable);
        # re-freeze so unpickled density matrices stay immutable.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """The pure projector ``|0...0><0...0|``."""
        if num_qubits < 1:
            raise SimulationError(f"need >= 1 qubit, got {num_qubits}")
        data = np.zeros((1 << num_qubits,) * 2, dtype=complex)
        data[0, 0] = 1.0
        return cls(data, validate=False)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """The pure projector ``|psi><psi|`` of ``state``."""
        amplitudes = state.data
        return cls(np.outer(amplitudes, amplitudes.conj()), validate=False)

    @classmethod
    def from_bitstring(cls, bitstring: str) -> "DensityMatrix":
        """The computational-basis projector ``|bitstring><bitstring|``."""
        index = _index(bitstring)
        data = np.zeros((1 << len(bitstring),) * 2, dtype=complex)
        data[index, index] = 1.0
        return cls(data, validate=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        """The flat ``2**n x 2**n`` density matrix (a copy)."""
        return self._data.copy()

    def tensor(self) -> np.ndarray:
        """The ``(2,) * 2n`` tensor view (read-only); axis ``q`` indexes the
        row bit of qubit ``q``, axis ``n + q`` its column bit."""
        return self._data.reshape((2,) * (2 * self._num_qubits))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Born probabilities over all ``2**n`` basis states (the diagonal).

        Tiny negative diagonal entries from floating-point drift are
        clipped to zero so downstream multinomial sampling never sees a
        negative probability.
        """
        return np.clip(np.diagonal(self._data).real.astype(np.float64), 0.0, None)

    def probability(self, bitstring: str) -> float:
        if len(bitstring) != self._num_qubits:
            raise SimulationError(
                f"bitstring {bitstring!r} has {len(bitstring)} bits, "
                f"state has {self._num_qubits} qubits"
            )
        index = _index(bitstring)
        return float(max(self._data[index, index].real, 0.0))

    def probabilities_dict(self, threshold: float = _ATOL) -> Dict[str, float]:
        """Bitstring -> probability for outcomes above ``threshold``."""
        probs = self.probabilities()
        (indices,) = np.nonzero(probs > threshold)
        return {
            index_to_bitstring(int(i), self._num_qubits): float(probs[i])
            for i in indices
        }

    def trace(self) -> float:
        """``tr(rho)`` (1 for a valid state, up to floating point)."""
        return float(np.trace(self._data).real)

    def purity(self) -> float:
        """``tr(rho**2)``: 1 for pure states, ``1/2**n`` when maximally mixed."""
        return float(np.sum(np.abs(self._data) ** 2))

    def expectation(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """``tr(rho M)`` for operator ``matrix`` acting on ``qubits``."""
        qubits = tuple(int(q) for q in qubits)
        if any(q < 0 or q >= self._num_qubits for q in qubits):
            raise SimulationError(
                f"qubits {qubits} out of range for {self._num_qubits}-qubit state"
            )
        if len(set(qubits)) != len(qubits):
            raise SimulationError(f"duplicate qubit indices: {qubits}")
        matrix = np.asarray(matrix, dtype=complex)
        dim = 1 << len(qubits)
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"operator shape {matrix.shape} does not match qubits {qubits}"
            )
        # tr(rho M) contracts M onto the *row* axes then traces; applying
        # it via the shared gate contraction keeps the no-dense-operator
        # guarantee.
        applied = apply_gate_tensor(self.tensor(), matrix, qubits)
        applied = applied.reshape(1 << self._num_qubits, 1 << self._num_qubits)
        return complex(np.trace(applied))

    def expectation_z(self, qubit: int) -> float:
        """``<Z_qubit>`` computed directly from the diagonal."""
        if qubit < 0 or qubit >= self._num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self._num_qubits}-qubit state"
            )
        probs = self.probabilities().reshape((2,) * self._num_qubits)
        marginal = np.moveaxis(probs, qubit, 0).reshape(2, -1).sum(axis=1)
        return float(marginal[0] - marginal[1])

    def fidelity(self, other: Union[Statevector, "DensityMatrix"]) -> float:
        """State fidelity with a pure or mixed ``other``.

        Against a :class:`Statevector` this is ``<psi| rho |psi>``;
        against another density matrix, the Uhlmann fidelity
        ``tr(sqrt(sqrt(rho) sigma sqrt(rho)))**2`` via eigendecomposition.
        """
        if isinstance(other, Statevector):
            if other.num_qubits != self._num_qubits:
                raise SimulationError(
                    f"cannot compare {self._num_qubits}- and "
                    f"{other.num_qubits}-qubit states"
                )
            psi = other.data
            return float(np.real(psi.conj() @ self._data @ psi))
        if isinstance(other, DensityMatrix):
            if other.num_qubits != self._num_qubits:
                raise SimulationError(
                    f"cannot compare {self._num_qubits}- and "
                    f"{other.num_qubits}-qubit states"
                )
            values, vectors = np.linalg.eigh(self._data)
            sqrt_rho = (vectors * np.sqrt(np.clip(values, 0.0, None))) @ vectors.conj().T
            inner = sqrt_rho @ other._data @ sqrt_rho
            eigenvalues = np.linalg.eigvalsh(inner)
            return float(np.sum(np.sqrt(np.clip(eigenvalues, 0.0, None))) ** 2)
        raise SimulationError(
            f"cannot compute fidelity against {type(other).__name__}"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DensityMatrix):
            return NotImplemented
        # rtol=0: the comparison tolerance is absolute (matrix entries are
        # bounded by 1), as everywhere else in the library.
        return self._num_qubits == other._num_qubits and np.allclose(
            self._data, other._data, rtol=0.0, atol=_ATOL
        )

    def __repr__(self) -> str:
        return f"DensityMatrix({self._num_qubits} qubits, purity {self.purity():.4g})"


def apply_matrix_to_density(
    rho: np.ndarray, matrix: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """``K rho K†`` on a ``(2,) * 2n`` density tensor, by two contractions."""
    rho = apply_gate_tensor(rho, matrix, targets)
    column_axes = tuple(num_qubits + t for t in targets)
    return apply_gate_tensor(rho, np.conj(matrix), column_axes)


def apply_channel_to_density(
    rho: np.ndarray,
    kraus: Sequence[np.ndarray],
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """``sum_i K_i rho K_i†`` on a ``(2,) * 2n`` density tensor."""
    total = None
    for operator in kraus:
        term = apply_matrix_to_density(rho, operator, targets, num_qubits)
        total = term if total is None else total + term
    return total


class DensityMatrixBackend(BaseBackend):
    """Executes :class:`~repro.circuit.Circuit` IR on a dense density matrix.

    ``run()`` and the evolution loop come from
    :class:`~repro.sim.registry.BaseBackend` (the exact same method
    objects as every other backend): circuits lower to a
    ``"density"``-mode :class:`~repro.plan.ExecutionPlan` whose ops
    conjugate the ``(2,) * 2n`` tensor (``U rho U†`` as two
    contractions, channels as Kraus sums) with
    :class:`~repro.noise.NoiseModel` rules matched per instruction at
    compile time.  It handles everything the statevector backend
    cannot: circuits containing :class:`~repro.circuit.Channel`
    instructions and declarative noise, at O(4**n) memory.  Noiseless
    circuits produce the pure projector of the statevector result, so
    the two backends agree exactly on Born probabilities.

    Parameters
    ----------
    dtype:
        Element dtype, ``complex128`` (default) or ``complex64`` for
        halved memory on wide registers.
    """

    name = "density_matrix"
    plan_mode = "density"

    def __init__(self, dtype: np.dtype = np.complex128) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise SimulationError(f"unsupported density-matrix dtype {dtype}")
        self._dtype = dtype

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def _initial_tensor(
        self,
        num_qubits: int,
        initial_state: Union[None, str, Statevector, DensityMatrix],
    ) -> np.ndarray:
        """The starting ``(2,) * 2n`` density tensor."""
        shape = (2,) * (2 * num_qubits)
        if initial_state is None:
            rho = np.zeros(shape, dtype=self._dtype)
            rho[(0,) * (2 * num_qubits)] = 1.0
            return rho
        if isinstance(initial_state, str):
            if len(initial_state) != num_qubits:
                raise SimulationError(
                    f"initial bitstring {initial_state!r} has "
                    f"{len(initial_state)} bits, circuit has {num_qubits} qubits"
                )
            return (
                DensityMatrix.from_bitstring(initial_state)
                .data.astype(self._dtype)
                .reshape(shape)
            )
        if isinstance(initial_state, Statevector):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit has {num_qubits}"
                )
            return (
                DensityMatrix.from_statevector(initial_state)
                .data.astype(self._dtype)
                .reshape(shape)
            )
        if isinstance(initial_state, DensityMatrix):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit has {num_qubits}"
                )
            return initial_state.data.astype(self._dtype).reshape(shape)
        raise SimulationError(
            f"cannot initialise from {type(initial_state).__name__}"
        )

    def _finalize(self, tensor: np.ndarray, num_qubits: int) -> DensityMatrix:
        dim = 1 << num_qubits
        return DensityMatrix(tensor.reshape(dim, dim), validate=False)


register_backend("density_matrix", DensityMatrixBackend)
