"""Simulation backends behind a unified registry.

Four shipped backends, selected by name through :func:`get_backend` (or
the ``backend=`` argument of :func:`run` and the sampling layer):

* ``"statevector"`` — pure states as ``(2,) * n`` tensors; gates applied
  by ``numpy.tensordot`` contraction, never ``2**n x 2**n`` operators.
* ``"density_matrix"`` — mixed states as ``(2,) * 2n`` tensors; gates as
  ``U rho U†``, channels as Kraus sums, O(4**n) memory — never a dense
  ``4**n x 4**n`` superoperator.
* ``"trajectory"`` — Monte-Carlo wavefunction unraveling: pure states
  with one Kraus operator *sampled* per channel application, so noisy
  circuits stay at O(2**n) per trajectory and ``shots`` trajectories are
  averaged.
* ``"ptm"`` — mixed states as real ``(4,) * n`` Pauli-basis vectors;
  gates *and* channels are real Pauli-transfer matrices that fuse with
  each other at lowering time, making it the fast exact engine for noisy
  circuits (no dynamic ops).

User backends implementing the :class:`Backend` protocol join via
:func:`register_backend`.
"""

from repro.sim.statevector import Statevector, norm_atol
from repro.sim.registry import (
    Backend,
    BaseBackend,
    available_backends,
    get_backend,
    register_backend,
    run,
)
from repro.sim.backend import StatevectorBackend, apply_gate_tensor
from repro.sim.density import (
    DensityMatrix,
    DensityMatrixBackend,
    apply_channel_to_density,
    apply_matrix_to_density,
)
from repro.sim.ptm import PauliVector, PTMBackend
from repro.sim.trajectory import TrajectoryBackend

__all__ = [
    "Backend",
    "BaseBackend",
    "DensityMatrix",
    "DensityMatrixBackend",
    "PTMBackend",
    "PauliVector",
    "Statevector",
    "StatevectorBackend",
    "TrajectoryBackend",
    "apply_channel_to_density",
    "apply_gate_tensor",
    "apply_matrix_to_density",
    "available_backends",
    "get_backend",
    "norm_atol",
    "register_backend",
    "run",
]
