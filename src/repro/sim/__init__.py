"""Vectorised statevector simulation backend.

Gates are applied by tensor contraction on the ``(2,) * n`` reshaped
statevector (axis ``q`` = qubit ``q``, per ``repro.utils.bitstrings``) —
never by building ``2**n x 2**n`` operators.
"""

from repro.sim.statevector import Statevector
from repro.sim.backend import StatevectorBackend, apply_gate_tensor, run

__all__ = ["Statevector", "StatevectorBackend", "apply_gate_tensor", "run"]
