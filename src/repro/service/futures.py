"""Thread-safe job state for the async execution service.

A :class:`JobState` is the synchronisation half of an async
:class:`~repro.execution.Job`: the dispatcher thread drives the status
machine (``created -> queued -> running -> done | error``) while any
number of caller threads block in :meth:`wait`.  It lives in the service
layer so the execution layer keeps zero threading machinery — a plain
synchronous ``Job`` never allocates one.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

#: Legal status transitions; guards against a late ``mark_queued`` racing
#: a dispatcher that already started the job.
_ORDER = {"created": 0, "queued": 1, "running": 2, "done": 3, "error": 3}


class JobState:
    """Status + outcome of one async job, safe to poll from any thread."""

    __slots__ = ("_lock", "_finished", "_status", "_result", "_error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._status = "created"
        self._result: Any = None
        self._error: Optional[BaseException] = None

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    def _advance(self, status: str) -> None:
        with self._lock:
            if _ORDER[status] > _ORDER[self._status]:
                self._status = status

    def mark_queued(self) -> None:
        self._advance("queued")

    def mark_running(self) -> None:
        self._advance("running")

    def mark_done(self, result: Any) -> None:
        with self._lock:
            self._result = result
            self._status = "done"
        self._finished.set()

    def mark_error(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._status = "error"
        self._finished.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        return self._finished.wait(timeout)

    def outcome(self) -> Any:
        """The finished job's result, re-raising its error verbatim."""
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._result
