"""Parallel execution service: worker pool, sharding, async job queue.

This layer scales the execution front door out across processes without
changing a single result bit:

* :mod:`repro.service.sharding` — deterministic shard math.  Seeds are
  derived from *coordinates* (element index, shard index), never from
  scheduling, so the merged outcome is invariant under worker count.
* :mod:`repro.service.pool` — the process pool.  The parent compiles and
  pickles each plan once; workers cache unpickled plans by digest and
  only ever ``bind()`` them.
* :mod:`repro.service.futures` — thread-safe :class:`JobState` backing
  async jobs.
* :mod:`repro.service.queue` — :func:`execute_async` and the bounded
  :class:`ExecutionService` with real backpressure.

Synchronous callers never touch this package: ``execute()`` with
``max_workers`` unset (or 1) runs the exact serial code path it always
has.
"""

from repro.service.futures import JobState
from repro.service.pool import (
    WORKERS_ENV_VAR,
    resolve_max_workers,
    shutdown_pool,
)
from repro.service.queue import (
    ExecutionService,
    configure_default_service,
    default_service,
    execute_async,
)
from repro.service.sharding import (
    effective_shard_count,
    merge_counts,
    merge_memory,
    shard_seeds,
    shard_sizes,
)

__all__ = [
    "ExecutionService",
    "JobState",
    "WORKERS_ENV_VAR",
    "configure_default_service",
    "default_service",
    "effective_shard_count",
    "execute_async",
    "merge_counts",
    "merge_memory",
    "resolve_max_workers",
    "shard_seeds",
    "shard_sizes",
    "shutdown_pool",
]
