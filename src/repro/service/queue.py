"""The async job front door: a bounded queue feeding dispatcher threads.

:func:`execute_async` is the non-blocking sibling of
:func:`repro.execute`: it validates eagerly (bad circuits or options
raise *now*, in the caller), enqueues a :class:`~repro.execution.Job`
onto a bounded queue, and returns the handle immediately.  Dispatcher
threads drain the queue in FIFO order and run each job through the very
same execution pipeline the synchronous path uses — including the
process worker pool when the job's options ask for ``max_workers > 1``.

The queue is bounded on purpose: an unbounded buffer turns overload into
silent memory growth.  A full queue raises
:class:`~repro.utils.ExecutionQueueFullError` so callers can apply their
own backpressure (retry, shed, or 429).
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence, Union

from repro.service.futures import JobState
from repro.utils.exceptions import ExecutionError, ExecutionQueueFullError

if TYPE_CHECKING:
    from repro.circuit import Circuit
    from repro.execution import Job, RunOptions

#: How long a dispatcher sleeps in ``Queue.get`` before re-checking the
#: shutdown flag; bounds shutdown latency, invisible otherwise.
_POLL_S = 0.05


class ExecutionService:
    """A bounded job queue drained by background dispatcher threads.

    Parameters
    ----------
    max_pending:
        Queue capacity; :meth:`submit` raises
        :class:`ExecutionQueueFullError` when this many jobs are waiting.
    dispatchers:
        Number of daemon dispatcher threads.  ``0`` starts none: jobs
        stay queued until :meth:`process_one` is called, which makes the
        service deterministic for tests and usable as a cooperative
        (caller-driven) executor.
    """

    def __init__(self, max_pending: int = 64, dispatchers: int = 1) -> None:
        if max_pending < 1:
            raise ExecutionError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if dispatchers < 0:
            raise ExecutionError(
                f"dispatchers must be >= 0, got {dispatchers}"
            )
        self._max_pending = int(max_pending)
        self._jobs: "_queue.Queue" = _queue.Queue(maxsize=self._max_pending)
        self._stop = threading.Event()
        self._threads = []
        for index in range(dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def max_pending(self) -> int:
        return self._max_pending

    @property
    def pending(self) -> int:
        """Jobs enqueued but not yet picked up by a dispatcher."""
        return self._jobs.qsize()

    def submit(
        self,
        circuits: Union["Circuit", Sequence["Circuit"]],
        options: Optional["RunOptions"] = None,
        *,
        parameter_sweep: Optional[Sequence[Mapping[str, float]]] = None,
        **kwargs: Any,
    ) -> "Job":
        """Validate, enqueue, and return a :class:`~repro.execution.Job`.

        The returned job's :attr:`~repro.execution.Job.status` moves
        through ``queued -> running -> done``/``error``;
        ``result(timeout=...)`` blocks until done or raises
        :class:`~repro.utils.ExecutionTimeoutError`.
        """
        if self._stop.is_set():
            raise ExecutionError("cannot submit to a shut-down service")
        from repro.execution import submit as _submit

        job = _submit(
            circuits, options, parameter_sweep=parameter_sweep, **kwargs
        )
        # Attach state before enqueueing: a dispatcher may grab the job
        # the instant it lands, and JobState only advances forward, so
        # queued can never overwrite running.
        state = JobState()
        job._attach_async(state)
        state.mark_queued()
        try:
            self._jobs.put_nowait(job)
        except _queue.Full:
            raise ExecutionQueueFullError(
                f"job queue is full ({self._max_pending} pending); retry "
                "later or widen it via ExecutionService(max_pending=...)"
            ) from None
        return job

    def process_one(self, timeout: Optional[float] = None) -> bool:
        """Run the next queued job on the calling thread.

        Returns ``False`` when nothing is queued within ``timeout``
        (``None`` = don't wait).  This is the manual drain used with
        ``dispatchers=0``; it is also safe alongside live dispatchers.
        """
        try:
            if timeout is None:
                job = self._jobs.get_nowait()
            else:
                job = self._jobs.get(timeout=timeout)
        except _queue.Empty:
            return False
        try:
            job._run_async()
        finally:
            self._jobs.task_done()
        return True

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self.process_one(timeout=_POLL_S)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatchers.  Jobs still queued are never started
        (their status stays ``"queued"``); jobs already running finish."""
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "stopped" if self._stop.is_set() else "running"
        return (
            f"ExecutionService({len(self._threads)} dispatcher(s), "
            f"{self.pending}/{self._max_pending} pending, {state})"
        )


_DEFAULT: Optional[ExecutionService] = None
_DEFAULT_LOCK = threading.Lock()


def default_service() -> ExecutionService:
    """The process-wide service ``execute_async`` uses, created lazily."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = ExecutionService()
        return _DEFAULT


def configure_default_service(
    max_pending: int = 64, dispatchers: int = 1
) -> ExecutionService:
    """Replace the default service (shutting the old one down)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown(wait=False)
        _DEFAULT = ExecutionService(
            max_pending=max_pending, dispatchers=dispatchers
        )
        return _DEFAULT


def execute_async(
    circuits: Union["Circuit", Sequence["Circuit"]],
    options: Optional["RunOptions"] = None,
    *,
    parameter_sweep: Optional[Sequence[Mapping[str, float]]] = None,
    service: Optional[ExecutionService] = None,
    **kwargs: Any,
) -> "Job":
    """Enqueue an execution and return its :class:`~repro.execution.Job`.

    Same surface as :func:`repro.execute` plus an optional ``service``;
    without one the shared default service runs the job on a background
    dispatcher.  Collect with ``job.result(timeout=...)``.
    """
    target = service if service is not None else default_service()
    return target.submit(
        circuits, options, parameter_sweep=parameter_sweep, **kwargs
    )
