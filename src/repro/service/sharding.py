"""Deterministic shard arithmetic for shots, sweeps, and batches.

Sharding never changes *what* is computed, only *where*: every shard's
random stream is derived from the base seed and the shard's position
(:func:`~repro.utils.derive_seed`), so the merged outcome depends only on
``(seed, shard count)`` — never on worker count, scheduling order, or
whether the shards ran in-process or in a pool.  That invariant is what
lets the execution layer promise ``max_workers`` is results-invisible.

The one place sharding *does* change the random stream is the shard
count itself: splitting N shots into k > 1 shards draws from k derived
streams instead of one, so ``shard_shots=4`` produces different (equally
valid) counts than ``shard_shots=0``.  ``shard_shots in (0, 1)`` uses the
unsharded element stream exactly and is bitwise-identical to the
pre-sharding behaviour.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.utils.exceptions import ExecutionError
from repro.utils.rng import derive_seed


def shard_sizes(total: int, num_shards: int) -> List[int]:
    """Split ``total`` shots into ``num_shards`` near-equal positive parts.

    The first ``total % num_shards`` shards carry one extra shot, so the
    split is deterministic and ``sum(shard_sizes(n, k)) == n``.
    """
    if total < 0:
        raise ExecutionError(f"cannot shard a negative total: {total}")
    if num_shards < 1:
        raise ExecutionError(f"need at least one shard, got {num_shards}")
    base, extra = divmod(total, num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


def effective_shard_count(shard_shots: int, shots: int) -> int:
    """The shard count actually used for an element's sampling.

    ``shard_shots`` values of 0 and 1 mean "do not shard"; larger values
    are clamped to ``shots`` so no shard ever samples zero shots (an
    empty shard would burn a derived seed for nothing and make the
    merged result depend on the clamp).
    """
    if shard_shots <= 1 or shots <= 1:
        return 1
    return min(shard_shots, shots)


def shard_seeds(
    seed: Optional[int], element_index: int, num_shards: int
) -> List[Optional[int]]:
    """Per-shard seeds for element ``element_index`` of a batch/sweep.

    An unsharded element (``num_shards <= 1``) gets exactly the classic
    per-element seed ``derive_seed(seed, i)`` — bitwise-compatible with
    the serial, pre-sharding sampler.  Sharded elements extend the same
    spawn-key scheme one level down: shard ``j`` draws from
    ``derive_seed(seed, i, j)``, which depends only on the coordinates
    ``(i, j)``, never on which worker runs the shard or when.
    """
    if num_shards <= 1:
        return [derive_seed(seed, element_index)]
    return [
        derive_seed(seed, element_index, j) for j in range(num_shards)
    ]


def merge_counts(parts: Sequence) -> Any:
    """Merge per-shard :class:`~repro.sampling.Counts` in shard order."""
    if not parts:
        raise ExecutionError("no count shards to merge")
    merged = parts[0]
    for part in parts[1:]:
        merged = merged.merged(part)
    return merged


def merge_memory(parts: Sequence[Optional[List[str]]]) -> Optional[List[str]]:
    """Concatenate per-shard shot memory in shard order (``None`` stays)."""
    if not parts or parts[0] is None:
        return None
    memory: List[str] = []
    for part in parts:
        memory.extend(part or ())
    return memory
