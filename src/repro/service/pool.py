"""The process-based worker pool behind parallel execution.

Division of labour:

* The **parent** compiles (transpile + lowering, through the plan cache)
  and pickles each :class:`~repro.plan.ExecutionPlan` exactly once; the
  same bytes object is reused for every task of the job.
* **Workers** never compile.  Each worker keeps a digest-keyed cache of
  unpickled plans (:func:`load_plan`), so a plan crossing the pipe N
  times is deserialised once per worker and then only re-*bound* — the
  shared-plan-cache analogue across process boundaries.
* Task functions here are thin picklable shims; the element/shard
  payload logic lives in :mod:`repro.execution.api` (imported lazily
  inside the task), so the serial and parallel paths literally run the
  same code and stay bitwise-identical.

The pool is a lazily created, process-wide
:class:`~concurrent.futures.ProcessPoolExecutor`, resized on demand and
replaced outright when a worker dies (a broken pool cannot be reused).
Failures that are about the *transport* — unpicklable payloads, killed
workers — surface as :class:`~repro.utils.ParallelExecutionError`;
library errors raised inside a worker (``SimulationError`` etc.) pickle
fine and propagate unchanged.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.utils.exceptions import ExecutionError, ParallelExecutionError

if TYPE_CHECKING:
    from repro.execution.options import RunOptions
    from repro.plan.plan import ExecutionPlan

#: Environment fallback for ``RunOptions.max_workers=None`` — lets a CI
#: matrix (or a deploy) flip whole test suites to parallel execution
#: without touching call sites.
WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def resolve_max_workers(max_workers: Optional[int]) -> int:
    """The effective worker count: explicit value, else env var, else 1."""
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not env:
        return 1
    try:
        return max(1, int(env))
    except ValueError:
        raise ExecutionError(
            f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
        ) from None


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, created or resized to ``workers`` processes."""
    global _POOL, _POOL_WORKERS
    if workers < 1:
        raise ExecutionError(f"need at least one worker, got {workers}")
    with _POOL_LOCK:
        if _POOL is not None and _POOL_WORKERS == workers:
            return _POOL
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
        return _POOL


def shutdown_pool() -> None:
    """Tear down the shared pool (tests, or after a worker crash)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = None
        _POOL_WORKERS = 0


def run_tasks(
    fn: Callable[..., Any],
    argtuples: Sequence[Tuple[Any, ...]],
    workers: int,
) -> List[Any]:
    """Run ``fn(*args)`` for every tuple on the pool, in submission order.

    Results come back ordered (not completion-ordered) so callers can zip
    them against their inputs.  Transport failures raise
    :class:`ParallelExecutionError`; exceptions raised *by* ``fn`` in the
    worker propagate as themselves.
    """
    pool = get_pool(workers)
    try:
        futures = [pool.submit(fn, *args) for args in argtuples]
    except RuntimeError as exc:  # pool shut down from another thread
        raise ParallelExecutionError(
            f"worker pool rejected the job: {exc}"
        ) from exc
    try:
        return [future.result() for future in futures]
    except BrokenProcessPool as exc:
        shutdown_pool()
        raise ParallelExecutionError(
            "a worker process died mid-job; the pool has been discarded "
            "and the next parallel run will start a fresh one"
        ) from exc
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        # CPython reports unpicklable payloads inconsistently:
        # PicklingError, AttributeError ("can't pickle local object"), or
        # TypeError ("cannot pickle '_thread.lock'").  All three are
        # transport failures here; the original chains for diagnosis.
        raise ParallelExecutionError(
            f"job payload cannot cross the process boundary: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

_PLAN_CACHE: "OrderedDict[bytes, Any]" = OrderedDict()
_PLAN_CACHE_MAX = 16


def dump_plan(plan: "ExecutionPlan") -> bytes:
    """Pickle a compiled plan once, parent-side, for reuse across tasks."""
    try:
        return pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ParallelExecutionError(
            f"compiled plan cannot be shipped to workers: {exc}"
        ) from exc


def load_plan(blob: bytes) -> "ExecutionPlan":
    """Unpickle a plan at most once per worker process (digest-keyed)."""
    key = hashlib.sha1(blob).digest()
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE.move_to_end(key)
        return plan
    plan = pickle.loads(blob)
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


def _element_task(
    plan_blob: bytes,
    point: Optional[Mapping[str, float]],
    index: int,
    options: "RunOptions",
    backend: Any,
) -> Dict[str, Any]:
    """One sweep point / batch element, end to end, in a worker."""
    from repro.execution.api import element_payload

    return element_payload(load_plan(plan_blob), point, index, options, backend)


def _shard_task(
    probs: Any, shots: int, seed: Optional[int], num_qubits: int, memory: bool
) -> Tuple[Any, Optional[List[str]]]:
    """One shot shard sampled from a precomputed probability vector."""
    from repro.execution.api import sample_shard

    return sample_shard(probs, shots, seed, num_qubits, memory)


def _trajectory_task(
    plan_blob: bytes,
    index: int,
    start: int,
    count: int,
    options: "RunOptions",
    backend: Any,
) -> Dict[str, Any]:
    """One shard of Monte-Carlo trajectories for a dynamic-plan element."""
    from repro.execution.api import trajectory_shard

    return trajectory_shard(load_plan(plan_blob), index, start, count, options, backend)
