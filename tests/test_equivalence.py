"""Property-style equivalence: transpiled circuits are indistinguishable.

For seeded random 5-qubit circuits, the transpiled circuit must produce
the same statevector (up to global phase) and — because probabilities are
preserved to float precision — byte-identical seeded ``sample_counts``.
"""

import numpy as np
import pytest

from repro import Circuit, RunOptions, sample_counts, transpile
from repro.gates import available_gates, gate_arity, get_gate
from repro.sim import run
from repro.utils.rng import ensure_rng

_NUM_QUBITS = 5
_NUM_GATES = 40
_PARAM_COUNTS = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3}


def _random_circuit(
    seed: int, num_qubits: int = _NUM_QUBITS, num_gates: int = _NUM_GATES
) -> Circuit:
    rng = ensure_rng(seed)
    names = available_gates()
    circuit = Circuit(num_qubits, name=f"random_{seed}")
    while len(circuit) < num_gates:
        name = names[int(rng.integers(len(names)))]
        arity = gate_arity(name)
        if arity > num_qubits:
            continue
        qubits = rng.choice(num_qubits, size=arity, replace=False)
        params = rng.uniform(0.0, 2 * np.pi, size=_PARAM_COUNTS.get(name, 0))
        circuit.append(get_gate(name, *params), [int(q) for q in qubits])
    return circuit


def _assert_equal_up_to_global_phase(a, b, atol=1e-8):
    data_a, data_b = a.data, b.data
    pivot = int(np.argmax(np.abs(data_a)))
    assert abs(data_a[pivot]) > 1e-6
    phase = data_b[pivot] / data_a[pivot]
    assert abs(abs(phase) - 1.0) < atol
    np.testing.assert_allclose(data_b, phase * data_a, atol=atol)


@pytest.mark.parametrize("seed", range(12))
class TestTranspileEquivalence:
    def test_statevector_equal_up_to_global_phase(self, seed):
        circuit = _random_circuit(seed)
        _assert_equal_up_to_global_phase(run(circuit), run(transpile(circuit)))

    def test_seeded_counts_identical(self, seed):
        circuit = _random_circuit(seed)
        transpiled = transpile(circuit)
        for repetition in (0, 1):
            original = sample_counts(circuit, 512, seed=seed + 1000, repetition=repetition)
            fused = sample_counts(transpiled, 512, seed=seed + 1000, repetition=repetition)
            assert original == fused


@pytest.mark.parametrize("seed", range(6))
def test_wide_fusion_equivalence(seed):
    """max_fused_width=3 fuses across two-qubit gates and must still agree."""
    circuit = _random_circuit(seed, num_gates=30)
    transpiled = transpile(circuit, max_fused_width=3)
    _assert_equal_up_to_global_phase(run(circuit), run(transpiled))


@pytest.mark.parametrize("seed", range(6))
def test_backend_optimize_flag_equivalence(seed):
    """Optimised runs are observably identical to plain runs."""
    circuit = _random_circuit(seed, num_gates=25)
    _assert_equal_up_to_global_phase(
        run(circuit), run(circuit, options=RunOptions(optimize=True))
    )


def test_transpile_reduces_layered_workload():
    """The optimisation is not a no-op where fusion opportunities exist."""
    from repro.bench.workloads import layered_rotations

    circuit = layered_rotations(5, layers=3)
    transpiled = transpile(circuit)
    assert len(transpiled) < len(circuit)
