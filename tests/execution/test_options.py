"""Tests for the frozen RunOptions bundle."""

import dataclasses

import pytest

from repro import Pauli, PauliSum, RunOptions
from repro.utils.exceptions import ExecutionError


class TestConstruction:
    def test_defaults(self):
        options = RunOptions()
        assert options.backend is None
        assert options.shots == 0
        assert options.seed is None
        assert options.optimize is False
        assert options.passes is None
        assert options.noise_model is None
        assert options.observables == ()
        assert options.memory is False

    def test_frozen(self):
        options = RunOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.shots = 7

    def test_single_observable_wrapped(self):
        options = RunOptions(observables=Pauli("Z"))
        assert options.observables == (Pauli("Z"),)

    def test_observable_list_normalised_to_tuple(self):
        obs = PauliSum([(1.0, Pauli("Z"))])
        options = RunOptions(observables=[obs])
        assert options.observables == (obs,)

    def test_replace_revalidates(self):
        options = RunOptions(shots=16)
        assert options.replace(shots=32).shots == 32
        assert options.shots == 16  # original untouched
        with pytest.raises(ExecutionError):
            options.replace(shots=-1)


class TestValidation:
    def test_negative_shots(self):
        with pytest.raises(ExecutionError, match="shots"):
            RunOptions(shots=-1)

    def test_non_integer_shots(self):
        with pytest.raises(ExecutionError, match="shots"):
            RunOptions(shots=12.5)
        with pytest.raises(ExecutionError, match="shots"):
            RunOptions(shots=True)

    def test_non_integer_seed(self):
        import numpy as np

        with pytest.raises(ExecutionError, match="seed"):
            RunOptions(seed=np.random.default_rng(0))
        with pytest.raises(ExecutionError, match="seed"):
            RunOptions(seed="7")

    def test_memory_requires_shots(self):
        with pytest.raises(ExecutionError, match="memory"):
            RunOptions(memory=True)
        assert RunOptions(memory=True, shots=1).memory is True


class TestCoerce:
    def test_kwargs_build_options(self):
        options = RunOptions.coerce(None, shots=8, seed=3)
        assert (options.shots, options.seed) == (8, 3)

    def test_prebuilt_options_pass_through(self):
        options = RunOptions(shots=8)
        assert RunOptions.coerce(options) is options

    def test_mixing_rejected(self):
        with pytest.raises(ExecutionError, match="not both"):
            RunOptions.coerce(RunOptions(), shots=8)

    def test_unknown_keyword_lists_valid_options(self):
        with pytest.raises(ExecutionError) as excinfo:
            RunOptions.coerce(None, shotz=8)
        message = str(excinfo.value)
        assert "shotz" in message and "shots" in message

    def test_wrong_type_rejected(self):
        with pytest.raises(ExecutionError, match="RunOptions"):
            RunOptions.coerce({"shots": 8})


class TestSweepMode:
    def test_default_is_auto(self):
        assert RunOptions().sweep_mode == "auto"

    def test_accepted_values(self):
        for mode in ("auto", "batched", "per_element"):
            assert RunOptions(sweep_mode=mode).sweep_mode == mode

    def test_invalid_value_rejected(self):
        with pytest.raises(ExecutionError, match="sweep_mode"):
            RunOptions(sweep_mode="vectorised")

    def test_replace_revalidates(self):
        with pytest.raises(ExecutionError, match="sweep_mode"):
            RunOptions().replace(sweep_mode="nope")


class TestParallelOptions:
    def test_defaults_are_serial(self):
        options = RunOptions()
        assert options.max_workers is None
        assert options.shard_shots == 0

    def test_max_workers_accepts_positive_ints(self):
        assert RunOptions(max_workers=1).max_workers == 1
        assert RunOptions(max_workers=8).max_workers == 8

    def test_max_workers_rejects_non_positive(self):
        for bad in (0, -2):
            with pytest.raises(ExecutionError, match="max_workers"):
                RunOptions(max_workers=bad)

    def test_max_workers_rejects_non_ints(self):
        for bad in (2.5, "4", True):
            with pytest.raises(ExecutionError, match="max_workers"):
                RunOptions(max_workers=bad)

    def test_shard_shots_accepts_non_negative_ints(self):
        assert RunOptions(shard_shots=0).shard_shots == 0
        assert RunOptions(shard_shots=16).shard_shots == 16

    def test_shard_shots_rejects_invalid(self):
        for bad in (-1, 1.5, "2", True):
            with pytest.raises(ExecutionError, match="shard_shots"):
                RunOptions(shard_shots=bad)

    def test_replace_revalidates_parallel_fields(self):
        with pytest.raises(ExecutionError, match="max_workers"):
            RunOptions().replace(max_workers=0)
