"""Tests for the execute() front door, Job handles, and batch results."""

import numpy as np
import pytest

from repro import (
    BatchResult,
    Circuit,
    Parameter,
    Pauli,
    PauliSum,
    Result,
    RunOptions,
    execute,
    sample_counts,
)
from repro.execution import submit
from repro.transpile import Pass
from repro.utils.exceptions import ExecutionError


def _bell() -> Circuit:
    return Circuit(2, name="bell").h(0).cx(0, 1)


class CountingPass(Pass):
    """Identity pass recording how many times a pipeline ran it."""

    def __init__(self):
        self.calls = 0

    def run(self, circuit):
        self.calls += 1
        return circuit


class TestSingleCircuit:
    def test_returns_result_with_state(self):
        result = execute(_bell())
        assert isinstance(result, Result)
        assert result.counts is None
        assert result.state.probability("00") == pytest.approx(0.5)

    def test_shots_produce_counts(self):
        result = execute(_bell(), shots=256, seed=11)
        assert result.counts.shots == 256
        assert set(result.counts) <= {"00", "11"}

    def test_matches_sample_counts_seeding(self):
        # Batch element 0 must reproduce the classic entry point exactly.
        circuit = _bell()
        assert execute(circuit, shots=512, seed=5).counts == sample_counts(
            circuit, 512, seed=5
        )

    def test_observables_evaluated(self):
        obs = PauliSum([(1.0, Pauli("ZZ")), (1.0, Pauli("XX"))])
        result = execute(_bell(), observables=[obs, Pauli("ZI")])
        assert result.observables == (obs, Pauli("ZI"))
        assert result.expectation_values[0] == pytest.approx(2.0)
        assert result.expectation_values[1] == pytest.approx(0.0, abs=1e-12)
        assert result.expectations[obs] == pytest.approx(2.0)

    def test_expectation_on_demand(self):
        result = execute(_bell())
        assert result.expectation(Pauli("ZZ")) == pytest.approx(1.0)

    def test_memory_agrees_with_counts(self):
        result = execute(_bell(), shots=64, seed=3, memory=True)
        assert len(result.memory) == 64
        tally = {}
        for outcome in result.memory:
            tally[outcome] = tally.get(outcome, 0) + 1
        assert dict(result.counts) == tally

    def test_metadata_carries_backend_and_timing(self):
        result = execute(_bell(), shots=16, seed=1)
        metadata = result.metadata
        assert metadata["backend"] == "statevector"
        assert metadata["run_time_s"] >= 0
        assert metadata["sample_time_s"] >= 0
        assert isinstance(metadata["seed"], int)

    def test_density_backend_and_noise(self):
        from repro.noise import NoiseModel, depolarizing

        model = NoiseModel().add_channel(depolarizing(0.1))
        result = execute(
            _bell(), backend="density_matrix", noise_model=model,
            observables=Pauli("ZZ"),
        )
        assert result.metadata["backend"] == "density_matrix"
        assert result.expectation_values[0] < 1.0  # noise shrinks <ZZ>

    def test_options_object_accepted(self):
        options = RunOptions(shots=32, seed=9)
        result = execute(_bell(), options)
        assert result.counts == execute(_bell(), shots=32, seed=9).counts

    def test_unknown_option_rejected(self):
        with pytest.raises(ExecutionError, match="valid options"):
            execute(_bell(), shotz=8)

    def test_non_circuit_rejected(self):
        with pytest.raises(ExecutionError, match="Circuit"):
            execute("bell")
        with pytest.raises(ExecutionError, match="at least one"):
            execute([])

    def test_unbound_parameters_rejected_without_sweep(self):
        circuit = Circuit(1).ry(Parameter("theta"), 0)
        with pytest.raises(ExecutionError, match="unbound"):
            execute(circuit)


class TestBatch:
    def test_acceptance_batch_reproducibility(self):
        # The acceptance criterion, verbatim: a two-circuit batch with
        # shots, observables and a seed is bitwise-reproducible.
        obs = PauliSum([(1.0, Pauli("ZZ")), (0.5, Pauli("XI"))])
        c1, c2 = _bell(), Circuit(2).rx(0.6, 0).cx(0, 1)
        first = execute([c1, c2], shots=1024, observables=[obs], seed=7)
        second = execute([c1, c2], shots=1024, observables=[obs], seed=7)
        assert isinstance(first, BatchResult)
        assert len(first) == 2
        assert first.counts == second.counts
        assert first.expectation_values == second.expectation_values

    def test_batch_elements_have_independent_streams(self):
        circuit = _bell()
        batch = execute([circuit, circuit], shots=4096, seed=21)
        assert batch[0].counts != batch[1].counts
        assert batch[0].counts.shots == batch[1].counts.shots == 4096

    def test_element_seed_independent_of_batch_composition(self):
        # Element i's derived seed depends on (seed, i) only, so the same
        # circuit in the same slot samples identically in any batch.
        a, b = _bell(), Circuit(2).h(0).h(1)
        assert (
            execute([a, b], shots=256, seed=13).counts[1]
            == execute([b, b], shots=256, seed=13).counts[1]
        )

    def test_single_element_list_returns_batch(self):
        batch = execute([_bell()])
        assert isinstance(batch, BatchResult)
        assert len(batch) == 1

    def test_batch_metadata(self):
        from repro import clear_plan_cache

        clear_plan_cache()  # timings describe THIS call; a warm cache reports 0
        batch = execute([_bell(), _bell()], optimize=True)
        metadata = batch.metadata
        assert metadata["backend"] == "statevector"
        assert metadata["total_time_s"] > 0
        assert metadata["transpile_time_s"] > 0
        assert metadata["plan_compile_time_s"] > 0

    def test_optimized_batch_amortizes_transpile_through_plan_cache(self):
        from repro import clear_plan_cache

        clear_plan_cache()
        first = execute([_bell(), _bell()], optimize=True)
        warm = execute([_bell(), _bell()], optimize=True)
        # The second call is all cache hits: no transpile is re-run and
        # the reported timings describe this call, not the original one.
        assert first.metadata["transpile_time_s"] > 0
        assert warm.metadata["transpile_time_s"] == 0.0
        assert warm.metadata["plan_compile_time_s"] <= first.metadata["total_time_s"]
        assert first[0].counts == warm[0].counts  # both shots-free: None


class TestParameterSweep:
    def test_acceptance_single_transpile_for_n_binds(self):
        # The acceptance criterion: an N-point sweep runs through exactly
        # one transpile pass, observed by a counting Pass.
        theta = Parameter("theta")
        circuit = Circuit(2).ry(theta, 0).cx(0, 1)
        counting = CountingPass()
        sweep = [{theta: v} for v in np.linspace(0.0, np.pi, 5)]
        batch = execute(circuit, passes=[counting], parameter_sweep=sweep)
        assert counting.calls == 1
        assert len(batch) == 5

    def test_sweep_values_land_in_results(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        sweep = [{"theta": v} for v in (0.0, np.pi / 2, np.pi)]
        batch = execute(circuit, observables=Pauli("Z"), parameter_sweep=sweep)
        values = [result.expectation_values[0] for result in batch]
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(0.0, abs=1e-12)
        assert values[2] == pytest.approx(-1.0)
        assert batch[1].parameters == {"theta": np.pi / 2}

    def test_sweep_is_reproducible(self):
        theta = Parameter("theta")
        circuit = Circuit(2).ry(theta, 0).cx(0, 1)
        sweep = [{theta: v} for v in (0.1, 0.2, 0.3)]
        first = execute(circuit, shots=128, seed=2, parameter_sweep=sweep)
        second = execute(circuit, shots=128, seed=2, parameter_sweep=sweep)
        assert first.counts == second.counts

    def test_sweep_point_missing_parameter(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = Circuit(2).rx(a, 0).ry(b, 1)
        with pytest.raises(ExecutionError, match="unbound"):
            execute(circuit, parameter_sweep=[{a: 0.1}])

    def test_sweep_on_non_parametric_circuit(self):
        with pytest.raises(ExecutionError, match="no unbound parameters"):
            execute(_bell(), parameter_sweep=[{}])

    def test_sweep_rejects_multi_circuit_batch(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        with pytest.raises(ExecutionError, match="one template"):
            execute([circuit, circuit], parameter_sweep=[{theta: 0.1}])

    def test_empty_sweep_rejected(self):
        circuit = Circuit(1).ry(Parameter("theta"), 0)
        with pytest.raises(ExecutionError, match="at least one point"):
            execute(circuit, parameter_sweep=[])


class TestJob:
    def test_lazy_then_cached(self):
        job = submit(_bell(), shots=16, seed=4)
        assert job.status == "created"
        assert job.num_elements == 1
        first = job.result()
        assert job.status == "done"
        assert job.result() is first  # cached, not re-run

    def test_options_exposed(self):
        job = submit(_bell(), shots=16)
        assert job.options.shots == 16

    def test_error_cached_and_reraised(self):
        # Gate noise on the statevector backend fails at run time, not
        # submit time; the job must re-raise consistently.
        from repro.noise import NoiseModel, bit_flip
        from repro.utils.exceptions import SimulationError

        model = NoiseModel().add_channel(bit_flip(0.1))
        job = submit(_bell(), noise_model=model)
        with pytest.raises(SimulationError):
            job.result()
        assert job.status == "error"
        with pytest.raises(SimulationError):
            job.result()


class TestNoiseThroughExecute:
    def test_readout_error_applies_on_statevector_backend(self):
        from repro.noise import NoiseModel, ReadoutError

        # A readout-only model is legal on the pure-state backend; the
        # corruption happens at sampling, so |1> counts leak into '0'.
        model = NoiseModel().set_readout_error(ReadoutError(0.0, 0.25))
        result = execute(Circuit(1).x(0), shots=4096, seed=6, noise_model=model)
        assert result.counts["0"] > 0
        ideal = execute(Circuit(1).x(0), shots=4096, seed=6)
        assert ideal.counts.get("0", 0) == 0

    def test_readout_error_composes_with_gate_noise_and_memory(self):
        from repro.noise import NoiseModel, ReadoutError, depolarizing

        model = (
            NoiseModel()
            .add_channel(depolarizing(0.05))
            .set_readout_error(ReadoutError(0.1, 0.1))
        )
        result = execute(
            Circuit(2).h(0).cx(0, 1),
            backend="density_matrix",
            noise_model=model,
            shots=128,
            seed=9,
            memory=True,
        )
        assert result.counts.shots == 128
        assert len(result.memory) == 128


class TestResultAndBatchValidation:
    def test_result_misaligned_expectations_rejected(self):
        state = execute(_bell()).state
        with pytest.raises(ExecutionError, match="observable"):
            Result(_bell(), state, observables=(Pauli("Z"),), expectation_values=())

    def test_batch_result_rejects_empty_and_non_results(self):
        with pytest.raises(ExecutionError, match="at least one"):
            BatchResult([])
        with pytest.raises(ExecutionError, match="Result"):
            BatchResult(["not a result"])

    def test_sweep_point_must_be_a_mapping(self):
        circuit = Circuit(1).ry(Parameter("theta"), 0)
        with pytest.raises(ExecutionError, match="mapping"):
            execute(circuit, parameter_sweep=[0.5])


class TestReviewRegressions:
    def test_sweep_point_conflicting_values_rejected(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        with pytest.raises(ExecutionError, match="conflicting"):
            execute(circuit, parameter_sweep=[{theta: 0.0, "theta": 3.14}])

    def test_numpy_integer_shots_and_seed_accepted(self):
        result = execute(_bell(), shots=np.int64(64), seed=np.int32(5))
        assert result.counts.shots == 64
        assert result.counts == execute(_bell(), shots=64, seed=5).counts

    def test_run_rejects_backend_in_two_places(self):
        from repro import run
        from repro.utils.exceptions import SimulationError

        with pytest.raises(SimulationError, match="one place"):
            run(_bell(), backend="statevector",
                options=RunOptions(backend="density_matrix"))

    def test_interrupted_job_stays_retryable(self):
        from repro.execution.job import Job

        calls = {"n": 0}

        def runner():
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return execute(_bell())

        job = Job(runner, RunOptions(), 1)
        with pytest.raises(KeyboardInterrupt):
            job.result()
        assert job.status == "created"  # not poisoned
        assert job.result().state.num_qubits == 2


class TestSweepModes:
    """The batched sweep path and its per-element fallback."""

    def _template(self):
        theta = Parameter("theta")
        return Circuit(2).ry(theta, 0).cx(0, 1), theta

    def test_auto_batches_pure_statevector_sweeps(self):
        circuit, theta = self._template()
        batch = execute(circuit, parameter_sweep=[{theta: v} for v in (0.1, 0.2)])
        assert batch.metadata["sweep_mode"] == "batched"
        assert batch.metadata["plan_compile_time_s"] >= 0

    def test_auto_falls_back_for_shots(self):
        circuit, theta = self._template()
        batch = execute(
            circuit, shots=32, seed=1, parameter_sweep=[{theta: 0.1}]
        )
        assert batch.metadata["sweep_mode"] == "per_element"
        assert batch[0].counts.shots == 32

    def test_auto_falls_back_for_density_backend(self):
        circuit, theta = self._template()
        batch = execute(
            circuit, backend="density_matrix", parameter_sweep=[{theta: 0.1}]
        )
        assert batch.metadata["sweep_mode"] == "per_element"

    def test_auto_falls_back_for_noise_model(self):
        from repro.noise import NoiseModel, ReadoutError

        model = NoiseModel().set_readout_error(ReadoutError(0.1, 0.1))
        circuit, theta = self._template()
        batch = execute(
            circuit, noise_model=model, parameter_sweep=[{theta: 0.1}]
        )
        assert batch.metadata["sweep_mode"] == "per_element"

    def test_per_element_forced(self):
        circuit, theta = self._template()
        batch = execute(
            circuit,
            parameter_sweep=[{theta: 0.3}],
            sweep_mode="per_element",
        )
        assert batch.metadata["sweep_mode"] == "per_element"

    def test_batched_demanded_but_unbatchable_raises(self):
        circuit, theta = self._template()
        with pytest.raises(ExecutionError, match="batched"):
            execute(
                circuit,
                shots=16,
                parameter_sweep=[{theta: 0.3}],
                sweep_mode="batched",
            )

    def test_batched_and_per_element_agree(self):
        circuit, theta = self._template()
        sweep = [{theta: v} for v in np.linspace(0.0, np.pi, 6)]
        batched = execute(
            circuit, observables=Pauli("ZI"), parameter_sweep=sweep
        )
        per_element = execute(
            circuit,
            observables=Pauli("ZI"),
            parameter_sweep=sweep,
            sweep_mode="per_element",
        )
        for a, b in zip(batched, per_element):
            assert a.expectation_values[0] == pytest.approx(
                b.expectation_values[0], abs=1e-12
            )
            assert a.parameters == b.parameters

    def test_batched_results_carry_bound_circuits(self):
        circuit, theta = self._template()
        batch = execute(circuit, parameter_sweep=[{theta: 0.7}])
        assert batch[0].circuit.parameters() == ()
        assert batch[0].parameters == {"theta": 0.7}

    def test_sweep_reproducible_across_modes_with_seed(self):
        circuit, theta = self._template()
        sweep = [{theta: v} for v in (0.1, 0.2, 0.3)]
        first = execute(circuit, shots=64, seed=5, parameter_sweep=sweep)
        second = execute(circuit, shots=64, seed=5, parameter_sweep=sweep)
        assert first.counts == second.counts


class TestReviewFixesPlanEra:
    """Regression tests from the PR-5 review pass."""

    class _ProtocolOnlyBackend:
        """A minimal Backend-protocol citizen: name + run, no plan surface."""

        name = "protocol_only"

        def run(self, circuit, initial_state=None, options=None):
            from repro.sim import get_backend

            return get_backend("statevector").run(
                circuit, initial_state, options
            )

    def test_sweep_works_on_protocol_only_backend(self):
        theta = Parameter("theta")
        circuit = Circuit(2).ry(theta, 0).cx(0, 1)
        sweep = [{theta: v} for v in (0.0, np.pi / 2, np.pi)]
        batch = execute(
            circuit,
            backend=self._ProtocolOnlyBackend(),
            observables=Pauli("ZI"),
            parameter_sweep=sweep,
        )
        assert batch.metadata["sweep_mode"] == "per_element"
        assert batch.metadata["backend"] == "protocol_only"
        values = [r.expectation_values[0] for r in batch]
        assert values[0] == pytest.approx(1.0)
        assert values[2] == pytest.approx(-1.0)

    def test_sweep_on_protocol_only_backend_transpiles_once(self):
        theta = Parameter("theta")
        circuit = Circuit(2).ry(theta, 0).cx(0, 1)
        counting = CountingPass()
        batch = execute(
            circuit,
            backend=self._ProtocolOnlyBackend(),
            passes=[counting],
            parameter_sweep=[{theta: v} for v in (0.1, 0.2, 0.3)],
        )
        assert len(batch) == 3
        assert counting.calls == 1

    def test_batched_mode_demanded_on_protocol_backend_raises(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        with pytest.raises(ExecutionError, match="plan-capable"):
            execute(
                circuit,
                backend=self._ProtocolOnlyBackend(),
                parameter_sweep=[{theta: 0.1}],
                sweep_mode="batched",
            )

    def test_stray_sweep_key_rejected_up_front(self):
        # A typo'd key fails identically in every sweep mode, before any
        # state is evolved.
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        for mode in ("auto", "per_element"):
            with pytest.raises(ExecutionError, match="unknown parameter"):
                execute(
                    circuit,
                    parameter_sweep=[{theta: 0.1, "phi": 9.0}],
                    sweep_mode=mode,
                )

    def test_sweep_result_circuit_resolves_lazily_and_correctly(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        batch = execute(circuit, parameter_sweep=[{theta: 0.25}])
        resolved = batch[0].circuit
        assert resolved.parameters() == ()
        assert resolved[0].gate.params == (0.25,)
        assert batch[0].circuit is resolved  # cached after first access
