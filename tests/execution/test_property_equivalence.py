"""Property test: statevector and density-matrix expectations agree.

For seeded random 2-4 qubit circuits, ``Result.expectation(PauliSum)``
computed on the statevector backend must agree with the density-matrix
backend under the identity noise model to 1e-9 — the two engines
represent the same physics, so every Hermitian observable must see the
same numbers.
"""

import itertools

import pytest

from repro import Pauli, PauliSum, execute
from repro.bench.workloads import random_dense
from repro.noise import NoiseModel
from repro.utils.rng import ensure_rng

_ATOL = 1e-9


def _random_pauli_sum(num_qubits: int, rng) -> PauliSum:
    terms = []
    for _ in range(int(rng.integers(1, 5))):
        label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
        coefficient = float(rng.uniform(-2.0, 2.0))
        terms.append((coefficient, Pauli(label)))
    return PauliSum(terms)


@pytest.mark.parametrize(
    "num_qubits,trial",
    list(itertools.product((2, 3, 4), range(5))),
)
def test_backends_agree_on_random_expectations(num_qubits, trial):
    rng = ensure_rng(1000 * num_qubits + trial)
    circuit_seed = int(rng.integers(2**31))
    circuit = random_dense(num_qubits, num_gates=20, seed=circuit_seed)
    observable = _random_pauli_sum(num_qubits, rng)
    identity_model = NoiseModel("identity")  # no rules: noiseless channel

    sv = execute(circuit, backend="statevector", observables=observable)
    dm = execute(
        circuit,
        backend="density_matrix",
        noise_model=identity_model,
        observables=observable,
    )
    assert sv.expectation_values[0] == pytest.approx(
        dm.expectation_values[0], abs=_ATOL
    )
    # The on-demand path must agree with the eager one on both backends.
    assert sv.expectation(observable) == pytest.approx(
        dm.expectation(observable), abs=_ATOL
    )


@pytest.mark.parametrize("num_qubits", (2, 3, 4))
def test_backends_agree_after_transpilation(num_qubits):
    rng = ensure_rng(99 + num_qubits)
    circuit = random_dense(num_qubits, num_gates=24, seed=int(rng.integers(2**31)))
    observable = _random_pauli_sum(num_qubits, rng)
    sv = execute(
        circuit, backend="statevector", optimize=True, observables=observable
    )
    dm = execute(
        circuit,
        backend="density_matrix",
        noise_model=NoiseModel("identity"),
        optimize=True,
        observables=observable,
    )
    assert sv.expectation_values[0] == pytest.approx(
        dm.expectation_values[0], abs=_ATOL
    )
