"""Dynamic circuits through ``execute()``: all three backends, one semantics."""

import math
import pickle

import numpy as np
import pytest

from repro import (
    Circuit,
    Instruction,
    Parameter,
    Pauli,
    RunOptions,
    execute,
)
from repro.gates import get_gate
from repro.utils.exceptions import ExecutionError

THETA = 0.731


def _teleportation(theta=THETA):
    """Teleport ``ry(theta)|0>`` from qubit 0 to qubit 2.

    The classical corrections make the protocol branch-independent:
    every measurement outcome pair leaves qubit 2 in the same state, so
    ``<Z_2> = cos(theta)`` exactly — on any backend, any seed.
    """
    return (
        Circuit(3, num_clbits=2)
        .ry(theta, 0)
        .h(1)
        .cx(1, 2)
        .cx(0, 1)
        .h(0)
        .measure(0, 0)
        .measure(1, 1)
        .if_bit(1, 1, Instruction(get_gate("x"), (2,)))
        .if_bit(0, 1, Instruction(get_gate("z"), (2,)))
    )


class TestTeleportation:
    def test_statevector_and_density_agree_exactly(self):
        observable = Pauli("Z", qubits=(2,))
        expected = math.cos(THETA)
        for seed in range(3):
            sv = execute(
                _teleportation(),
                RunOptions(seed=seed, observables=(observable,)),
            )
            assert sv.expectation_values[0] == pytest.approx(expected, abs=1e-9)
        density = execute(
            _teleportation(),
            RunOptions(backend="density_matrix", observables=(observable,)),
        )
        assert density.expectation_values[0] == pytest.approx(expected, abs=1e-9)

    def test_density_counts_match_uniform_branch_distribution(self):
        # The two measured clbits are uniformly random in teleportation.
        result = execute(
            _teleportation(),
            RunOptions(backend="density_matrix", shots=4000, seed=9),
        )
        assert result.counts.num_qubits == 2
        assert set(result.counts) == {"00", "01", "10", "11"}
        for key in result.counts:
            assert result.counts[key] / 4000 == pytest.approx(0.25, abs=0.05)


class TestClassicalMemory:
    def test_memory_records_clbit_strings(self):
        circuit = Circuit(2, num_clbits=2).h(0).measure(0, 0).measure(1, 1)
        result = execute(circuit, RunOptions(shots=20, seed=1, memory=True))
        memory = result.memory
        assert len(memory) == 20
        # Qubit 1 is never touched, so clbit 1 always reads 0; the
        # bitstring convention puts clbit 0 leftmost (like qubit 0).
        assert set(memory) <= {"00", "10"}
        assert result.counts == result.counts.__class__(
            {k: memory.count(k) for k in set(memory)}, num_qubits=2
        )

    def test_result_pickle_round_trip(self):
        circuit = Circuit(1, num_clbits=1).h(0).measure(0, 0)
        result = execute(circuit, RunOptions(shots=16, seed=2, memory=True))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.counts == result.counts
        assert clone.memory == result.memory
        assert clone.metadata == result.metadata

    def test_reset_reinitialises_without_clbits(self):
        # x . reset leaves |0>; no measure => counts sample the qubits.
        circuit = Circuit(1).x(0).reset(0)
        result = execute(circuit, RunOptions(shots=32, seed=0))
        assert dict(result.counts) == {"0": 32}

    def test_seeded_dynamic_run_is_reproducible(self):
        circuit = Circuit(1, num_clbits=1).h(0).measure(0, 0)
        first = execute(circuit, RunOptions(shots=50, seed=123))
        second = execute(circuit, RunOptions(shots=50, seed=123))
        assert first.counts == second.counts


class TestDynamicSweeps:
    def _template(self):
        theta = Parameter("theta")
        return Circuit(1, num_clbits=1).ry(theta, 0).measure(0, 0), theta

    def test_batched_mode_raises_typed_error(self):
        template, theta = self._template()
        with pytest.raises(ExecutionError, match="dynamic"):
            execute(
                template,
                RunOptions(sweep_mode="batched"),
                parameter_sweep=[{theta: 0.1}, {theta: 0.2}],
            )

    def test_auto_mode_falls_back_to_per_element(self):
        template, theta = self._template()
        batch = execute(
            template,
            RunOptions(shots=400, seed=7),
            parameter_sweep=[{theta: 0.0}, {theta: math.pi}],
        )
        # theta=0 always measures 0; theta=pi always measures 1.
        assert dict(batch[0].counts) == {"0": 400}
        assert dict(batch[1].counts) == {"1": 400}


class TestStatevectorDynamicContract:
    def test_counts_have_clbit_register_width(self):
        circuit = Circuit(3, num_clbits=1).h(0).measure(0, 0)
        result = execute(circuit, RunOptions(shots=40, seed=4))
        assert result.counts.num_qubits == 1

    def test_shots_zero_runs_one_seeded_trajectory(self):
        circuit = Circuit(1, num_clbits=1).h(0).measure(0, 0)
        states = [
            execute(circuit, RunOptions(seed=5)).state.data for _ in range(2)
        ]
        np.testing.assert_array_equal(states[0], states[1])

    def test_shot_resolved_dynamic_result_has_no_state(self):
        circuit = Circuit(1, num_clbits=1).h(0).measure(0, 0)
        result = execute(circuit, RunOptions(shots=8, seed=6))
        assert result.state is None

    def test_conditional_branches_on_recorded_outcome(self):
        # measure then flip-if-1: the qubit always ends in |0>, while the
        # clbit keeps the pre-flip outcome.
        circuit = (
            Circuit(1, num_clbits=1)
            .h(0)
            .measure(0, 0)
            .if_bit(0, 1, Instruction(get_gate("x"), (0,)))
        )
        result = execute(
            circuit,
            RunOptions(shots=200, seed=8, observables=(Pauli("Z", qubits=(0,)),)),
        )
        assert set(result.counts) == {"0", "1"}
        assert result.expectation_values[0] == pytest.approx(1.0, abs=1e-9)
