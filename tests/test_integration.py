"""End-to-end acceptance: GHZ through all four layers, public API surface."""

import numpy as np
import pytest

import repro
from repro import Circuit, run, sample_counts


def ghz(n: int = 3) -> Circuit:
    circuit = Circuit(n, name=f"ghz{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


def test_ghz_statevector_is_correct():
    state = run(ghz(3))
    expected = np.zeros(8, dtype=complex)
    expected[0] = expected[7] = 1 / np.sqrt(2)
    assert np.allclose(state.data, expected, atol=1e-10)
    assert state.probabilities_dict() == pytest.approx({"000": 0.5, "111": 0.5})


def test_ghz_sampling_reproducible_and_only_extreme_outcomes():
    counts = sample_counts(ghz(3), shots=4096, seed=1234)
    assert set(counts) == {"000", "111"}
    assert counts.shots == 4096
    for _ in range(3):
        assert sample_counts(ghz(3), shots=4096, seed=1234) == counts


def test_ghz_entanglement_witness():
    state = run(ghz(3))
    # <Z0 Z1> = 1 for GHZ while each single <Zq> = 0.
    zz = np.diag([1, -1, -1, 1]).astype(complex)
    assert state.expectation(zz, (0, 1)) == pytest.approx(1.0)
    for q in range(3):
        assert state.expectation_z(q) == pytest.approx(0.0)


def test_public_api_exports_all_layers():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    # one representative per layer
    assert repro.Circuit and repro.get_gate and repro.StatevectorBackend
    assert repro.sample_counts and repro.ensure_rng


def test_bell_quickstart_from_readme():
    """Keep in sync with the README quick-start example."""
    bell = Circuit(2, name="bell").h(0).cx(0, 1)
    state = run(bell)
    assert state.probability("00") == pytest.approx(0.5)
    counts = sample_counts(bell, shots=1000, seed=42)
    assert set(counts) == {"00", "11"}
