"""Backend execution: tensor-contraction correctness vs dense references,
initial states, and the no-dense-matmul scaling guarantee."""

import inspect

import numpy as np
import pytest

import repro.sim.backend as backend_module
from repro.circuit import Circuit
from repro.gates import get_gate
from repro.sim import Statevector, StatevectorBackend, apply_gate_tensor, run
from repro.utils.exceptions import SimulationError


def dense_reference(circuit: Circuit) -> np.ndarray:
    """Build the full 2**n unitary with kron — test oracle only."""
    n = circuit.num_qubits
    total = np.eye(1 << n, dtype=complex)
    for instruction in circuit:
        # Embed the gate by permuting a kron product onto the right axes.
        k = len(instruction.qubits)
        op = np.kron(
            instruction.gate.matrix, np.eye(1 << (n - k), dtype=complex)
        ).reshape((2,) * (2 * n))
        others = [q for q in range(n) if q not in instruction.qubits]
        order = list(instruction.qubits) + others
        perm = np.argsort(order)
        op = np.transpose(op, tuple(perm) + tuple(n + p for p in perm))
        total = op.reshape(1 << n, 1 << n) @ total
    return total


@pytest.mark.parametrize(
    "build",
    [
        lambda: Circuit(1).h(0).t(0).rx(0.3, 0),
        lambda: Circuit(2).h(0).cx(0, 1).rz(0.7, 1),
        lambda: Circuit(2).h(1).cx(1, 0).swap(0, 1),
        lambda: Circuit(3).h(0).cx(0, 2).cz(2, 1).u3(0.1, 0.2, 0.3, 1),
        lambda: Circuit(3).ry(1.1, 2).cx(2, 0).swap(1, 2).t(0),
    ],
)
def test_run_matches_dense_reference(build):
    circuit = build()
    zero = np.zeros(1 << circuit.num_qubits, dtype=complex)
    zero[0] = 1.0
    expected = dense_reference(circuit) @ zero
    got = run(circuit).data
    assert np.allclose(got, expected, atol=1e-10)


def test_apply_gate_tensor_first_target_most_significant():
    # CX with control=1, target=0 on |01> (qubit 1 set) must give |11>.
    state = Statevector.from_bitstring("01").tensor()
    out = apply_gate_tensor(state, get_gate("cx").matrix, (1, 0))
    assert out[1, 1] == pytest.approx(1.0)


def test_bell_state():
    state = run(Circuit(2).h(0).cx(0, 1))
    probs = state.probabilities_dict()
    assert probs == pytest.approx({"00": 0.5, "11": 0.5})


def test_initial_state_bitstring_and_statevector():
    circuit = Circuit(2).x(0)
    assert run(circuit, "10").probability("00") == pytest.approx(1.0)
    again = run(circuit, run(circuit))  # X twice -> back to |00>
    assert again.probability("00") == pytest.approx(1.0)


def test_initial_state_validation():
    circuit = Circuit(2).x(0)
    with pytest.raises(SimulationError):
        run(circuit, "0")
    with pytest.raises(SimulationError):
        run(circuit, Statevector.zero_state(3))
    with pytest.raises(SimulationError):
        run(circuit, 42)
    with pytest.raises(SimulationError):
        run("not a circuit")


def test_circuit_inverse_round_trips_state():
    circuit = Circuit(3).h(0).cx(0, 1).u3(0.3, 0.1, 0.9, 2).cz(1, 2)
    state = run(circuit.compose(circuit.inverse()))
    assert state.probability("000") == pytest.approx(1.0)


def test_complex64_backend():
    backend = StatevectorBackend(dtype=np.complex64)
    state = backend.run(Circuit(2).h(0).cx(0, 1))
    assert state.probability("11") == pytest.approx(0.5, abs=1e-6)
    with pytest.raises(SimulationError):
        StatevectorBackend(dtype=np.float64)


def test_complex64_is_preserved_through_the_hot_path():
    """Half-memory mode must not be silently promoted to complex128."""
    backend = StatevectorBackend(dtype=np.complex64)
    state = backend.run(Circuit(3).h(0).cx(0, 1).rz(0.4, 2))
    assert state.data.dtype == np.complex64
    out = apply_gate_tensor(
        np.zeros((2, 2), dtype=np.complex64), np.eye(2), (0,)
    )
    assert out.dtype == np.complex64


def test_wide_register_proves_no_dense_operator():
    """A 2**18 x 2**18 dense operator would need ~1 TiB; einsum application
    handles 18 qubits in milliseconds."""
    n = 18
    circuit = Circuit(n)
    for q in range(n):
        circuit.h(q)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    state = run(circuit)
    assert np.isclose(np.linalg.norm(state.data), 1.0, atol=1e-8)


def test_hot_path_source_builds_no_dense_operator():
    """The gate-apply hot path must contract tensors, not kron up operators."""
    source = inspect.getsource(backend_module.apply_gate_tensor)
    assert "tensordot" in source
    assert "kron" not in source


class TestSharedRunSignature:
    """Both shipped backends share one run() — the signature is stated once."""

    def test_run_is_the_same_method_object(self):
        from repro.sim import BaseBackend, DensityMatrixBackend

        assert (
            StatevectorBackend.run
            is DensityMatrixBackend.run
            is BaseBackend.run
        )

    def test_signatures_identical(self):
        from repro.sim import DensityMatrixBackend

        assert inspect.signature(StatevectorBackend.run) == inspect.signature(
            DensityMatrixBackend.run
        )

    def test_execute_plan_is_the_same_method_object(self):
        # The acceptance criterion of the plan refactor: both backends
        # evolve states exclusively through one shared plan loop; neither
        # overrides it with a private eager path.
        from repro.sim import BaseBackend, DensityMatrixBackend

        assert (
            StatevectorBackend.execute_plan
            is DensityMatrixBackend.execute_plan
            is BaseBackend.execute_plan
        )

    def test_no_per_instruction_eager_loop_left_in_backends(self):
        # The eager loops are gone from the backend modules: nothing in
        # sim/backend.py or sim/density.py iterates a circuit anymore.
        import repro.sim.density as density_module

        for module in (backend_module, density_module):
            source = inspect.getsource(module)
            assert "for instruction in circuit" not in source
            assert "_execute" not in source

    def test_both_backends_accept_identical_options(self):
        from repro import RunOptions
        from repro.sim import DensityMatrixBackend
        from repro.transpile import FuseAdjacentGates

        options = RunOptions(optimize=True, passes=[FuseAdjacentGates()])
        circuit = Circuit(2).h(0).cx(0, 1)
        psi = StatevectorBackend().run(circuit, options=options)
        rho = DensityMatrixBackend().run(circuit, options=options)
        assert rho.fidelity(psi) == pytest.approx(1.0)

    def test_legacy_keywords_still_accepted_but_deprecated(self):
        circuit = Circuit(1).rz(0.5, 0).rz(-0.5, 0)
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            legacy = StatevectorBackend().run(circuit, optimize=True)
        assert legacy == StatevectorBackend().run(circuit)

    def test_mixing_options_and_legacy_keywords_rejected(self):
        from repro import RunOptions

        with pytest.raises(SimulationError, match="not both"):
            StatevectorBackend().run(
                Circuit(1).h(0), options=RunOptions(), optimize=True
            )

    def test_non_runoptions_object_rejected(self):
        with pytest.raises(SimulationError, match="RunOptions"):
            StatevectorBackend().run(Circuit(1).h(0), options={"optimize": True})


class TestCrossDtypePlanExecution:
    def test_plan_dtype_wins_over_backend_dtype(self):
        # Executing a complex64 plan on a complex128-configured backend
        # must stay in the plan's precision end to end (and vice versa).
        from repro import Circuit, compile_plan

        circuit = Circuit(2).h(0).cx(0, 1)
        half = StatevectorBackend(dtype=np.complex64)
        full = StatevectorBackend()
        half_plan = compile_plan(circuit, half, use_cache=False)
        assert full.execute_plan(half_plan).data.dtype == np.complex64
        full_plan = compile_plan(circuit, full, use_cache=False)
        assert half.execute_plan(full_plan).data.dtype == np.complex128
