"""Pauli-transfer-matrix backend: PauliVector, fusion, and density parity.

The PTM engine must be *indistinguishable* from the density-matrix
engine on everything it supports (counts, states, expectations, sweeps,
sharding) while provably doing less work (gate+channel runs fused into
fewer plan ops).  Both halves of that contract are pinned here.
"""

import pickle

import numpy as np
import pytest

import repro
from repro.analysis import analyze, verify_plan
from repro.bench.workloads import (
    ghz,
    ghz_depolarizing,
    layered_damped,
    parameterized_rotations,
    sweep_bindings,
)
from repro.circuit import Channel, Circuit
from repro.circuit.ptm import (
    embed_ptm,
    kraus_to_ptm,
    ptm_is_trace_preserving,
    ptm_is_unital,
)
from repro.execution import RunOptions
from repro.noise import amplitude_damping, depolarizing, phase_damping
from repro.plan import PTMOp, ParametricSlotOp, compile_plan
from repro.sim import (
    DensityMatrix,
    PauliVector,
    PTMBackend,
    Statevector,
    available_backends,
    get_backend,
    run,
)
from repro.utils.exceptions import SimulationError

#: The ISSUE-mandated agreement bar between the PTM and density engines.
_PARITY_ATOL = 1e-9


def _noisy_random(num_qubits, num_gates=30, seed=23):
    """Seeded random circuit interleaving gates with random channels."""
    rng = np.random.default_rng(seed)
    channels = (
        depolarizing(0.03),
        amplitude_damping(0.05),
        phase_damping(0.04),
    )
    circuit = Circuit(num_qubits, name=f"noisy_random_{num_qubits}_{seed}")
    for _ in range(num_gates):
        kind = rng.random()
        if kind < 0.4:
            circuit.rz(float(rng.uniform(0, 6.28)), int(rng.integers(num_qubits)))
            circuit.ry(float(rng.uniform(0, 6.28)), int(rng.integers(num_qubits)))
        elif kind < 0.7:
            a = int(rng.integers(num_qubits))
            b = int(rng.integers(num_qubits - 1))
            if b >= a:
                b += 1
            circuit.cx(a, b)
        else:
            channel = channels[int(rng.integers(len(channels)))]
            circuit.channel(channel, (int(rng.integers(num_qubits)),))
    return circuit


class TestPauliVectorType:
    def test_zero_state(self):
        state = PauliVector.zero_state(2)
        assert state.num_qubits == 2
        assert state.trace() == pytest.approx(1.0)
        assert state.purity() == pytest.approx(1.0)
        probs = state.probabilities()
        assert probs[0] == pytest.approx(1.0)
        assert probs[1:] == pytest.approx(np.zeros(3))

    def test_zero_state_components(self):
        # |0><0| = (I + Z) / 2, i.e. (1, 0, 0, 1)/sqrt(2) per qubit.
        state = PauliVector.zero_state(1)
        assert state.data == pytest.approx(
            np.array([1.0, 0.0, 0.0, 1.0]) / np.sqrt(2.0)
        )

    def test_from_statevector_roundtrip(self):
        psi = Statevector(np.array([1.0, 1.0j]) / np.sqrt(2))
        state = PauliVector.from_statevector(psi)
        assert state.purity() == pytest.approx(1.0)
        rho = state.to_density_matrix()
        assert np.allclose(
            rho.tensor().reshape(2, 2),
            DensityMatrix.from_statevector(psi).tensor().reshape(2, 2),
        )

    def test_density_roundtrip_mixed(self):
        rho = DensityMatrix(np.diag([0.5, 0.25, 0.125, 0.125]).astype(complex))
        state = PauliVector.from_density_matrix(rho)
        back = state.to_density_matrix()
        assert np.allclose(back.tensor(), rho.tensor(), atol=1e-12)
        assert state.purity() < 1.0

    def test_from_bitstring(self):
        state = PauliVector.from_bitstring("10")
        probs = state.probabilities()
        assert probs[2] == pytest.approx(1.0)
        assert state.expectation_z(0) == pytest.approx(-1.0)
        assert state.expectation_z(1) == pytest.approx(1.0)

    def test_from_bad_bitstring(self):
        with pytest.raises(SimulationError):
            PauliVector.from_bitstring("1x")

    def test_rejects_complex_data(self):
        with pytest.raises(SimulationError, match="real"):
            PauliVector(np.ones(4, dtype=complex))

    def test_rejects_bad_size(self):
        with pytest.raises(SimulationError, match="power of four"):
            PauliVector(np.ones(8))

    def test_validation_rejects_bad_trace(self):
        with pytest.raises(SimulationError, match="trace"):
            PauliVector(np.ones(4))

    def test_data_is_copy_tensor_is_readonly(self):
        state = PauliVector.zero_state(1)
        state.data[0] = 99.0
        assert state.trace() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            state.tensor()[0] = 99.0

    def test_expectation_z_range_checked(self):
        with pytest.raises(SimulationError, match="out of range"):
            PauliVector.zero_state(1).expectation_z(1)

    def test_pickle_roundtrip_stays_readonly(self):
        state = PauliVector.from_bitstring("01")
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state
        with pytest.raises(ValueError):
            clone.tensor()[(0, 0)] = 99.0

    def test_equality(self):
        assert PauliVector.zero_state(2) == PauliVector.from_bitstring("00")
        assert PauliVector.zero_state(2) != PauliVector.from_bitstring("01")
        assert PauliVector.zero_state(1) != PauliVector.zero_state(2)


class TestPTMHelpers:
    def test_gate_ptm_is_trace_preserving_and_unital(self):
        matrix = repro.get_gate("h").matrix
        ptm = kraus_to_ptm((matrix,), 1)
        assert ptm_is_trace_preserving(ptm)
        assert ptm_is_unital(ptm)

    def test_x_gate_ptm(self):
        # X maps I->I, X->X, Y->-Y, Z->-Z.
        ptm = kraus_to_ptm((repro.get_gate("x").matrix,), 1)
        assert ptm == pytest.approx(np.diag([1.0, 1.0, -1.0, -1.0]))

    def test_amplitude_damping_not_unital(self):
        channel = amplitude_damping(0.3)
        assert ptm_is_trace_preserving(channel.ptm)
        assert not ptm_is_unital(channel.ptm)

    def test_depolarizing_unital(self):
        channel = depolarizing(0.1)
        assert ptm_is_trace_preserving(channel.ptm)
        assert ptm_is_unital(channel.ptm)

    def test_embed_ptm_identity_padding(self):
        small = kraus_to_ptm((repro.get_gate("x").matrix,), 1)
        wide = embed_ptm(small, [1], 2)
        # Acting on qubit 1 of 2: qubit 0's digits are untouched.
        expected = np.kron(np.eye(4), small)
        assert wide == pytest.approx(expected)

    def test_embed_ptm_rejects_bad_positions(self):
        small = np.eye(4)
        with pytest.raises(Exception):
            embed_ptm(small, [0, 0], 2)


class TestChannelPTMProperty:
    """Satellite: every Channel freezes its PTM at construction."""

    @pytest.mark.parametrize(
        "channel",
        [depolarizing(0.05), amplitude_damping(0.2), phase_damping(0.15)],
        ids=lambda c: c.name,
    )
    def test_ptm_shape_dtype_frozen(self, channel):
        ptm = channel.ptm
        assert ptm.shape == (4, 4)
        assert ptm.dtype == np.float64
        assert not ptm.flags.writeable
        assert ptm_is_trace_preserving(ptm)

    def test_pickle_roundtrip_keeps_ptm(self):
        channel = amplitude_damping(0.25)
        clone = pickle.loads(pickle.dumps(channel))
        assert clone.ptm == pytest.approx(channel.ptm)
        assert not clone.ptm.flags.writeable

    def test_old_pickle_without_ptm_recomputes_lazily(self):
        channel = depolarizing(0.1)
        expected = channel.ptm.copy()
        # Simulate a pickle written before the _ptm slot existed.
        stale = object.__new__(Channel)
        state = {
            name: getattr(channel, name)
            for name in Channel.__slots__
            if name != "_ptm"
        }
        stale.__setstate__((None, state))
        assert stale.ptm == pytest.approx(expected)
        assert not stale.ptm.flags.writeable

    def test_analysis_flags_corrupted_ptm(self):
        channel = depolarizing(0.1)
        # A stale/corrupted cached PTM (trace row broken) must surface
        # through the non-cptp-channel rule even though the Kraus set is
        # still perfectly valid.
        bad = channel.ptm.copy()
        bad[0, 0] = 0.5
        channel._ptm = bad
        circuit = Circuit(1).h(0).channel(channel, (0,))
        report = analyze(circuit, rules=["non-cptp-channel"])
        messages = [d.message for d in report.diagnostics]
        assert any("Pauli basis" in m for m in messages)


class TestPTMBackendBasics:
    def test_registered(self):
        assert "ptm" in available_backends()
        backend = get_backend("ptm")
        assert isinstance(backend, PTMBackend)
        assert backend.plan_mode == "ptm"

    def test_rejects_non_float64(self):
        with pytest.raises(SimulationError, match="dtype"):
            PTMBackend(dtype=np.float32)

    def test_noiseless_ghz_matches_statevector(self):
        circuit = ghz(3)
        expected = run(circuit).probabilities()
        state = run(circuit, backend="ptm")
        assert isinstance(state, PauliVector)
        assert state.probabilities() == pytest.approx(expected, abs=1e-12)

    def test_initial_state_forms_agree(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        from_string = run(circuit, initial_state="10", backend="ptm")
        psi = Statevector.from_bitstring("10")
        from_state = run(circuit, initial_state=psi, backend="ptm")
        rho = DensityMatrix.from_bitstring("10")
        from_density = run(circuit, initial_state=rho, backend="ptm")
        from_pauli = run(
            circuit, initial_state=PauliVector.from_bitstring("10"), backend="ptm"
        )
        for state in (from_state, from_density, from_pauli):
            assert state == from_string

    def test_initial_state_width_checked(self):
        circuit = Circuit(2).h(0)
        with pytest.raises(SimulationError, match="2 qubits"):
            run(circuit, initial_state="101", backend="ptm")

    def test_initial_state_type_checked(self):
        with pytest.raises(SimulationError, match="cannot initialise"):
            run(Circuit(1).h(0), initial_state=42, backend="ptm")

    def test_dynamic_circuit_rejected_at_lowering(self):
        circuit = Circuit(2, num_clbits=1)
        circuit.h(0)
        circuit.measure(0, 0)
        with pytest.raises(SimulationError, match="dynamic"):
            run(circuit, backend="ptm")

    def test_backend_pickles(self):
        backend = get_backend("ptm")
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.plan_mode == "ptm"
        assert clone.dtype == np.float64


class TestFusionThroughChannels:
    """The tentpole claim: gate+channel runs collapse into fewer ops."""

    def test_layered_damped_has_strictly_fewer_ops(self):
        circuit = layered_damped(4, layers=3)
        density = compile_plan(circuit, get_backend("density_matrix"))
        ptm = compile_plan(circuit, get_backend("ptm"))
        assert len(ptm.ops) < len(density.ops)

    def test_ghz_depolarizing_has_strictly_fewer_ops(self):
        circuit = ghz_depolarizing(4)
        density = compile_plan(circuit, get_backend("density_matrix"))
        ptm = compile_plan(circuit, get_backend("ptm"))
        assert len(ptm.ops) < len(density.ops)

    def test_fused_ops_record_their_members(self):
        circuit = Circuit(1).h(0).channel(depolarizing(0.02), (0,)).x(0)
        plan = compile_plan(circuit, get_backend("ptm"))
        assert len(plan.ops) == 1
        (op,) = plan.ops
        assert isinstance(op, PTMOp)
        assert op.name == "h+depolarizing+x"
        assert op.tensor.shape == (4, 4)
        assert op.tensor.dtype == np.float64

    def test_fusion_width_is_capped(self):
        # Three qubits of overlapping CXs cannot all join one group under
        # the 2-qubit width cap, so at least two ops must survive.
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        plan = compile_plan(circuit, get_backend("ptm"))
        assert len(plan.ops) >= 2
        for op in plan.ops:
            assert len(op.targets) <= 2

    def test_noise_model_channels_fuse_too(self):
        circuit = ghz(3)
        noise = repro.NoiseModel().add_channel(depolarizing(0.02))
        options = RunOptions(noise_model=noise)
        density = compile_plan(
            circuit, get_backend("density_matrix"), options, use_cache=False
        )
        ptm = compile_plan(circuit, get_backend("ptm"), options, use_cache=False)
        assert len(ptm.ops) < len(density.ops)

    def test_parametric_slot_is_a_fusion_barrier(self):
        theta = repro.Parameter("theta")
        circuit = Circuit(1).h(0).rz(theta, 0).x(0)
        plan = compile_plan(circuit, get_backend("ptm"))
        kinds = [type(op).__name__ for op in plan.ops]
        assert kinds == ["PTMOp", "ParametricSlotOp", "PTMOp"]
        bound = plan.bind({"theta": 0.4})
        assert all(isinstance(op, PTMOp) for op in bound.ops)


class TestPTMDensityParity:
    """Property tests: PTM agrees with density to 1e-9 on everything."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_noisy_final_state(self, seed):
        circuit = _noisy_random(3, seed=seed)
        rho = run(circuit, backend="density_matrix")
        pauli = run(circuit, backend="ptm")
        diff = np.abs(pauli.to_density_matrix().tensor() - rho.tensor())
        assert float(diff.max()) < _PARITY_ATOL

    @pytest.mark.parametrize("seed", [4, 5])
    def test_random_noisy_counts_identical(self, seed):
        circuit = _noisy_random(3, seed=seed)
        kwargs = dict(shots=2048, seed=97)
        res_density = repro.execute(
            circuit, options=RunOptions(backend="density_matrix", **kwargs)
        )
        res_ptm = repro.execute(circuit, options=RunOptions(backend="ptm", **kwargs))
        assert dict(res_ptm.counts) == dict(res_density.counts)

    def test_pauli_sum_expectations(self):
        circuit = _noisy_random(3, seed=6)
        observable = repro.PauliSum(
            [(0.5, repro.Pauli("ZZI")), (-1.25, repro.Pauli("XIX")),
             (0.75, repro.Pauli("IYY"))]
        )
        rho = run(circuit, backend="density_matrix")
        pauli = run(circuit, backend="ptm")
        expected = repro.expectation(rho, observable)
        actual = repro.expectation(pauli, observable)
        assert actual == pytest.approx(expected, abs=_PARITY_ATOL)

    def test_noiseless_circuit_parity(self):
        circuit = ghz(4)
        rho = run(circuit, backend="density_matrix")
        pauli = run(circuit, backend="ptm")
        diff = np.abs(pauli.to_density_matrix().tensor() - rho.tensor())
        assert float(diff.max()) < _PARITY_ATOL

    def test_parametric_sweep_parity(self):
        circuit, parameters = parameterized_rotations(3, layers=2)
        bindings = sweep_bindings(parameters, points=4)
        noise = repro.NoiseModel().add_channel(amplitude_damping(0.04))
        observable = repro.Pauli("ZZZ")
        results = {}
        for backend in ("density_matrix", "ptm"):
            results[backend] = repro.execute(
                circuit,
                options=RunOptions(
                    backend=backend,
                    noise_model=noise,
                    shots=512,
                    seed=11,
                    observables=(observable,),
                ),
                parameter_sweep=bindings,
            )
        pairs = zip(results["density_matrix"].results, results["ptm"].results)
        for res_density, res_ptm in pairs:
            assert dict(res_ptm.counts) == dict(res_density.counts)
            assert res_ptm.expectation_values[0] == pytest.approx(
                res_density.expectation_values[0], abs=_PARITY_ATOL
            )

    def test_sampling_layer_accepts_pauli_vector(self):
        circuit = ghz(2)
        state = run(circuit, backend="ptm")
        counts = repro.sample_counts(state, shots=256, seed=5)
        reference = repro.sample_counts(
            run(circuit, backend="density_matrix"), shots=256, seed=5
        )
        assert dict(counts) == dict(reference)


class TestVerifyPlanPTM:
    def test_clean_noisy_plan_verifies(self):
        plan = compile_plan(layered_damped(3, layers=2), get_backend("ptm"))
        assert verify_plan(plan).diagnostics == ()

    def test_clean_parametric_plan_verifies(self):
        circuit, _ = parameterized_rotations(2)
        plan = compile_plan(circuit, get_backend("ptm"))
        assert any(isinstance(op, ParametricSlotOp) for op in plan.ops)
        assert verify_plan(plan).diagnostics == ()

    def test_corrupted_tensor_shape_flagged(self):
        plan = compile_plan(
            ghz_depolarizing(3), get_backend("ptm"), use_cache=False
        )
        plan.ops[0].tensor = np.eye(4, dtype=np.float64).reshape(2, 2, 2, 2)
        codes = {d.code for d in verify_plan(plan).diagnostics}
        assert "plan-shape-mismatch" in codes

    def test_corrupted_dtype_flagged(self):
        plan = compile_plan(
            ghz_depolarizing(3), get_backend("ptm"), use_cache=False
        )
        plan.ops[0].tensor = plan.ops[0].tensor.astype(np.float32)
        codes = {d.code for d in verify_plan(plan).diagnostics}
        assert "plan-dtype-mismatch" in codes

    def test_foreign_op_flagged(self):
        ptm_plan = compile_plan(
            ghz_depolarizing(3), get_backend("ptm"), use_cache=False
        )
        density_plan = compile_plan(
            ghz_depolarizing(3), get_backend("density_matrix"), use_cache=False
        )
        ptm_plan._ops = (density_plan.ops[0],) + ptm_plan.ops[1:]
        codes = {d.code for d in verify_plan(ptm_plan).diagnostics}
        assert "plan-mode-mismatch" in codes


class TestSanitizerUnderstandsPauliBasis:
    def test_strict_sanitize_clean_on_mixed_state(self):
        # A deeply noisy run leaves a very mixed state; a sanitizer that
        # read |r|^2 as the norm (pure-state logic) would false-positive.
        circuit = layered_damped(3, layers=3)
        result = repro.execute(
            circuit,
            options=RunOptions(backend="ptm", sanitize="strict", shots=64, seed=2),
        )
        assert sum(result.counts.values()) == 64

    def test_strict_sanitize_catches_trace_leak(self):
        from repro.utils import SanitizerError

        plan = compile_plan(ghz(2), get_backend("ptm"), use_cache=False)
        plan.ops[0].tensor = np.ascontiguousarray(plan.ops[0].tensor) * 1.5
        with pytest.raises(SanitizerError, match="tr\\(rho\\)"):
            get_backend("ptm").execute_plan(plan, sanitize="strict")


class TestServiceParity:
    def test_sharded_shots_match_density_sharded(self):
        circuit = ghz_depolarizing(3)
        kwargs = dict(shots=2000, seed=19, shard_shots=500, max_workers=2)
        res_density = repro.execute(
            circuit, options=RunOptions(backend="density_matrix", **kwargs)
        )
        res_ptm = repro.execute(circuit, options=RunOptions(backend="ptm", **kwargs))
        assert dict(res_ptm.counts) == dict(res_density.counts)

    def test_parallel_sweep_matches_serial(self):
        circuit, parameters = parameterized_rotations(2)
        bindings = sweep_bindings(parameters, points=3)
        serial = repro.execute(
            circuit,
            options=RunOptions(backend="ptm", shots=256, seed=3),
            parameter_sweep=bindings,
        )
        parallel = repro.execute(
            circuit,
            options=RunOptions(backend="ptm", shots=256, seed=3, max_workers=2),
            parameter_sweep=bindings,
        )
        for a, b in zip(serial.results, parallel.results):
            assert dict(a.counts) == dict(b.counts)
