"""Statevector construction and queries."""

import numpy as np
import pytest

from repro.sim import Statevector
from repro.utils.exceptions import SimulationError


def test_zero_state():
    state = Statevector.zero_state(3)
    assert state.num_qubits == 3
    assert state.probability("000") == 1.0
    with pytest.raises(SimulationError):
        Statevector.zero_state(0)


def test_from_bitstring():
    state = Statevector.from_bitstring("10")
    assert state.amplitude("10") == 1.0
    assert state.probability("01") == 0.0


def test_length_must_be_power_of_two():
    with pytest.raises(SimulationError):
        Statevector(np.ones(3) / np.sqrt(3))
    with pytest.raises(SimulationError):
        Statevector(np.array([1.0]))


def test_normalisation_validated():
    with pytest.raises(SimulationError):
        Statevector(np.array([1.0, 1.0]))
    Statevector(np.array([1.0, 1.0]) / np.sqrt(2))  # ok


def test_norm_tolerance_scales_with_dtype():
    """complex64 drift beyond the old fixed 1e-8 must still be accepted.

    Deep single-precision circuits accumulate per-gate rounding at
    float32 scale (~1e-7 per op); the tolerance is sqrt(eps) of the
    dtype, so a 1e-5 deviation passes in complex64 but correctly fails
    in complex128.
    """
    drifted = np.array([1.0 + 1e-5, 0.0], dtype=np.complex64)
    state = Statevector(drifted)  # would raise with a fixed 1e-8 atol
    assert state.num_qubits == 1
    with pytest.raises(SimulationError):
        Statevector(drifted.astype(np.complex128))
    # Gross denormalisation still fails in single precision.
    with pytest.raises(SimulationError):
        Statevector(np.array([1.01, 0.0], dtype=np.complex64))


def test_norm_tolerance_after_deep_complex64_circuit():
    """End-to-end guard: a deep complex64 simulation must validate."""
    from repro.circuit import Circuit
    from repro.sim import StatevectorBackend
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(3)
    circuit = Circuit(4)
    for _ in range(300):
        circuit.ry(float(rng.uniform(0, 6.28)), int(rng.integers(4)))
    final = StatevectorBackend(dtype=np.complex64).run(circuit)
    # Re-validating the (drifted) amplitudes must succeed at float32 scale.
    Statevector(final.data)


def test_data_returns_copy():
    state = Statevector.zero_state(1)
    state.data[0] = 0
    assert state.probability("0") == 1.0


def test_tensor_layout_axis_q_is_qubit_q():
    state = Statevector.from_bitstring("01")
    tensor = state.tensor()
    assert tensor.shape == (2, 2)
    assert tensor[0, 1] == 1.0


def test_tensor_view_is_read_only():
    """tensor() must not leak a mutable handle on the internal buffer."""
    state = Statevector.zero_state(2)
    with pytest.raises(ValueError):
        state.tensor()[0, 0] = 0
    assert state.probability("00") == 1.0


def test_probabilities_dict_drops_zeros():
    plus = Statevector(np.array([1, 1, 0, 0]) / np.sqrt(2))
    probs = plus.probabilities_dict()
    assert set(probs) == {"00", "01"}
    assert probs["00"] == pytest.approx(0.5)


def test_amplitude_width_checked():
    with pytest.raises(SimulationError):
        Statevector.zero_state(2).amplitude("0")


def test_invalid_bitstrings_raise_simulation_error():
    """Bad bitstrings must not leak bare ValueError through the sim layer."""
    with pytest.raises(SimulationError):
        Statevector.from_bitstring("2x")
    with pytest.raises(SimulationError):
        Statevector.zero_state(2).amplitude("0x")


def test_inner_and_fidelity():
    zero = Statevector.zero_state(1)
    one = Statevector.from_bitstring("1")
    plus = Statevector(np.array([1, 1]) / np.sqrt(2))
    assert zero.inner(one) == 0
    assert zero.fidelity(plus) == pytest.approx(0.5)
    with pytest.raises(SimulationError):
        zero.inner(Statevector.zero_state(2))


def test_expectation_z():
    zero = Statevector.zero_state(2)
    assert zero.expectation_z(0) == pytest.approx(1.0)
    one = Statevector.from_bitstring("10")
    assert one.expectation_z(0) == pytest.approx(-1.0)
    assert one.expectation_z(1) == pytest.approx(1.0)


def test_expectation_matrix_on_subset():
    plus = Statevector(np.array([1, 1]) / np.sqrt(2))
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    assert plus.expectation(x, (0,)) == pytest.approx(1.0)
    assert plus.expectation(z, (0,)) == pytest.approx(0.0)


def test_expectation_validates_operator_and_qubits():
    state = Statevector.zero_state(2)
    with pytest.raises(SimulationError):
        state.expectation(np.eye(2), (5,))
    with pytest.raises(SimulationError):
        state.expectation(np.eye(4), (0,))
    with pytest.raises(SimulationError):
        state.expectation(np.eye(4), (0, 0))  # duplicates must not leak ValueError
