"""Tests for the backend registry and the unified run() entry point."""

import numpy as np
import pytest

import repro.sim.registry as registry_module

from repro.circuit import Circuit
from repro.sim import (
    DensityMatrix,
    DensityMatrixBackend,
    Statevector,
    StatevectorBackend,
    available_backends,
    get_backend,
    register_backend,
    run,
)
from repro.utils.exceptions import SimulationError


class TestGetBackend:
    def test_default_is_statevector(self):
        assert get_backend().name == "statevector"
        assert isinstance(get_backend(), StatevectorBackend)

    def test_lookup_by_name(self):
        assert isinstance(get_backend("statevector"), StatevectorBackend)
        assert isinstance(get_backend("density_matrix"), DensityMatrixBackend)

    def test_lookup_is_case_insensitive(self):
        assert get_backend("STATEVECTOR") is get_backend("statevector")

    def test_mixed_case_lookup_shares_the_instance(self):
        assert get_backend("StateVector") is get_backend("statevector")
        assert get_backend("Density_Matrix") is get_backend("density_matrix")

    def test_instances_are_shared(self):
        assert get_backend("statevector") is get_backend("statevector")

    def test_instance_passes_through(self):
        backend = StatevectorBackend(dtype=np.complex64)
        assert get_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(SimulationError, match="available"):
            get_backend("tensor_network")

    def test_unknown_name_message_lists_available_backends(self):
        with pytest.raises(SimulationError) as excinfo:
            get_backend("tensor_network")
        message = str(excinfo.value)
        assert "tensor_network" in message
        for name in available_backends():
            assert name in message

    def test_unresolvable_object(self):
        with pytest.raises(SimulationError):
            get_backend(42)


class TestRegisterBackend:
    def test_duplicate_name_rejected(self):
        with pytest.raises(SimulationError, match="already registered"):
            register_backend("statevector", StatevectorBackend)

    def test_duplicate_rejected_after_instantiation(self):
        # Force the lazy factory to have run, then try to re-register:
        # the live instance must survive the rejected attempt untouched.
        instance = get_backend("statevector")
        with pytest.raises(SimulationError, match="already registered"):
            register_backend("statevector", lambda: StatevectorBackend())
        with pytest.raises(SimulationError, match="already registered"):
            register_backend("STATEVECTOR", StatevectorBackend)  # case-folded
        assert get_backend("statevector") is instance

    def test_non_callable_factory_rejected(self):
        with pytest.raises(SimulationError):
            register_backend("broken", "not callable")

    def test_custom_backend_registers_and_resolves(self, monkeypatch):
        # Isolate the registry so the test backend does not leak into the
        # process-wide namespace.
        monkeypatch.setattr(
            registry_module, "_FACTORIES", dict(registry_module._FACTORIES)
        )
        monkeypatch.setattr(
            registry_module, "_INSTANCES", dict(registry_module._INSTANCES)
        )

        class EchoBackend:
            name = "echo"

            def run(self, circuit, initial_state=None, options=None):
                # Protocol-minimal backend: receives the whole RunOptions.
                assert options is not None and not options.optimize
                return Statevector.zero_state(circuit.num_qubits)

        register_backend("echo", EchoBackend)
        assert "echo" in available_backends()
        state = run(Circuit(2).h(0), backend="echo")
        assert state == Statevector.zero_state(2)

    def test_available_backends_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)
        assert {"statevector", "density_matrix"} <= set(names)


class TestUnifiedRun:
    def test_run_default_backend(self):
        state = run(Circuit(1).h(0))
        assert isinstance(state, Statevector)

    def test_run_density_backend(self):
        state = run(Circuit(1).h(0), backend="density_matrix")
        assert isinstance(state, DensityMatrix)

    def test_run_with_backend_instance(self):
        backend = DensityMatrixBackend(dtype=np.complex64)
        state = run(Circuit(1).h(0), backend=backend)
        assert state.data.dtype == np.complex64

    def test_run_forwards_optimize(self):
        circuit = Circuit(1).rz(0.5, 0).rz(-0.5, 0)
        from repro import RunOptions

        assert run(circuit, options=RunOptions(optimize=True)) == run(circuit)
