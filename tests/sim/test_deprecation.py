"""Legacy ``run(optimize=/passes=/noise_model=)`` keywords are deprecated."""

import warnings

import pytest

from repro import Circuit, NoiseModel, RunOptions, depolarizing
from repro.sim import DensityMatrixBackend, StatevectorBackend, run
from repro.transpile import FuseAdjacentGates


def _caught(callable_):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        callable_()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestLegacyKeywordDeprecation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"optimize": True},
            {"passes": [FuseAdjacentGates()]},
        ],
        ids=["optimize", "passes"],
    )
    def test_backend_run_warns_exactly_once(self, kwargs):
        circuit = Circuit(1).h(0)
        caught = _caught(lambda: StatevectorBackend().run(circuit, **kwargs))
        assert len(caught) == 1
        assert "RunOptions" in str(caught[0].message)

    def test_noise_model_keyword_warns(self):
        model = NoiseModel().add_channel(depolarizing(0.01))
        circuit = Circuit(1).h(0)
        caught = _caught(
            lambda: DensityMatrixBackend().run(circuit, noise_model=model)
        )
        assert len(caught) == 1
        assert "noise_model" in str(caught[0].message)

    def test_module_run_warns_exactly_once(self):
        # The module-level run() delegates to BaseBackend.run with an
        # already-built RunOptions, so the warning must not double up.
        circuit = Circuit(1).h(0)
        caught = _caught(lambda: run(circuit, optimize=True))
        assert len(caught) == 1

    def test_warning_points_at_the_caller(self):
        circuit = Circuit(1).h(0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run(circuit, optimize=True)
        assert caught[0].filename == __file__

    def test_options_path_is_silent(self):
        circuit = Circuit(1).h(0)
        options = RunOptions(optimize=True, passes=[FuseAdjacentGates()])
        assert _caught(lambda: StatevectorBackend().run(circuit, options=options)) == []
        assert _caught(lambda: run(circuit, options=options)) == []

    def test_backend_keyword_is_not_deprecated(self):
        circuit = Circuit(1).h(0)
        assert _caught(lambda: run(circuit, backend="density_matrix")) == []

    def test_legacy_and_options_paths_agree(self):
        circuit = Circuit(1).rz(0.3, 0).rz(-0.3, 0)
        with pytest.warns(DeprecationWarning):
            legacy = run(circuit, optimize=True)
        assert legacy == run(circuit, options=RunOptions(optimize=True))
