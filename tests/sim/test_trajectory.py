"""The Monte-Carlo trajectory backend: unbiasedness, determinism, sharding."""

import numpy as np
import pytest

from repro import (
    Circuit,
    NoiseModel,
    Pauli,
    RunOptions,
    TrajectoryBackend,
    amplitude_damping,
    available_backends,
    depolarizing,
    execute,
    get_backend,
)
from repro.utils.exceptions import ExecutionError


def _ghz(n):
    circuit = Circuit(n).h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


def _layered(n, depth=3):
    circuit = Circuit(n)
    for layer in range(depth):
        for q in range(n):
            circuit.ry(0.3 + 0.1 * (layer + q), q)
        for q in range(n - 1):
            circuit.cx(q, q + 1)
    return circuit


class TestRegistration:
    def test_registered(self):
        assert "trajectory" in available_backends()
        backend = get_backend("trajectory")
        assert isinstance(backend, TrajectoryBackend)
        assert backend.plan_mode == "trajectory"

    def test_accepts_gate_noise(self):
        # Unlike the statevector backend, gate noise is fine: channels
        # lower to sampled-Kraus ops.
        model = NoiseModel().add_channel(depolarizing(0.05))
        options = RunOptions(
            backend="trajectory", shots=16, seed=7, noise_model=model
        )
        result = execute(Circuit(2).h(0).cx(0, 1), options)
        assert result.counts.shots == 16


class TestUnbiasedness:
    """Trajectory averages estimate the exact density-matrix expectations."""

    @pytest.mark.parametrize(
        "circuit, model",
        [
            (_ghz(4), NoiseModel().add_channel(depolarizing(0.05))),
            (_layered(3), NoiseModel().add_channel(amplitude_damping(0.1))),
        ],
        ids=["ghz_depolarizing", "layered_damped"],
    )
    def test_within_five_sigma_of_density(self, circuit, model):
        observables = tuple(
            Pauli("Z", qubits=(q,)) for q in range(circuit.num_qubits)
        )
        exact = execute(
            circuit,
            RunOptions(
                backend="density_matrix", noise_model=model, observables=observables
            ),
        ).expectation_values
        trajectory = execute(
            circuit,
            RunOptions(
                backend="trajectory",
                shots=512,
                seed=11,
                noise_model=model,
                observables=observables,
            ),
        )
        stds = trajectory.metadata["expectation_std"]
        for estimate, reference, std in zip(
            trajectory.expectation_values, exact, stds
        ):
            assert abs(estimate - reference) <= 5 * max(std, 1e-3)

    def test_noiseless_static_circuit_takes_deterministic_fast_path(self):
        # No channels and no dynamic ops: the plan is deterministic, so
        # the trajectory backend computes one exact statevector instead of
        # looping shots (and the final state is retained as usual).
        result = execute(
            _ghz(3),
            RunOptions(
                backend="trajectory",
                shots=8,
                seed=3,
                observables=(Pauli("ZZ", qubits=(0, 1)),),
            ),
        )
        assert result.expectation_values[0] == pytest.approx(1.0, abs=1e-12)
        assert result.state is not None
        assert "expectation_std" not in result.metadata


class TestDeterminism:
    def _run(self, max_workers):
        model = NoiseModel().add_channel(depolarizing(0.03))
        return execute(
            _layered(3),
            RunOptions(
                backend="trajectory",
                shots=64,
                seed=42,
                memory=True,
                noise_model=model,
                observables=(Pauli("Z", qubits=(0,)),),
                max_workers=max_workers,
            ),
        )

    def test_same_seed_same_outcome(self):
        first, second = self._run(1), self._run(1)
        assert first.counts == second.counts
        assert first.memory == second.memory
        assert first.expectation_values == second.expectation_values

    def test_bitwise_identical_across_worker_counts(self):
        serial, parallel = self._run(1), self._run(4)
        assert serial.counts == parallel.counts
        assert serial.memory == parallel.memory
        assert serial.expectation_values == parallel.expectation_values
        assert (
            serial.metadata["expectation_std"]
            == parallel.metadata["expectation_std"]
        )


class TestContract:
    def test_shots_zero_rejected_for_stochastic_plans(self):
        model = NoiseModel().add_channel(depolarizing(0.1))
        with pytest.raises(ExecutionError, match="trajectory"):
            execute(
                Circuit(1).h(0),
                RunOptions(backend="trajectory", noise_model=model),
            )

    def test_no_final_state_retained(self):
        model = NoiseModel().add_channel(depolarizing(0.1))
        result = execute(
            Circuit(1).h(0),
            RunOptions(backend="trajectory", shots=4, seed=0, noise_model=model),
        )
        assert result.state is None
        with pytest.raises(ExecutionError, match="no final state"):
            result.expectation(Pauli("Z", qubits=(0,)))

    def test_counts_are_clbit_register_when_measuring(self):
        circuit = Circuit(2, num_clbits=1).h(0).measure(0, 0)
        result = execute(
            circuit, RunOptions(backend="trajectory", shots=32, seed=5)
        )
        assert result.counts.num_qubits == 1
        assert set(result.counts) <= {"0", "1"}
