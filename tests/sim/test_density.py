"""Tests for DensityMatrix and DensityMatrixBackend."""

import numpy as np
import pytest

from repro.bench.workloads import random_dense
from repro.circuit import Circuit
from repro.noise import amplitude_damping, depolarizing, phase_damping
from repro.sampling import sample_counts
from repro.sim import (
    DensityMatrix,
    DensityMatrixBackend,
    Statevector,
    StatevectorBackend,
    run,
)
from repro.execution import RunOptions
from repro.utils.exceptions import SimulationError


class TestDensityMatrixType:
    def test_zero_state(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.num_qubits == 2
        assert rho.probability("00") == 1.0
        assert rho.purity() == pytest.approx(1.0)

    def test_from_statevector_is_pure_projector(self):
        state = Statevector(np.array([1.0, 1.0]) / np.sqrt(2))
        rho = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.data, np.full((2, 2), 0.5))
        assert rho.purity() == pytest.approx(1.0)

    def test_from_bitstring(self):
        rho = DensityMatrix.from_bitstring("10")
        assert rho.probabilities_dict() == pytest.approx({"10": 1.0})

    def test_from_bad_bitstring(self):
        with pytest.raises(SimulationError):
            DensityMatrix.from_bitstring("1x")

    def test_validation_rejects_bad_trace(self):
        with pytest.raises(SimulationError, match="trace"):
            DensityMatrix(np.eye(2))

    def test_validation_rejects_non_hermitian(self):
        data = np.array([[0.5, 1.0], [0.0, 0.5]], dtype=complex)
        with pytest.raises(SimulationError, match="Hermitian"):
            DensityMatrix(data)

    def test_rejects_non_square(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.eye(3) / 3)

    def test_data_is_copy(self):
        rho = DensityMatrix.zero_state(1)
        rho.data[0, 0] = 99.0
        assert rho.probability("0") == 1.0

    def test_tensor_shape(self):
        assert DensityMatrix.zero_state(3).tensor().shape == (2,) * 6

    def test_probabilities_clip_negative_drift(self):
        data = np.array([[1.0 + 0j, 0.0], [0.0, -1e-14]])
        rho = DensityMatrix(data, validate=False)
        assert (rho.probabilities() >= 0).all()

    def test_probability_validates_width(self):
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(2).probability("0")

    def test_maximally_mixed_purity(self):
        rho = DensityMatrix(np.eye(4) / 4)
        assert rho.purity() == pytest.approx(0.25)
        assert rho.trace() == pytest.approx(1.0)

    def test_expectation_z(self):
        assert DensityMatrix.zero_state(1).expectation_z(0) == pytest.approx(1.0)
        assert DensityMatrix.from_bitstring("1").expectation_z(0) == pytest.approx(-1.0)
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(1).expectation_z(5)

    def test_expectation_operator(self):
        z = np.diag([1.0, -1.0])
        rho = DensityMatrix(np.eye(2) / 2)
        assert DensityMatrix.zero_state(1).expectation(z, [0]) == pytest.approx(1.0)
        assert rho.expectation(z, [0]) == pytest.approx(0.0)

    def test_expectation_validates(self):
        rho = DensityMatrix.zero_state(2)
        with pytest.raises(SimulationError):
            rho.expectation(np.eye(2), [5])
        with pytest.raises(SimulationError):
            rho.expectation(np.eye(2), [0, 0])
        with pytest.raises(SimulationError):
            rho.expectation(np.eye(4), [0])

    def test_fidelity_with_statevector(self):
        plus = Statevector(np.array([1.0, 1.0]) / np.sqrt(2))
        rho = DensityMatrix.from_statevector(plus)
        assert rho.fidelity(plus) == pytest.approx(1.0)
        minus = Statevector(np.array([1.0, -1.0]) / np.sqrt(2))
        assert rho.fidelity(minus) == pytest.approx(0.0, abs=1e-12)

    def test_fidelity_with_density_matrix(self):
        pure = DensityMatrix.zero_state(1)
        mixed = DensityMatrix(np.eye(2) / 2)
        assert pure.fidelity(pure) == pytest.approx(1.0)
        assert pure.fidelity(mixed) == pytest.approx(0.5)

    def test_fidelity_width_mismatch(self):
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(1).fidelity(DensityMatrix.zero_state(2))
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(1).fidelity(Statevector.zero_state(2))
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(1).fidelity("nope")

    def test_equality(self):
        assert DensityMatrix.zero_state(1) == DensityMatrix.zero_state(1)
        assert DensityMatrix.zero_state(1) != DensityMatrix(np.eye(2) / 2)
        assert DensityMatrix.zero_state(1).__eq__("x") is NotImplemented

    def test_repr(self):
        assert "DensityMatrix(2 qubits" in repr(DensityMatrix.zero_state(2))


class TestBackendBasics:
    def test_bell_state(self):
        rho = run(Circuit(2).h(0).cx(0, 1), backend="density_matrix")
        assert rho.probabilities_dict() == pytest.approx({"00": 0.5, "11": 0.5})
        assert rho.purity() == pytest.approx(1.0)

    def test_rejects_non_circuit(self):
        with pytest.raises(SimulationError):
            DensityMatrixBackend().run("not a circuit")

    def test_bad_dtype(self):
        with pytest.raises(SimulationError):
            DensityMatrixBackend(dtype=np.float64)

    def test_complex64_mode(self):
        backend = DensityMatrixBackend(dtype=np.complex64)
        assert backend.dtype == np.dtype(np.complex64)
        rho = backend.run(Circuit(2).h(0).cx(0, 1))
        assert rho.data.dtype == np.complex64
        assert rho.probabilities_dict() == pytest.approx(
            {"00": 0.5, "11": 0.5}, abs=1e-6
        )

    def test_initial_bitstring(self):
        rho = DensityMatrixBackend().run(Circuit(2).x(0), initial_state="01")
        assert rho.probability("11") == pytest.approx(1.0)

    def test_initial_statevector(self):
        plus = Statevector(np.array([1.0, 1.0]) / np.sqrt(2))
        rho = DensityMatrixBackend().run(Circuit(1).h(0), initial_state=plus)
        assert rho.probability("0") == pytest.approx(1.0)

    def test_initial_density_matrix(self):
        mixed = DensityMatrix(np.eye(2) / 2)
        rho = DensityMatrixBackend().run(Circuit(1).h(0), initial_state=mixed)
        # The maximally mixed state is invariant under unitaries.
        assert np.allclose(rho.data, np.eye(2) / 2)

    def test_initial_state_width_mismatch(self):
        backend = DensityMatrixBackend()
        with pytest.raises(SimulationError):
            backend.run(Circuit(2).h(0), initial_state="0")
        with pytest.raises(SimulationError):
            backend.run(Circuit(2).h(0), initial_state=Statevector.zero_state(1))
        with pytest.raises(SimulationError):
            backend.run(Circuit(2).h(0), initial_state=DensityMatrix.zero_state(1))
        with pytest.raises(SimulationError):
            backend.run(Circuit(2).h(0), initial_state=123)

    def test_optimize_matches_unoptimized(self):
        circuit = random_dense(4, 40, seed=9)
        backend = DensityMatrixBackend()
        assert np.allclose(
            backend.run(circuit).data,
            backend.run(circuit, options=RunOptions(optimize=True)).data,
        )


class TestStatevectorEquivalence:
    """Acceptance criterion: noiseless density == statevector simulation."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_5q_fidelity_and_counts(self, seed):
        circuit = random_dense(5, 60, seed=seed)
        psi = StatevectorBackend().run(circuit)
        rho = DensityMatrixBackend().run(circuit)
        assert rho.fidelity(psi) >= 1.0 - 1e-9
        sv_counts = sample_counts(circuit, 512, seed=seed, backend="statevector")
        dm_counts = sample_counts(circuit, 512, seed=seed, backend="density_matrix")
        assert sv_counts == dm_counts

    def test_ghz_probabilities_identical(self):
        circuit = Circuit(5, name="ghz")
        circuit.h(0)
        for q in range(4):
            circuit.cx(q, q + 1)
        psi = StatevectorBackend().run(circuit)
        rho = DensityMatrixBackend().run(circuit)
        assert np.allclose(rho.probabilities(), psi.probabilities(), atol=1e-12)


class TestNoisyEvolution:
    def test_channel_instruction_mixes(self):
        circuit = Circuit(1).h(0).channel(phase_damping(0.5), (0,))
        rho = run(circuit, backend="density_matrix")
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_trace_preserved_through_deep_noisy_circuit(self):
        circuit = Circuit(3)
        channel = depolarizing(0.05)
        for layer in range(10):
            for q in range(3):
                circuit.rx(0.3 * (layer + 1), q)
                circuit.channel(channel, (q,))
            circuit.cx(0, 1).cx(1, 2)
        rho = run(circuit, backend="density_matrix")
        assert rho.trace() == pytest.approx(1.0)

    def test_amplitude_damping_full_strength_resets(self):
        circuit = Circuit(1).x(0).channel(amplitude_damping(1.0), (0,))
        rho = run(circuit, backend="density_matrix")
        assert rho.probability("0") == pytest.approx(1.0)

    def test_transpiled_noisy_circuit_matches(self):
        circuit = Circuit(2)
        circuit.rz(0.3, 0).ry(0.2, 0).channel(depolarizing(0.1), (0,))
        circuit.cx(0, 1).channel(amplitude_damping(0.2), (1,))
        circuit.rz(0.7, 1).rz(-0.7, 1)  # cancels
        backend = DensityMatrixBackend()
        plain = backend.run(circuit)
        fused = backend.run(circuit, options=RunOptions(optimize=True))
        assert np.allclose(plain.data, fused.data, atol=1e-12)

    def test_statevector_backend_rejects_channels(self):
        circuit = Circuit(1).channel(depolarizing(0.1), (0,))
        with pytest.raises(SimulationError, match="density_matrix"):
            run(circuit)
