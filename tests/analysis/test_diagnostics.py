"""Diagnostic / AnalysisReport value-object contracts."""

import pytest

from repro.analysis import (
    ERROR,
    INFO,
    WARNING,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
)


def _d(severity=WARNING, code="unused-qubit", message="msg", **kwargs):
    return Diagnostic(severity, code, message, **kwargs)


class TestDiagnostic:
    def test_fields_and_defaults(self):
        d = _d()
        assert d.severity == WARNING
        assert d.code == "unused-qubit"
        assert d.site is None
        assert d.scope == "circuit"

    def test_severity_rank_orders_most_severe_first(self):
        assert _d(ERROR).severity_rank < _d(WARNING).severity_rank
        assert _d(WARNING).severity_rank < _d(INFO).severity_rank

    def test_invalid_severity_rejected(self):
        with pytest.raises(AnalysisError, match="severity"):
            _d("fatal")

    def test_empty_code_rejected(self):
        with pytest.raises(AnalysisError, match="code"):
            _d(code="")

    def test_empty_message_rejected(self):
        with pytest.raises(AnalysisError, match="message"):
            _d(message="")

    def test_invalid_scope_rejected(self):
        with pytest.raises(AnalysisError, match="scope"):
            _d(scope="module")

    def test_bool_site_rejected(self):
        with pytest.raises(AnalysisError, match="site"):
            _d(site=True)

    def test_negative_site_rejected(self):
        with pytest.raises(AnalysisError, match="site"):
            _d(site=-1)

    def test_site_coerced_to_int(self):
        import numpy as np

        d = _d(site=np.int64(3))
        assert d.site == 3
        assert type(d.site) is int

    def test_str_mentions_site_noun_per_scope(self):
        assert "instruction 2" in str(_d(site=2))
        assert "op 2" in str(_d(site=2, scope="plan"))
        assert "@" not in str(_d())

    def test_as_dict_round_trip(self):
        d = _d(ERROR, "non-cptp-channel", "leaky", site=1, scope="circuit")
        assert d.as_dict() == {
            "severity": ERROR,
            "code": "non-cptp-channel",
            "message": "leaky",
            "site": 1,
            "scope": "circuit",
        }

    def test_frozen(self):
        with pytest.raises(Exception):
            _d().severity = ERROR


class TestAnalysisReport:
    def test_severity_views(self):
        report = AnalysisReport([_d(ERROR), _d(WARNING), _d(INFO), _d(ERROR)])
        assert len(report) == 4
        assert len(report.errors) == 2
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert report.has_errors

    def test_empty_report_is_falsy_and_clean(self):
        report = AnalysisReport()
        assert not report
        assert not report.has_errors
        assert report.raise_if_errors() is report

    def test_rejects_non_diagnostics(self):
        with pytest.raises(AnalysisError, match="Diagnostic"):
            AnalysisReport(["oops"])

    def test_by_code_and_codes(self):
        report = AnalysisReport(
            [_d(code="b"), _d(code="a"), _d(code="b", severity=ERROR)]
        )
        assert len(report.by_code("b")) == 2
        assert report.by_code("zzz") == ()
        assert report.codes() == ("b", "a")

    def test_raise_if_errors_carries_diagnostics(self):
        errors = (_d(ERROR, "non-cptp-channel", "leaky", site=3),)
        report = AnalysisReport(errors + (_d(WARNING),))
        with pytest.raises(AnalysisError, match="non-cptp-channel") as info:
            report.raise_if_errors("circuit 0")
        assert info.value.diagnostics == errors
        assert "circuit 0" in str(info.value)

    def test_warnings_never_raise(self):
        AnalysisReport([_d(WARNING), _d(INFO)]).raise_if_errors()

    def test_add_merges_in_order(self):
        a, b = _d(code="a"), _d(code="b")
        merged = AnalysisReport([a]) + AnalysisReport([b])
        assert tuple(merged) == (a, b)

    def test_sequence_protocol(self):
        d = _d()
        report = AnalysisReport([d])
        assert report[0] is d
        assert list(iter(report)) == [d]

    def test_equality_and_hash(self):
        a = AnalysisReport([_d()])
        b = AnalysisReport([_d()])
        assert a == b
        assert hash(a) == hash(b)
        assert a != AnalysisReport()

    def test_as_dicts(self):
        rows = AnalysisReport([_d(site=0)]).as_dicts()
        assert rows[0]["code"] == "unused-qubit"
