"""``python -m repro.analysis`` CLI: exit codes and output formats."""

import json

import repro.analysis.__main__ as cli


class TestMain:
    def test_smoke_run_is_clean_and_exits_zero(self, capsys):
        assert cli.main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "ghz" in out
        assert "0 error(s)" in out

    def test_json_output_parses(self, capsys):
        assert cli.main(["--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_errors"] == 0
        names = {row["name"] for row in payload["workloads"]}
        assert "parameterized_rotations" in names
        assert all("diagnostics" in row for row in payload["workloads"])

    def test_errors_exit_nonzero(self, monkeypatch, capsys):
        def fake_collect(smoke, backend, context_kwargs):
            return [
                {
                    "name": "broken",
                    "num_qubits": 2,
                    "backend": "statevector",
                    "plan_ops": 1,
                    "errors": 1,
                    "warnings": 0,
                    "infos": 0,
                    "diagnostics": [
                        {
                            "severity": "error",
                            "code": "plan-shape-mismatch",
                            "message": "bad tensor",
                            "site": 0,
                            "scope": "plan",
                        }
                    ],
                }
            ]

        monkeypatch.setattr(cli, "_collect", fake_collect)
        assert cli.main([]) == 1
        captured = capsys.readouterr()
        assert "plan-shape-mismatch" in captured.out
        assert "1 error(s)" in captured.err

    def test_strict_fails_on_warnings(self, monkeypatch, capsys):
        def fake_collect(smoke, backend, context_kwargs):
            row = {
                "name": "sloppy",
                "num_qubits": 2,
                "backend": "statevector",
                "plan_ops": 1,
                "errors": 0,
                "warnings": 1,
                "infos": 0,
                "diagnostics": [
                    {
                        "severity": "warning",
                        "code": "unused-qubit",
                        "message": "qubit 1 is never used",
                        "site": None,
                        "scope": "circuit",
                    }
                ],
            }
            return [row]

        monkeypatch.setattr(cli, "_collect", fake_collect)
        assert cli.main([]) == 0  # warnings alone pass by default
        assert cli.main(["--strict"]) == 1
        assert "warning(s)" in capsys.readouterr().err

    def test_backend_override(self, capsys):
        assert cli.main(["--smoke", "--backend", "statevector", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Workloads that pin a backend keep it; unpinned ones use the flag.
        backends = {row["backend"] for row in payload["workloads"]}
        assert "statevector" in backends
        assert "density_matrix" in backends


class TestFilterFlags:
    def test_select_restricts_codes(self, capsys):
        assert cli.main(["--smoke", "--select", "unused-qubit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {
            d["code"]
            for row in payload["workloads"]
            for d in row["diagnostics"]
        }
        assert codes <= {"unused-qubit"}

    def test_severity_override_can_gate_the_run(self, capsys):
        # Demoting everything to info leaves zero errors/warnings...
        assert (
            cli.main(
                ["--smoke", "--strict", "--severity", "unused-qubit=info"]
            )
            == 0
        )
        capsys.readouterr()

    def test_malformed_severity_is_a_usage_error(self):
        import pytest

        with pytest.raises(SystemExit, match="CODE=LEVEL"):
            cli.main(["--severity", "unused-qubit"])


class TestCertifyMode:
    def test_certify_smoke_is_clean_and_exits_zero(self, capsys):
        assert cli.main(["--certify", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "0 failure(s)" in out
        # The dynamic-op circuit always rides along.
        assert "dynamic_feedback" in out

    def test_certify_json_covers_all_families(self, capsys):
        assert cli.main(["--certify", "--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        names = {row["name"] for row in payload["workloads"]}
        assert {
            "ghz",
            "layered_rotations",
            "random_dense",
            "ghz_depolarizing",  # channel circuits certify too
            "layered_damped",
            "parameterized_rotations",
            "dynamic_feedback",
        } <= names
        for row in payload["workloads"]:
            assert row["certified"] is True, row
            # The no-dense-2^n acceptance bound: supports stay far
            # below the register width on every workload.
            assert row["max_support"] <= 4, row

    def test_certify_failure_exits_nonzero(self, monkeypatch, capsys):
        def fake_certify(smoke):
            return [
                {
                    "name": "broken",
                    "num_qubits": 2,
                    "passes": 1,
                    "sites": 1,
                    "max_support": 1,
                    "max_deviation": 1.0,
                    "certified": False,
                    "failure": "pass 'Bad' failed certification: "
                    "error[certify-not-equivalent] @ instruction 0: nope",
                    "certificates": [],
                }
            ]

        monkeypatch.setattr(cli, "_collect_certify", fake_certify)
        assert cli.main(["--certify"]) == 1
        captured = capsys.readouterr()
        assert "certify-not-equivalent" in captured.out
        assert "certification failed" in captured.err
