"""``python -m repro.analysis`` CLI: exit codes and output formats."""

import json

import repro.analysis.__main__ as cli


class TestMain:
    def test_smoke_run_is_clean_and_exits_zero(self, capsys):
        assert cli.main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "ghz" in out
        assert "0 error(s)" in out

    def test_json_output_parses(self, capsys):
        assert cli.main(["--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_errors"] == 0
        names = {row["name"] for row in payload["workloads"]}
        assert "parameterized_rotations" in names
        assert all("diagnostics" in row for row in payload["workloads"])

    def test_errors_exit_nonzero(self, monkeypatch, capsys):
        def fake_collect(smoke, backend):
            return [
                {
                    "name": "broken",
                    "num_qubits": 2,
                    "backend": "statevector",
                    "plan_ops": 1,
                    "errors": 1,
                    "warnings": 0,
                    "infos": 0,
                    "diagnostics": [
                        {
                            "severity": "error",
                            "code": "plan-shape-mismatch",
                            "message": "bad tensor",
                            "site": 0,
                            "scope": "plan",
                        }
                    ],
                }
            ]

        monkeypatch.setattr(cli, "_collect", fake_collect)
        assert cli.main([]) == 1
        captured = capsys.readouterr()
        assert "plan-shape-mismatch" in captured.out
        assert "1 error(s)" in captured.err

    def test_strict_fails_on_warnings(self, monkeypatch, capsys):
        def fake_collect(smoke, backend):
            row = {
                "name": "sloppy",
                "num_qubits": 2,
                "backend": "statevector",
                "plan_ops": 1,
                "errors": 0,
                "warnings": 1,
                "infos": 0,
                "diagnostics": [
                    {
                        "severity": "warning",
                        "code": "unused-qubit",
                        "message": "qubit 1 is never used",
                        "site": None,
                        "scope": "circuit",
                    }
                ],
            }
            return [row]

        monkeypatch.setattr(cli, "_collect", fake_collect)
        assert cli.main([]) == 0  # warnings alone pass by default
        assert cli.main(["--strict"]) == 1
        assert "warning(s)" in capsys.readouterr().err

    def test_backend_override(self, capsys):
        assert cli.main(["--smoke", "--backend", "statevector", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Workloads that pin a backend keep it; unpinned ones use the flag.
        backends = {row["backend"] for row in payload["workloads"]}
        assert "statevector" in backends
        assert "density_matrix" in backends
