"""Every bench workload must lint clean: zero error-severity diagnostics.

This is the acceptance gate the CLI enforces in CI; the test pins it at
the library level so a new workload (or a new rule) that introduces an
error-severity finding fails here first, with a readable diff.
"""

import pytest

from repro.analysis import AnalysisContext, analyze, verify_plan
from repro.bench.workloads import default_workloads, parameterized_rotations
from repro.plan import compile_plan
from repro.sim import get_backend


def _cases():
    for workload in default_workloads(smoke=True):
        yield pytest.param(
            workload.build,
            workload.backend or "statevector",
            id=f"{workload.name}-n{workload.num_qubits}",
        )
    yield pytest.param(
        lambda: parameterized_rotations(4)[0],
        "statevector",
        id="parameterized_rotations-n4",
    )


@pytest.mark.parametrize("build, backend_name", _cases())
def test_workload_has_zero_error_diagnostics(build, backend_name):
    circuit = build()
    backend = get_backend(backend_name)
    report = analyze(
        circuit, context=AnalysisContext(mode=backend.plan_mode)
    )
    report = report + verify_plan(compile_plan(circuit, backend))
    assert not report.has_errors, [str(d) for d in report.errors]
