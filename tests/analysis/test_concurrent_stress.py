"""Certifier + sanitizer determinism under concurrency.

The certificates and sanitizer diagnostics are part of the result
surface, so they inherit the library's core parallelism contract:
worker count and thread interleaving must never change them.  These
tests hammer the plan cache from threads and compare parallel
(``max_workers=2``) against serial execution bitwise — states, counts,
certificates, and diagnostics alike.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Circuit, RunOptions, clear_plan_cache, execute
from repro.circuit import Parameter
from repro.plan import compile_plan, plan_cache_info
from repro.sim import get_backend


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _template(num_qubits=4):
    theta = Parameter("theta")
    circuit = Circuit(num_qubits)
    for q in range(num_qubits):
        circuit.h(q)
        circuit.h(q)  # cancellable: gives the certifier real sites
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    circuit.rz(theta, 0)
    return circuit


class TestPlanCacheUnderThreads:
    def test_concurrent_certified_compiles_share_one_plan(self):
        circuit = _template()
        backend = get_backend("statevector")
        options = RunOptions(optimize=True, certify=True)

        def compile_once(_):
            return compile_plan(circuit, backend, options)

        with ThreadPoolExecutor(max_workers=8) as pool:
            plans = list(pool.map(compile_once, range(16)))
        # A thread stampede may compile duplicates (the cache races
        # compile-then-put by design), but it must never corrupt them:
        # every plan carries identical certified certificates...
        reference = [s["certificate"] for s in plans[0].pass_stats]
        assert reference and all(
            c is not None and c["status"] == "certified" for c in reference
        )
        for plan in plans[1:]:
            assert [s["certificate"] for s in plan.pass_stats] == reference
        # ...and once the dust settles the cache serves one instance.
        settled = compile_plan(circuit, backend, options)
        assert compile_plan(circuit, backend, options) is settled

    def test_certified_and_uncertified_plans_are_distinct_entries(self):
        circuit = _template()
        backend = get_backend("statevector")
        plain = compile_plan(
            circuit, backend, RunOptions(optimize=True)
        )
        certified = compile_plan(
            circuit, backend, RunOptions(optimize=True, certify=True)
        )
        assert plain is not certified
        assert all(s["certificate"] is None for s in plain.pass_stats)
        assert all(
            s["certificate"] is not None for s in certified.pass_stats
        )
        assert plan_cache_info()["size"] >= 2

    def test_certificates_identical_across_threads_and_reruns(self):
        circuit = _template()
        backend = get_backend("statevector")
        options = RunOptions(optimize=True, certify=True)

        def certificate_dicts(_):
            plan = compile_plan(circuit, backend, options, use_cache=False)
            return [s["certificate"] for s in plan.pass_stats]

        with ThreadPoolExecutor(max_workers=4) as pool:
            all_runs = list(pool.map(certificate_dicts, range(8)))
        for run_result in all_runs[1:]:
            assert run_result == all_runs[0]


class TestParallelExecutionParity:
    def _sweep(self):
        return [{"theta": 0.1 * i} for i in range(6)]

    def test_states_and_certificates_match_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        circuit = _template()
        common = dict(
            parameter_sweep=self._sweep(),
            sweep_mode="per_element",
            optimize=True,
            certify=True,
            sanitize="warn",
            seed=5,
        )
        serial = execute(circuit, max_workers=1, **common)
        parallel = execute(circuit, max_workers=2, **common)
        ambient = execute(circuit, **common)  # workers from the env var
        for lhs in (parallel, ambient):
            assert len(lhs.results) == len(serial.results)
            for a, b in zip(serial.results, lhs.results):
                np.testing.assert_array_equal(a.state.data, b.state.data)

    def test_sampled_counts_match_serial_with_sanitizer_on(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SANITIZE", "strict")
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        serial = execute(
            circuit, shots=256, seed=9, shard_shots=4, max_workers=1
        )
        parallel = execute(
            circuit, shots=256, seed=9, shard_shots=4, max_workers=2
        )
        assert serial.counts == parallel.counts

    def test_batched_sweep_sanitized_matches_per_element(self):
        circuit = _template()
        sweep = self._sweep()
        batched = execute(
            circuit,
            parameter_sweep=sweep,
            sweep_mode="batched",
            sanitize="strict",
        )
        per_element = execute(
            circuit,
            parameter_sweep=sweep,
            sweep_mode="per_element",
            sanitize="strict",
        )
        for a, b in zip(batched.results, per_element.results):
            np.testing.assert_allclose(
                a.state.data, b.state.data, atol=1e-12
            )
