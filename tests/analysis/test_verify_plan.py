"""Mutation tests: hand-corrupt compiled plans, assert verify_plan catches it.

Each test compiles a *valid* circuit (cache disabled so the corruption
never leaks into the process-wide plan cache), verifies the clean plan
passes, then corrupts exactly one precomputed field the executor trusts
and asserts the verifier flags it with the right stable code.
"""

import numpy as np
import pytest

from repro.analysis import AnalysisError, verify_plan
from repro.circuit import Circuit, Parameter
from repro.plan import compile_plan
from repro.plan.plan import MeasureOp, ParametricSlotOp, UnitaryOp


def _plan(circuit, backend="statevector"):
    plan = compile_plan(circuit, backend, use_cache=False)
    assert not verify_plan(plan), "fixture plan must verify clean"
    return plan


def _first_op(plan, kind):
    for op in plan.ops:
        if isinstance(op, kind):
            return op
    raise AssertionError(f"no {kind.__name__} in plan")


class TestCleanPlans:
    def test_statevector_plan_verifies_clean(self):
        _plan(Circuit(2).h(0).cx(0, 1))

    def test_density_plan_verifies_clean(self):
        from repro.noise import depolarizing

        circuit = Circuit(2).h(0).channel(depolarizing(0.05), (0,)).cx(0, 1)
        _plan(circuit, backend="density_matrix")

    def test_trajectory_plan_verifies_clean(self):
        from repro.noise import depolarizing

        circuit = Circuit(2).h(0).channel(depolarizing(0.05), (0,))
        _plan(circuit, backend="trajectory")

    def test_dynamic_plan_verifies_clean(self):
        from repro.circuit import Instruction
        from repro.gates import get_gate

        circuit = (
            Circuit(2)
            .h(0)
            .measure(0, 0)
            .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
            .reset(0)
        )
        _plan(circuit)

    def test_parametric_template_verifies_clean(self):
        theta = Parameter("theta")
        _plan(Circuit(1).ry(theta, 0))

    def test_requires_an_execution_plan(self):
        with pytest.raises(AnalysisError, match="ExecutionPlan"):
            verify_plan(Circuit(1).h(0))


class TestCorruptedPlans:
    """One corrupted-field class per test; codes are the API under test."""

    def test_out_of_range_target(self):
        plan = _plan(Circuit(2).h(0).cx(0, 1))
        op = _first_op(plan, UnitaryOp)
        op.targets = (7,)
        report = verify_plan(plan)
        assert "plan-target-range" in report.codes()
        assert report.has_errors

    def test_duplicate_targets(self):
        plan = _plan(Circuit(2).h(0).cx(0, 1))
        two_qubit = [
            op
            for op in plan.ops
            if isinstance(op, UnitaryOp) and len(op.targets) == 2
        ][0]
        two_qubit.targets = (1, 1)
        report = verify_plan(plan)
        assert "duplicate" in " ".join(d.message for d in report.errors)

    def test_wrong_shape_tensor(self):
        plan = _plan(Circuit(2).h(0).cx(0, 1))
        op = _first_op(plan, UnitaryOp)
        # Rank 3 can never be (2,) * 2k for any target count.
        op.tensor = np.zeros((2, 2, 2), dtype=plan.dtype)
        report = verify_plan(plan)
        assert "plan-shape-mismatch" in report.codes()

    def test_dtype_mismatch(self):
        plan = _plan(Circuit(1).h(0))
        op = _first_op(plan, UnitaryOp)
        op.tensor = op.tensor.astype(np.complex64)
        report = verify_plan(plan)
        assert "plan-dtype-mismatch" in report.codes()

    def test_corrupted_contraction_axes(self):
        plan = _plan(Circuit(1).h(0))
        op = _first_op(plan, UnitaryOp)
        op.in_axes = (5,)
        report = verify_plan(plan)
        assert "plan-axis-range" in report.codes()

    def test_corrupted_batch_targets(self):
        plan = _plan(Circuit(1).h(0))
        op = _first_op(plan, UnitaryOp)
        op.batch_targets = (9,)
        report = verify_plan(plan)
        assert "plan-axis-range" in report.codes()

    def test_dangling_clbit_on_measure(self):
        plan = _plan(Circuit(1).h(0).measure(0, 0))
        op = _first_op(plan, MeasureOp)
        op.clbit = 5  # beyond the plan's 1-clbit register
        report = verify_plan(plan)
        assert "plan-clbit-range" in report.codes()

    def test_cached_width_mismatch_on_measure(self):
        plan = _plan(Circuit(2).h(0).measure(0, 0))
        op = _first_op(plan, MeasureOp)
        op.num_qubits = 3
        report = verify_plan(plan)
        assert "plan-width-mismatch" in report.codes()

    def test_unknown_gate_in_parametric_slot(self):
        theta = Parameter("theta")
        plan = _plan(Circuit(1).ry(theta, 0))
        op = _first_op(plan, ParametricSlotOp)
        op.gate_name = "no-such-gate"
        report = verify_plan(plan)
        assert "plan-unknown-gate" in report.codes()

    def test_arity_mismatch_in_parametric_slot(self):
        theta = Parameter("theta")
        plan = _plan(Circuit(2).ry(theta, 0))
        op = _first_op(plan, ParametricSlotOp)
        op.targets = (0, 1)  # ry is a 1-qubit gate
        report = verify_plan(plan)
        assert "plan-unknown-gate" in report.codes()

    def test_unbindable_symbol_in_parametric_slot(self):
        theta = Parameter("theta")
        plan = _plan(Circuit(1).ry(theta, 0))
        op = _first_op(plan, ParametricSlotOp)
        op.parameters = (Parameter("ghost"),)
        report = verify_plan(plan)
        assert "plan-unbound-symbol" in report.codes()

    def test_mode_foreign_op(self):
        from repro.plan.plan import DENSITY

        pure = _plan(Circuit(1).h(0))
        density = _plan(Circuit(1).h(0), backend="density_matrix")
        density._ops = pure.ops  # statevector ops inside a density plan
        assert density.mode == DENSITY
        report = verify_plan(density)
        assert "plan-mode-mismatch" in report.codes()

    def test_unknown_plan_mode(self):
        plan = _plan(Circuit(1).h(0))
        plan._mode = "holographic"
        report = verify_plan(plan)
        assert report.codes() == ("plan-mode-mismatch",)

    def test_corrupted_conditional_inner(self):
        from repro.circuit import Instruction
        from repro.gates import get_gate
        from repro.plan.plan import ConditionalOp

        circuit = (
            Circuit(2)
            .measure(0, 0)
            .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
        )
        plan = _plan(circuit)
        conditional = _first_op(plan, ConditionalOp)
        conditional.inner.targets = (9,)
        report = verify_plan(plan)
        assert "plan-target-range" in report.codes()

    def test_conditional_value_not_a_bit(self):
        from repro.circuit import Instruction
        from repro.gates import get_gate
        from repro.plan.plan import ConditionalOp

        circuit = (
            Circuit(2)
            .measure(0, 0)
            .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
        )
        plan = _plan(circuit)
        _first_op(plan, ConditionalOp).value = 2
        report = verify_plan(plan)
        assert "plan-clbit-range" in report.codes()

    def test_duplicate_parameter_symbols(self):
        theta = Parameter("theta")
        plan = _plan(Circuit(1).ry(theta, 0))
        plan._parameters = (Parameter("theta"), Parameter("theta"))
        report = verify_plan(plan)
        assert "plan-unbound-symbol" in report.codes()

    def test_site_points_at_the_corrupted_op(self):
        plan = _plan(Circuit(2).h(0).cx(0, 1))
        plan.ops[1].targets = (7, 0)
        report = verify_plan(plan)
        assert {d.site for d in report.errors} == {1}
        assert all(d.scope == "plan" for d in report.errors)


class TestDensityCorruption:
    def test_corrupted_col_targets(self):
        from repro.plan.plan import DensityUnitaryOp

        plan = _plan(Circuit(2).h(0).cx(0, 1), backend="density_matrix")
        op = _first_op(plan, DensityUnitaryOp)
        op.col_targets = tuple(op.row_targets)  # must be shifted by n
        report = verify_plan(plan)
        assert "plan-axis-range" in report.codes()

    def test_missing_conjugate_kraus_tensor(self):
        from repro.noise import depolarizing
        from repro.plan.plan import DensityKrausOp

        circuit = Circuit(1).channel(depolarizing(0.1), (0,))
        plan = _plan(circuit, backend="density_matrix")
        op = _first_op(plan, DensityKrausOp)
        op.conj_tensors = op.conj_tensors[:-1]
        report = verify_plan(plan)
        assert "plan-shape-mismatch" in report.codes()

    def test_empty_kraus_set(self):
        from repro.noise import depolarizing
        from repro.plan.plan import TrajectoryKrausOp

        circuit = Circuit(1).channel(depolarizing(0.1), (0,))
        plan = _plan(circuit, backend="trajectory")
        op = _first_op(plan, TrajectoryKrausOp)
        op.tensors = ()
        report = verify_plan(plan)
        assert "plan-shape-mismatch" in report.codes()
