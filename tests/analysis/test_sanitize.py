"""Runtime numerical sanitizer: modes, detection, and zero-cost-off wiring."""

import numpy as np
import pytest

from repro import Circuit, RunOptions, execute
from repro.analysis import Sanitizer, SanitizerWarning, sanitize_batch
from repro.circuit import Gate
from repro.execution.options import (
    SANITIZE_ENV_VAR,
    resolve_sanitize_mode,
)
from repro.plan import compile_plan
from repro.sim import get_backend, run
from repro.utils import ExecutionError, SanitizerError

#: A deliberately non-unitary "gate": norm grows 1.2x per application.
_LEAKY = Gate("leaky", 1, np.eye(2) * 1.2)


def _plan(circuit, backend="statevector"):
    return compile_plan(circuit, get_backend(backend))


class TestModeResolution:
    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "strict")
        assert resolve_sanitize_mode("warn") == "warn"

    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "warn")
        assert resolve_sanitize_mode(None) == "warn"
        monkeypatch.delenv(SANITIZE_ENV_VAR)
        assert resolve_sanitize_mode(None) == "off"

    def test_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "STRICT")
        assert resolve_sanitize_mode(None) == "strict"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ExecutionError, match="sanitize mode"):
            resolve_sanitize_mode("loud")

    def test_run_options_validates_sanitize(self):
        with pytest.raises(ExecutionError, match="sanitize"):
            RunOptions(sanitize="loud")
        assert RunOptions(sanitize=None).sanitize is None
        assert RunOptions(sanitize="strict").sanitize == "strict"

    def test_sanitizer_rejects_off(self):
        plan = _plan(Circuit(1).h(0))
        with pytest.raises(SanitizerError, match="warn.*strict"):
            Sanitizer(plan, "off")


class TestHealthyCircuits:
    def test_sanitized_run_is_bitwise_identical(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        baseline = run(circuit)
        sanitized = run(circuit, options=RunOptions(sanitize="strict"))
        np.testing.assert_array_equal(baseline.data, sanitized.data)

    def test_density_backend_sanitized(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        options = RunOptions(backend="density_matrix", sanitize="strict")
        baseline = run(circuit, backend="density_matrix")
        sanitized = run(circuit, options=options)
        np.testing.assert_array_equal(baseline.data, sanitized.data)

    def test_warn_mode_is_silent_on_healthy_runs(self, recwarn):
        run(Circuit(2).h(0).cx(0, 1), options=RunOptions(sanitize="warn"))
        assert not [
            w for w in recwarn.list if issubclass(w.category, SanitizerWarning)
        ]

    def test_execute_with_sanitize_and_shots(self):
        result = execute(
            Circuit(2).h(0).cx(0, 1), shots=128, seed=7, sanitize="strict"
        )
        baseline = execute(Circuit(2).h(0).cx(0, 1), shots=128, seed=7)
        assert result.counts == baseline.counts

    def test_env_var_flips_the_default(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "strict")
        state = run(Circuit(2).h(0).cx(0, 1))
        assert state.data is not None


class TestViolationDetection:
    def test_norm_drift_strict_raises_at_the_op(self):
        circuit = Circuit(1).h(0)
        circuit.append(_LEAKY, (0,))
        plan = _plan(circuit)
        backend = get_backend("statevector")
        with pytest.raises(SanitizerError, match="sanitize-norm-drift"):
            backend.execute_plan(plan, sanitize="strict")

    def test_norm_drift_warn_collects_and_warns(self):
        circuit = Circuit(1).h(0)
        circuit.append(_LEAKY, (0,))
        plan = _plan(circuit)
        backend = get_backend("statevector")
        classical = {}
        with pytest.warns(SanitizerWarning, match="sanitize-norm-drift"):
            backend.execute_plan(plan, classical=classical, sanitize="warn")
        codes = [d.code for d in classical["sanitizer"]]
        assert "sanitize-norm-drift" in codes
        site_hits = [d for d in classical["sanitizer"] if d.site is not None]
        assert site_hits, "violation must be pinned to the offending op"

    def test_off_mode_lets_the_leak_through(self):
        # The mutation control: without the sanitizer the broken op
        # evolves silently to an unnormalised state.
        circuit = Circuit(1).h(0)
        circuit.append(_LEAKY, (0,))
        state = run(circuit)
        assert abs(np.vdot(state.data, state.data) - 1.0) > 0.1

    def test_non_finite_detection(self):
        plan = _plan(Circuit(1).h(0))
        sanitizer = Sanitizer(plan, "warn")
        bad = np.full(2, np.nan, dtype=plan.dtype)
        sanitizer.after_op(bad, 0, object())
        assert [d.code for d in sanitizer.diagnostics] == [
            "sanitize-non-finite"
        ]

    def test_dtype_promotion_detection(self):
        plan = _plan(Circuit(1).h(0))
        sanitizer = Sanitizer(plan, "warn")
        promoted = np.zeros(
            2,
            dtype=np.complex64
            if plan.dtype == np.complex128
            else np.complex128,
        )
        sanitizer.after_op(promoted, 0, object())
        assert [d.code for d in sanitizer.diagnostics] == [
            "sanitize-dtype-promotion"
        ]

    def test_probability_sum_detection(self):
        plan = _plan(Circuit(1).h(0))
        sanitizer = Sanitizer(plan, "warn")
        # Normalised in 2-norm but carrying a tiny imaginary trace bleed
        # is impossible for pure states, so force the finish-time check
        # via a direct probability probe: zero state sums to 0 != 1.
        zero = np.zeros(2, dtype=plan.dtype)
        with pytest.warns(SanitizerWarning):
            findings = sanitizer.finish(zero)
        codes = {d.code for d in findings}
        assert "sanitize-norm-drift" in codes

    def test_strict_raises_on_first_finding(self):
        plan = _plan(Circuit(1).h(0))
        sanitizer = Sanitizer(plan, "strict")
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.after_op(np.full(2, np.inf, dtype=plan.dtype), 3, None)
        assert excinfo.value.diagnostics[0].code == "sanitize-non-finite"
        assert excinfo.value.diagnostics[0].site == 3


class TestDynamicAndBatchedPaths:
    def test_dynamic_circuit_sanitized(self):
        circuit = Circuit(2, num_clbits=1).h(0).measure(0, 0).reset(0)
        result = execute(circuit, seed=11, sanitize="strict")
        baseline = execute(circuit, seed=11)
        np.testing.assert_array_equal(
            result.state.data, baseline.state.data
        )

    def test_batched_sweep_sanitized(self):
        from repro.circuit import Parameter

        theta = Parameter("theta")
        template = Circuit(2).h(0)
        template.rz(theta, 0)
        template.cx(0, 1)
        sweep = [{"theta": v} for v in (0.1, 0.2, 0.3)]
        sanitized = execute(
            template,
            parameter_sweep=sweep,
            sweep_mode="batched",
            sanitize="strict",
        )
        baseline = execute(
            template, parameter_sweep=sweep, sweep_mode="batched"
        )
        for lhs, rhs in zip(sanitized.results, baseline.results):
            np.testing.assert_array_equal(lhs.state.data, rhs.state.data)

    def test_sanitize_batch_flags_broken_elements(self):
        plan = _plan(Circuit(1).h(0))
        batch = np.stack(
            [
                np.array([1.0, 0.0], dtype=plan.dtype),
                np.array([7.0, 0.0], dtype=plan.dtype),  # unnormalised
            ]
        )
        with pytest.warns(SanitizerWarning):
            findings = sanitize_batch(plan, batch, "warn")
        assert findings
        assert all(d.code.startswith("sanitize-") for d in findings)
        assert any("element 1" in d.message for d in findings)

    def test_sanitize_batch_clean_batch_is_quiet(self, recwarn):
        plan = _plan(Circuit(1).h(0))
        amp = 1.0 / np.sqrt(2.0)
        batch = np.array([[amp, amp]], dtype=plan.dtype)
        assert sanitize_batch(plan, batch, "warn") == ()
        assert not [
            w for w in recwarn.list if issubclass(w.category, SanitizerWarning)
        ]
