"""The AST fork-safety lint in tools/check_forksafety.py."""

import importlib.util
import pathlib
import sys

import pytest

_TOOL = (
    pathlib.Path(__file__).resolve().parents[2]
    / "tools"
    / "check_forksafety.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_forksafety", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_forksafety"] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        sys.modules.pop("check_forksafety", None)


def _check_source(lint, tmp_path, source):
    target = tmp_path / "mod.py"
    target.write_text(source)
    return lint.check([target])


class TestRepositoryIsClean:
    def test_default_scan_has_no_violations(self, lint):
        paths = [lint.ROOT / rel for rel in lint.DEFAULT_SCAN]
        assert lint.check(paths) == []

    def test_main_returns_zero(self, lint, capsys):
        assert lint.main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, lint, capsys):
        assert lint.main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err


class TestModuleRng:
    def test_module_level_default_rng_is_flagged(self, lint, tmp_path):
        violations = _check_source(
            lint,
            tmp_path,
            "import numpy as np\n_RNG = np.random.default_rng(7)\n",
        )
        assert len(violations) == 1
        assert "fork-module-rng" in violations[0]

    def test_module_level_random_instance_is_flagged(self, lint, tmp_path):
        violations = _check_source(
            lint, tmp_path, "import random\nshuffler = random.Random(3)\n"
        )
        assert [v for v in violations if "fork-module-rng" in v]

    def test_function_local_rng_is_fine(self, lint, tmp_path):
        source = (
            "import numpy as np\n"
            "def sample(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random()\n"
        )
        assert _check_source(lint, tmp_path, source) == []


class TestClosureTasks:
    def test_lambda_submit_is_flagged(self, lint, tmp_path):
        source = (
            "def go(pool):\n"
            "    return pool.submit(lambda: 1)\n"
        )
        violations = _check_source(lint, tmp_path, source)
        assert len(violations) == 1
        assert "fork-closure-task" in violations[0]

    def test_nested_function_submit_is_flagged(self, lint, tmp_path):
        source = (
            "def go(pool):\n"
            "    def task():\n"
            "        return 1\n"
            "    return pool.submit(task)\n"
        )
        violations = _check_source(lint, tmp_path, source)
        assert len(violations) == 1
        assert "fork-closure-task" in violations[0]
        assert "'task'" in violations[0]

    def test_nested_function_passed_to_run_tasks_is_flagged(
        self, lint, tmp_path
    ):
        source = (
            "def go():\n"
            "    def shim(x):\n"
            "        return x\n"
            "    return run_tasks(shim, [(1,)], 2)\n"
        )
        violations = _check_source(lint, tmp_path, source)
        assert [v for v in violations if "fork-closure-task" in v]

    def test_module_level_task_function_is_fine(self, lint, tmp_path):
        source = (
            "def task(x):\n"
            "    return x\n"
            "def go(pool):\n"
            "    return pool.submit(task, 1)\n"
        )
        assert _check_source(lint, tmp_path, source) == []


class TestLockHeldSubmission:
    def test_submit_under_lock_is_flagged(self, lint, tmp_path):
        source = (
            "def go(pool, fn):\n"
            "    with _POOL_LOCK:\n"
            "        return pool.submit(fn, 1)\n"
        )
        violations = _check_source(lint, tmp_path, source)
        assert len(violations) == 1
        assert "fork-lock-held" in violations[0]

    def test_run_tasks_under_self_lock_is_flagged(self, lint, tmp_path):
        source = (
            "def go(self, fn):\n"
            "    with self._lock:\n"
            "        return run_tasks(fn, [(1,)], 2)\n"
        )
        violations = _check_source(lint, tmp_path, source)
        assert [v for v in violations if "fork-lock-held" in v]

    def test_pool_creation_under_lock_is_fine(self, lint, tmp_path):
        # service.pool.get_pool deliberately creates/resizes the executor
        # under _POOL_LOCK; only *submission* under a lock is the hazard.
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def get(workers):\n"
            "    with _POOL_LOCK:\n"
            "        return ProcessPoolExecutor(max_workers=workers)\n"
        )
        assert _check_source(lint, tmp_path, source) == []

    def test_submit_outside_the_lock_is_fine(self, lint, tmp_path):
        source = (
            "def go(pool, fn):\n"
            "    with _POOL_LOCK:\n"
            "        ready = True\n"
            "    return pool.submit(fn, ready)\n"
        )
        assert _check_source(lint, tmp_path, source) == []

    def test_non_lock_context_manager_is_fine(self, lint, tmp_path):
        source = (
            "def go(pool, fn, path):\n"
            "    with open(path) as handle:\n"
            "        return pool.submit(fn, handle.name)\n"
        )
        assert _check_source(lint, tmp_path, source) == []


class TestMainReporting:
    def test_violations_exit_nonzero_with_codes(
        self, lint, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n_RNG = np.random.default_rng()\n"
        )
        assert lint.main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "fork-module-rng" in err
        assert "violation" in err
