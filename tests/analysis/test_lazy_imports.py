"""The zero-cost-off guarantee: default paths never import certify/sanitize.

``sanitize="off"`` / ``certify=False`` promise *zero* added imports on
the hot path.  These tests run real interpreters (subprocesses, so no
pollution from the test session's own imports) and assert the certifier
and sanitizer modules are absent from ``sys.modules`` after exercising
the default execution paths — and present once the feature is switched
on, proving the lazy mechanism actually resolves.
"""

import subprocess
import sys

import pytest

_GUARDED = ("repro.analysis.certify", "repro.analysis.sanitize")


def _run(body: str) -> None:
    code = body + (
        "\nimport sys\n"
        f"for name in {_GUARDED!r}:\n"
        "    assert name not in sys.modules, f'{name} imported eagerly'\n"
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True, env=None, timeout=120
    )


class TestDefaultPathsStayLean:
    def test_import_facade(self):
        # The facade imports repro.analysis eagerly; the certifier and
        # sanitizer submodules must stay behind the PEP 562 hooks.
        _run("import repro")

    def test_plain_execute(self):
        _run(
            "from repro import Circuit, execute\n"
            "execute(Circuit(2).h(0).cx(0, 1), shots=16, seed=1)\n"
        )

    def test_optimized_execute_without_certify(self):
        _run(
            "from repro import Circuit, execute\n"
            "execute(Circuit(2).h(0).h(0).cx(0, 1), optimize=True)\n"
        )

    def test_transpile_without_certify(self):
        _run(
            "from repro import Circuit, transpile\n"
            "transpile(Circuit(2).h(0).h(0).cx(0, 1))\n"
        )

    def test_explicit_sanitize_off(self):
        _run(
            "from repro import Circuit, RunOptions\n"
            "from repro.sim import run\n"
            "run(Circuit(1).h(0), options=RunOptions(sanitize='off'))\n"
        )


class TestFeaturesResolveLazily:
    def _modules_after(self, body: str) -> set:
        code = body + (
            "\nimport sys\n"
            "print('\\n'.join(sorted(m for m in sys.modules"
            " if m.startswith('repro'))))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            capture_output=True,
            text=True,
            timeout=120,
        )
        return set(out.stdout.split())

    def test_certify_pulls_in_the_certifier_only(self):
        modules = self._modules_after(
            "from repro import Circuit, transpile\n"
            "transpile(Circuit(2).h(0).h(0), certify=True)\n"
        )
        assert "repro.analysis.certify" in modules
        assert "repro.analysis.sanitize" not in modules

    def test_sanitize_pulls_in_the_sanitizer_only(self):
        modules = self._modules_after(
            "from repro import Circuit, RunOptions\n"
            "from repro.sim import run\n"
            "run(Circuit(1).h(0), options=RunOptions(sanitize='strict'))\n"
        )
        assert "repro.analysis.sanitize" in modules
        assert "repro.analysis.certify" not in modules

    def test_facade_lazy_exports_resolve(self):
        # Attribute access through the PEP 562 hook must hand back the
        # real objects (and only then import the module).
        modules = self._modules_after(
            "import repro.analysis as a\n"
            "assert a.certify_rewrite.__module__ == 'repro.analysis.certify'\n"
            "assert a.Sanitizer.__module__ == 'repro.analysis.sanitize'\n"
            "assert a.Certificate is not None\n"
            "assert a.SanitizerWarning is not None\n"
            "assert a.sanitize_batch is not None\n"
        )
        assert "repro.analysis.certify" in modules
        assert "repro.analysis.sanitize" in modules

    def test_unknown_lazy_export_raises_attribute_error(self):
        import repro.analysis

        with pytest.raises(AttributeError, match="no attribute"):
            repro.analysis.does_not_exist
