"""The AST layering lint in tools/check_layers.py."""

import importlib.util
import pathlib
import sys

import pytest

_TOOL = (
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "check_layers.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_layers", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_layers"] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        sys.modules.pop("check_layers", None)


class TestLayerResolution:
    def test_longest_prefix_wins(self, lint):
        assert lint.layer_of("repro.execution.options") == (
            "repro.execution.options",
            5,
        )
        assert lint.layer_of("repro.execution.api")[0] == "repro.execution"

    def test_facade_and_cli_are_top(self, lint):
        assert lint.layer_of("repro")[1] == lint.TOP_RANK
        assert lint.layer_of("repro.bench.__main__")[1] == lint.TOP_RANK

    def test_unknown_module_has_no_rank(self, lint):
        assert lint.layer_of("somewhere.else") is None

    def test_module_name_from_path(self, lint):
        assert (
            lint.module_name(lint.SRC / "repro" / "utils" / "__init__.py")
            == "repro.utils"
        )
        assert (
            lint.module_name(lint.SRC / "repro" / "plan" / "plan.py")
            == "repro.plan.plan"
        )


class TestRepositoryIsClean:
    def test_no_violations_in_src(self, lint):
        assert lint.check() == []

    def test_main_returns_zero(self, lint, capsys):
        assert lint.main([]) == 0
        assert "clean" in capsys.readouterr().out


class TestViolationsAreCaught:
    def _run_on(self, lint, monkeypatch, tmp_path, source):
        package = tmp_path / "repro" / "utils"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(source)
        monkeypatch.setattr(lint, "SRC", tmp_path)
        return lint.check()

    def test_module_level_upward_import(self, lint, monkeypatch, tmp_path):
        violations = self._run_on(
            lint, monkeypatch, tmp_path, "from repro.sim import get_backend\n"
        )
        assert len(violations) == 1
        assert "module-level import" in violations[0]
        assert "repro.sim" in violations[0]

    def test_unwhitelisted_lazy_import(self, lint, monkeypatch, tmp_path):
        source = "def f():\n    from repro.bench import run_suite\n"
        violations = self._run_on(lint, monkeypatch, tmp_path, source)
        assert len(violations) == 1
        assert "not in the lazy whitelist" in violations[0]

    def test_whitelisted_lazy_import_passes(self, lint, monkeypatch, tmp_path):
        package = tmp_path / "repro" / "circuit"
        package.mkdir(parents=True)
        (package / "ok.py").write_text(
            "def f():\n    from repro.gates import get_gate\n"
        )
        monkeypatch.setattr(lint, "SRC", tmp_path)
        assert lint.check() == []

    def test_downward_import_passes(self, lint, monkeypatch, tmp_path):
        package = tmp_path / "repro" / "plan"
        package.mkdir(parents=True)
        (package / "ok.py").write_text(
            "from repro.circuit import Circuit\n"
            "from repro.utils.exceptions import SimulationError\n"
        )
        monkeypatch.setattr(lint, "SRC", tmp_path)
        assert lint.check() == []

    def test_type_checking_imports_count_as_lazy(
        self, lint, monkeypatch, tmp_path
    ):
        package = tmp_path / "repro" / "circuit"
        package.mkdir(parents=True)
        (package / "typed.py").write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.gates import Gate\n"
        )
        monkeypatch.setattr(lint, "SRC", tmp_path)
        assert lint.check() == []

    def test_importing_the_facade_is_flagged(
        self, lint, monkeypatch, tmp_path
    ):
        violations = self._run_on(lint, monkeypatch, tmp_path, "import repro\n")
        assert len(violations) == 1
        assert "facade" in violations[0]

    def test_main_reports_violations_nonzero(
        self, lint, monkeypatch, tmp_path, capsys
    ):
        self._run_on(lint, monkeypatch, tmp_path, "from repro.sim import run\n")
        assert lint.main([]) == 1
        assert "violation" in capsys.readouterr().err


class TestDotExport:
    def test_dot_output_is_wellformed(self, lint):
        source = lint.dot()
        assert source.startswith("digraph repro_layers {")
        assert source.rstrip().endswith("}")
        # Every ranked layer appears as a node.
        for layer, rank in lint.RANKS:
            assert f'"{layer}"' in source
            assert f"rank {rank}" in source

    def test_observed_edges_include_known_structure(self, lint):
        edges = lint.collect_edges()
        pairs = {(importer, target) for importer, target, _ in edges}
        # Structural facts of the codebase the graph must show:
        assert ("repro.circuit", "repro.utils") in pairs
        assert ("repro.transpile", "repro.analysis") in pairs  # certify hook
        assert ("repro.sim", "repro.analysis") in pairs  # sanitizer hook

    def test_whitelisted_lazy_edges_are_marked(self, lint):
        source = lint.dot()
        assert (
            '"repro.transpile" -> "repro.analysis" '
            "[style=dashed, color=blue" in source
        )

    def test_module_level_edge_subsumes_lazy(self, lint):
        edges = lint.collect_edges()
        seen = {}
        for importer, target, lazy in edges:
            assert seen.setdefault((importer, target), lazy) == lazy
        # No pair may appear both lazy and eager.
        assert len(seen) == len(edges)

    def test_main_dot_prints_graph_and_exits_zero(self, lint, capsys):
        assert lint.main(["--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_unknown_flag_is_a_usage_error(self, lint, capsys):
        assert lint.main(["--nope"]) == 2
        assert "usage" in capsys.readouterr().err
