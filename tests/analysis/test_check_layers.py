"""The AST layering lint in tools/check_layers.py."""

import importlib.util
import pathlib
import sys

import pytest

_TOOL = (
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "check_layers.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_layers", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_layers"] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        sys.modules.pop("check_layers", None)


class TestLayerResolution:
    def test_longest_prefix_wins(self, lint):
        assert lint.layer_of("repro.execution.options") == (
            "repro.execution.options",
            5,
        )
        assert lint.layer_of("repro.execution.api")[0] == "repro.execution"

    def test_facade_and_cli_are_top(self, lint):
        assert lint.layer_of("repro")[1] == lint.TOP_RANK
        assert lint.layer_of("repro.bench.__main__")[1] == lint.TOP_RANK

    def test_unknown_module_has_no_rank(self, lint):
        assert lint.layer_of("somewhere.else") is None

    def test_module_name_from_path(self, lint):
        assert (
            lint.module_name(lint.SRC / "repro" / "utils" / "__init__.py")
            == "repro.utils"
        )
        assert (
            lint.module_name(lint.SRC / "repro" / "plan" / "plan.py")
            == "repro.plan.plan"
        )


class TestRepositoryIsClean:
    def test_no_violations_in_src(self, lint):
        assert lint.check() == []

    def test_main_returns_zero(self, lint, capsys):
        assert lint.main() == 0
        assert "clean" in capsys.readouterr().out


class TestViolationsAreCaught:
    def _run_on(self, lint, monkeypatch, tmp_path, source):
        package = tmp_path / "repro" / "utils"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(source)
        monkeypatch.setattr(lint, "SRC", tmp_path)
        return lint.check()

    def test_module_level_upward_import(self, lint, monkeypatch, tmp_path):
        violations = self._run_on(
            lint, monkeypatch, tmp_path, "from repro.sim import get_backend\n"
        )
        assert len(violations) == 1
        assert "module-level import" in violations[0]
        assert "repro.sim" in violations[0]

    def test_unwhitelisted_lazy_import(self, lint, monkeypatch, tmp_path):
        source = "def f():\n    from repro.bench import run_suite\n"
        violations = self._run_on(lint, monkeypatch, tmp_path, source)
        assert len(violations) == 1
        assert "not in the lazy whitelist" in violations[0]

    def test_whitelisted_lazy_import_passes(self, lint, monkeypatch, tmp_path):
        package = tmp_path / "repro" / "circuit"
        package.mkdir(parents=True)
        (package / "ok.py").write_text(
            "def f():\n    from repro.gates import get_gate\n"
        )
        monkeypatch.setattr(lint, "SRC", tmp_path)
        assert lint.check() == []

    def test_downward_import_passes(self, lint, monkeypatch, tmp_path):
        package = tmp_path / "repro" / "plan"
        package.mkdir(parents=True)
        (package / "ok.py").write_text(
            "from repro.circuit import Circuit\n"
            "from repro.utils.exceptions import SimulationError\n"
        )
        monkeypatch.setattr(lint, "SRC", tmp_path)
        assert lint.check() == []

    def test_type_checking_imports_count_as_lazy(
        self, lint, monkeypatch, tmp_path
    ):
        package = tmp_path / "repro" / "circuit"
        package.mkdir(parents=True)
        (package / "typed.py").write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.gates import Gate\n"
        )
        monkeypatch.setattr(lint, "SRC", tmp_path)
        assert lint.check() == []

    def test_importing_the_facade_is_flagged(
        self, lint, monkeypatch, tmp_path
    ):
        violations = self._run_on(lint, monkeypatch, tmp_path, "import repro\n")
        assert len(violations) == 1
        assert "facade" in violations[0]

    def test_main_reports_violations_nonzero(
        self, lint, monkeypatch, tmp_path, capsys
    ):
        self._run_on(lint, monkeypatch, tmp_path, "from repro.sim import run\n")
        assert lint.main() == 1
        assert "violation" in capsys.readouterr().err
