"""Built-in circuit lint rules and the rule registry."""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisContext,
    AnalysisError,
    Diagnostic,
    Rule,
    analyze,
    available_rules,
    get_rule,
    register_rule,
)
from repro.analysis.rules import _RULES
from repro.circuit import Channel, Circuit, Instruction
from repro.gates import get_gate

_BUILTINS = (
    "unused-qubit",
    "unused-clbit",
    "clbit-read-before-write",
    "dead-conditional",
    "measure-overwrite",
    "non-cptp-channel",
    "fusion-barrier-density",
    "resource-limit",
)


def _codes(circuit, **kwargs):
    return analyze(circuit, **kwargs).codes()


class TestRegistry:
    def test_builtins_registered_sorted(self):
        assert available_rules() == tuple(sorted(_BUILTINS))

    def test_get_rule_round_trip(self):
        assert get_rule("unused-qubit").code == "unused-qubit"

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("Unused-Qubit") is get_rule("unused-qubit")

    def test_unknown_rule_lists_registered_codes(self):
        with pytest.raises(AnalysisError, match="unused-qubit"):
            get_rule("no-such-rule")

    def test_unknown_rule_message_matches_registry_contract(self):
        with pytest.raises(AnalysisError, match="available:"):
            get_rule("no-such-rule")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="already registered"):
            register_rule(get_rule("unused-qubit"))

    def test_replace_allows_override(self):
        original = get_rule("unused-qubit")
        try:
            register_rule(original, replace=True)
            assert get_rule("unused-qubit") is original
        finally:
            _RULES["unused-qubit"] = original

    def test_rule_without_code_rejected(self):
        class Bad:
            def check(self, circuit, context):
                return ()

        with pytest.raises(AnalysisError, match="code"):
            register_rule(Bad())

    def test_rule_without_check_rejected(self):
        class Bad:
            code = "bad-rule"

        with pytest.raises(AnalysisError, match="check"):
            register_rule(Bad())

    def test_builtin_rules_satisfy_protocol(self):
        for code in _BUILTINS:
            assert isinstance(get_rule(code), Rule)


class TestUnusedQubit:
    def test_fires_per_untouched_qubit(self):
        report = analyze(Circuit(3).h(0), rules=("unused-qubit",))
        assert len(report.warnings) == 2
        assert "qubit 1" in report[0].message

    def test_clean_when_all_touched(self):
        assert not analyze(Circuit(2).h(0).cx(0, 1), rules=("unused-qubit",))


class TestUnusedClbit:
    def test_fires_for_never_touched_clbit(self):
        circuit = Circuit(1, num_clbits=2).measure(0, 1)
        report = analyze(circuit, rules=("unused-clbit",))
        assert [d.message for d in report] == [
            "clbit 0 is never measured into nor branched on"
        ]

    def test_branched_on_counts_as_used(self):
        circuit = Circuit(1).measure(0, 0).if_bit(
            0, 1, Instruction(get_gate("x"), (0,))
        )
        assert not analyze(circuit, rules=("unused-clbit",))


class TestReadBeforeWrite:
    def test_fires_when_conditional_precedes_measure(self):
        circuit = (
            Circuit(2)
            .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
            .measure(0, 0)
        )
        report = analyze(circuit, rules=("clbit-read-before-write",))
        assert report[0].site == 0
        assert "before the first" in report[0].message

    def test_clean_when_measure_comes_first(self):
        circuit = (
            Circuit(2)
            .measure(0, 0)
            .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
        )
        assert not analyze(circuit, rules=("clbit-read-before-write",))

    def test_never_written_clbit_is_not_this_rules_finding(self):
        circuit = Circuit(1).if_bit(0, 1, Instruction(get_gate("x"), (0,)))
        assert not analyze(circuit, rules=("clbit-read-before-write",))


class TestDeadConditional:
    def test_fires_on_never_written_clbit(self):
        circuit = Circuit(1).if_bit(3, 1, Instruction(get_gate("x"), (0,)))
        report = analyze(circuit, rules=("dead-conditional",))
        assert "never applies" in report[0].message

    def test_value_zero_branch_always_applies(self):
        circuit = Circuit(1).if_bit(3, 0, Instruction(get_gate("x"), (0,)))
        report = analyze(circuit, rules=("dead-conditional",))
        assert "always" in report[0].message

    def test_clean_when_clbit_written_anywhere(self):
        circuit = (
            Circuit(1)
            .if_bit(0, 1, Instruction(get_gate("x"), (0,)))
            .measure(0, 0)
        )
        # Written later: read-before-write's finding, not dead-conditional's.
        assert not analyze(circuit, rules=("dead-conditional",))


class TestMeasureOverwrite:
    def test_fires_on_unread_remeasure(self):
        circuit = Circuit(2).measure(0, 0).measure(1, 0)
        report = analyze(circuit, rules=("measure-overwrite",))
        assert report[0].site == 1
        assert "outcome is lost" in report[0].message

    def test_conditional_read_clears_the_overwrite(self):
        circuit = (
            Circuit(2)
            .measure(0, 0)
            .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
            .measure(1, 0)
        )
        assert not analyze(circuit, rules=("measure-overwrite",))

    def test_distinct_clbits_are_clean(self):
        circuit = Circuit(2).measure(0, 0).measure(1, 1)
        assert not analyze(circuit, rules=("measure-overwrite",))


class TestNonCptpChannel:
    def test_leaky_channel_is_an_error(self):
        leaky = Channel(
            "leaky", 1, [np.eye(2) * 0.5], validate=False
        )
        circuit = Circuit(1).channel(leaky, (0,))
        report = analyze(circuit, rules=("non-cptp-channel",))
        assert report.has_errors
        assert "trace preserving" in report[0].message

    def test_valid_channel_is_clean(self):
        from repro.noise import depolarizing

        circuit = Circuit(1).channel(depolarizing(0.1), (0,))
        assert not analyze(circuit, rules=("non-cptp-channel",))

    def test_corrupted_kraus_shape_is_an_error(self):
        channel = Channel("dep", 1, [np.eye(2)], validate=False)
        # Simulate pickle corruption: swap in a wrong-shape operator.
        channel._kraus = (np.eye(4),)
        circuit = Circuit(1).append(channel, (0,))
        report = analyze(circuit, rules=("non-cptp-channel",))
        assert report.has_errors
        assert "shape" in report[0].message


class TestFusionBarrierDensity:
    def test_fires_on_barrier_dominated_circuit(self):
        circuit = Circuit(2).h(0).measure(0, 0).reset(1).measure(1, 1)
        report = analyze(circuit, rules=("fusion-barrier-density",))
        assert len(report.infos) == 1
        assert "fusion barriers" in report[0].message

    def test_short_circuits_are_exempt(self):
        circuit = Circuit(1).measure(0, 0)
        assert not analyze(circuit, rules=("fusion-barrier-density",))

    def test_gate_dominated_circuit_is_clean(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(1).cx(1, 0).measure(0, 0)
        assert not analyze(circuit, rules=("fusion-barrier-density",))


class TestResourceRule:
    def test_pure_state_estimate_warns_over_threshold(self):
        context = AnalysisContext(warn_memory_bytes=0, max_memory_bytes=10**12)
        report = analyze(Circuit(4).h(0), rules=("resource-limit",), context=context)
        assert len(report.warnings) == 1
        assert "2**n" in report[0].message

    def test_density_mode_uses_quartic_scaling(self):
        context = AnalysisContext(
            mode="density", warn_memory_bytes=0, max_memory_bytes=10**12
        )
        report = analyze(Circuit(4).h(0), rules=("resource-limit",), context=context)
        assert "4**n" in report[0].message
        assert "density matrix" in report[0].message

    def test_over_hard_limit_is_an_error(self):
        context = AnalysisContext(warn_memory_bytes=0, max_memory_bytes=0)
        report = analyze(Circuit(4).h(0), rules=("resource-limit",), context=context)
        assert report.has_errors
        assert "will not fit" in report[0].message

    def test_small_circuit_is_clean_by_default(self):
        assert not analyze(Circuit(4).h(0), rules=("resource-limit",))


class TestContextFiltering:
    """Ruff-style select / ignore / per-code severity on AnalysisContext."""

    def _noisy_circuit(self):
        # unused-qubit warnings + a measure-overwrite warning.
        return Circuit(3).h(0).measure(0, 0).measure(1, 0)

    def test_select_keeps_only_listed_codes(self):
        report = analyze(
            self._noisy_circuit(),
            context=AnalysisContext(select=("unused-qubit",)),
        )
        assert set(report.codes()) == {"unused-qubit"}

    def test_ignore_drops_listed_codes(self):
        report = analyze(
            self._noisy_circuit(),
            context=AnalysisContext(ignore=("unused-qubit",)),
        )
        assert "unused-qubit" not in report.codes()
        assert "measure-overwrite" in report.codes()

    def test_ignore_applies_after_select(self):
        context = AnalysisContext(
            select=("unused-qubit",), ignore=("unused-qubit",)
        )
        assert not analyze(self._noisy_circuit(), context=context)

    def test_select_accepts_a_bare_string(self):
        context = AnalysisContext(select="unused-qubit")
        report = analyze(self._noisy_circuit(), context=context)
        assert set(report.codes()) == {"unused-qubit"}

    def test_codes_are_case_insensitive(self):
        context = AnalysisContext(select=("Unused-Qubit",))
        report = analyze(self._noisy_circuit(), context=context)
        assert set(report.codes()) == {"unused-qubit"}

    def test_severity_override_promotes_to_error(self):
        context = AnalysisContext(
            severity_overrides={"unused-qubit": "error"}
        )
        report = analyze(self._noisy_circuit(), context=context)
        assert report.has_errors
        assert all(
            d.severity == "error"
            for d in report
            if d.code == "unused-qubit"
        )

    def test_severity_override_demotes_to_info(self):
        context = AnalysisContext(
            severity_overrides={"unused-qubit": "info"}
        )
        report = analyze(Circuit(2).h(0), context=context)
        assert not report.warnings
        assert report.infos

    def test_invalid_severity_level_rejected(self):
        with pytest.raises(AnalysisError, match="severity"):
            AnalysisContext(severity_overrides={"unused-qubit": "fatal"})

    def test_invalid_code_entry_rejected(self):
        with pytest.raises(AnalysisError):
            AnalysisContext(select=(42,))

    def test_context_stays_hashable(self):
        context = AnalysisContext(
            select=("a",), ignore=("b",), severity_overrides={"c": "error"}
        )
        assert hash(context) == hash(context)
        assert context == AnalysisContext(
            select=("a",), ignore=("b",), severity_overrides={"c": "error"}
        )

    def test_apply_is_idempotent(self):
        context = AnalysisContext(
            select=("unused-qubit",),
            severity_overrides={"unused-qubit": "error"},
        )
        report = analyze(self._noisy_circuit(), context=context)
        assert context.apply(tuple(report)) == tuple(report)


class TestAnalyzeDriver:
    def test_requires_a_circuit(self):
        with pytest.raises(AnalysisError, match="Circuit"):
            analyze("not a circuit")

    def test_runs_all_rules_by_default(self):
        circuit = Circuit(2).h(0)  # qubit 1 unused
        assert "unused-qubit" in _codes(circuit)

    def test_subset_by_code(self):
        circuit = Circuit(2).h(0)
        report = analyze(circuit, rules=("unused-clbit",))
        assert not report  # unused-qubit rule not selected

    def test_ad_hoc_rule_object(self):
        class AdHoc:
            code = "ad-hoc"

            def check(self, circuit, context):
                yield Diagnostic("info", self.code, "hello")

        report = analyze(Circuit(1).h(0), rules=(AdHoc(),))
        assert report.codes() == ("ad-hoc",)

    def test_invalid_rules_entry_rejected(self):
        with pytest.raises(AnalysisError, match="codes or Rule"):
            analyze(Circuit(1).h(0), rules=(42,))

    def test_clean_circuit_empty_report(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        assert not analyze(circuit)
