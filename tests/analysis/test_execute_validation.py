"""RunOptions.validate wiring: off / warn / strict through execute()."""

import numpy as np
import pytest

from repro.analysis import Diagnostic
from repro.circuit import Channel, Circuit, Parameter
from repro.execution import RunOptions, execute
from repro.utils.exceptions import AnalysisError, ExecutionError


def _leaky_circuit():
    leaky = Channel("leaky", 1, [np.eye(2) * 0.5], validate=False)
    return Circuit(1).channel(leaky, (0,))


class TestOptionsField:
    def test_default_is_off(self):
        assert RunOptions().validate == "off"

    @pytest.mark.parametrize("value", ["off", "warn", "strict"])
    def test_accepted_values(self, value):
        assert RunOptions(validate=value).validate == value

    def test_invalid_value_rejected(self):
        with pytest.raises(ExecutionError, match="validate"):
            RunOptions(validate="loud")


class TestOffMode:
    def test_no_diagnostics_key_by_default(self):
        result = execute(Circuit(2).h(0))
        assert "diagnostics" not in result.metadata

    def test_off_never_raises_even_on_bad_circuits(self):
        result = execute(_leaky_circuit(), backend="density_matrix")
        assert "diagnostics" not in result.metadata


class TestWarnMode:
    def test_clean_circuit_attaches_empty_diagnostics(self):
        result = execute(Circuit(2).h(0).cx(0, 1), validate="warn")
        assert result.metadata["diagnostics"] == ()

    def test_findings_land_in_metadata(self):
        result = execute(Circuit(2).h(0), validate="warn")
        diagnostics = result.metadata["diagnostics"]
        assert any(d.code == "unused-qubit" for d in diagnostics)
        assert all(isinstance(d, Diagnostic) for d in diagnostics)

    def test_error_findings_do_not_raise_in_warn(self):
        result = execute(
            _leaky_circuit(), backend="density_matrix", validate="warn"
        )
        diagnostics = result.metadata["diagnostics"]
        assert any(d.code == "non-cptp-channel" for d in diagnostics)

    def test_sweep_attaches_diagnostics_per_point(self):
        theta = Parameter("theta")
        template = Circuit(2).ry(theta, 0)  # qubit 1 unused
        batch = execute(
            template,
            parameter_sweep=[{"theta": 0.1}, {"theta": 0.2}],
            validate="warn",
        )
        for result in batch:
            codes = {d.code for d in result.metadata["diagnostics"]}
            assert "unused-qubit" in codes

    def test_batch_attaches_per_circuit_diagnostics(self):
        clean = Circuit(1).h(0)
        sloppy = Circuit(2).h(0)
        batch = execute([clean, sloppy], validate="warn")
        assert batch[0].metadata["diagnostics"] == ()
        codes = {d.code for d in batch[1].metadata["diagnostics"]}
        assert "unused-qubit" in codes


class TestStrictMode:
    def test_clean_circuit_passes(self):
        result = execute(Circuit(2).h(0).cx(0, 1), validate="strict")
        assert result.metadata["diagnostics"] == ()

    def test_warnings_do_not_raise_in_strict(self):
        result = execute(Circuit(2).h(0), validate="strict")
        codes = {d.code for d in result.metadata["diagnostics"]}
        assert "unused-qubit" in codes

    def test_error_findings_raise_typed_error(self):
        with pytest.raises(AnalysisError, match="non-cptp-channel") as info:
            execute(_leaky_circuit(), backend="density_matrix", validate="strict")
        assert info.value.diagnostics
        assert info.value.diagnostics[0].code == "non-cptp-channel"

    def test_batch_reports_which_circuit_failed(self):
        clean = Circuit(1).h(0)
        with pytest.raises(AnalysisError, match="circuit 1"):
            execute(
                [clean, _leaky_circuit()],
                backend="density_matrix",
                validate="strict",
            )
