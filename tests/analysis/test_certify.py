"""Semantic equivalence certification of transpile-pass rewrites."""

import numpy as np
import pytest

from repro.analysis import Certificate, certify_rewrite
from repro.bench.workloads import default_workloads
from repro.circuit import Circuit, Instruction
from repro.gates import get_gate
from repro.noise import depolarizing
from repro.transpile import (
    CancelInversePairs,
    DropIdentities,
    FuseAdjacentGates,
    Pass,
    PassManager,
    transpile,
)
from repro.transpile.base import default_passes
from repro.utils import AnalysisError, CertificationError


def _rebuilt(circuit, instructions):
    """A circuit over the same registers holding ``instructions``."""
    clone = Circuit(
        circuit.num_qubits, num_clbits=circuit.num_clbits
    )
    clone.extend(list(instructions))
    return clone


class _DropFirstGate(Pass):
    """A deliberately broken pass: silently deletes the first instruction."""

    def run(self, circuit):
        return _rebuilt(circuit, circuit.instructions[1:])


class _FlipFirstToX(Pass):
    """A deliberately broken pass: rewrites the first gate to X in place."""

    def run(self, circuit):
        first = circuit.instructions[0]
        swapped = Instruction(get_gate("x"), first.qubits[:1])
        return _rebuilt(circuit, (swapped,) + circuit.instructions[1:])


class _Identity(Pass):
    def run(self, circuit):
        return circuit.copy()


class TestCertificate:
    def test_as_dict_shape(self):
        cert = certify_rewrite(Circuit(1).h(0), Circuit(1).h(0), "noop")
        payload = cert.as_dict()
        assert set(payload) == {
            "pass",
            "status",
            "sites",
            "max_support",
            "max_deviation",
            "diagnostics",
        }
        assert payload["pass"] == "noop"
        assert payload["status"] == "certified"

    def test_raise_if_failed_chains_on_success(self):
        cert = certify_rewrite(Circuit(1).h(0), Circuit(1).h(0))
        assert cert.raise_if_failed() is cert

    def test_raise_if_failed_raises_with_diagnostics(self):
        cert = certify_rewrite(Circuit(1).h(0), Circuit(1).x(0), "bad")
        assert not cert.ok
        with pytest.raises(CertificationError, match="certify-not-equivalent"):
            cert.raise_if_failed()

    def test_input_validation(self):
        with pytest.raises(AnalysisError, match="Circuit"):
            certify_rewrite("nope", Circuit(1))
        with pytest.raises(AnalysisError, match="max_support"):
            certify_rewrite(Circuit(1), Circuit(1), max_support=0)


class TestEquivalentRewrites:
    def test_unchanged_circuit_has_zero_sites(self):
        cert = certify_rewrite(Circuit(2).h(0).cx(0, 1), Circuit(2).h(0).cx(0, 1))
        assert cert.ok and cert.sites == 0 and cert.max_support == 0

    def test_adjacent_inverse_pair_cancellation(self):
        before = Circuit(1).h(0).h(0).x(0)
        after = Circuit(1).x(0)
        cert = certify_rewrite(before, after)
        assert cert.ok
        assert cert.sites == 1
        assert cert.max_support == 1

    def test_cross_gap_cancellation(self):
        # The pair h(0)...h(0) straddles a gate on a *different* qubit;
        # hunk-local diffing sees two separate one-gate deletions, each
        # locally non-equivalent.  The certifier must escalate and prove
        # them jointly (regression: CancelInversePairs on random_dense).
        before = Circuit(2).h(0).rz(0.7, 1).h(0).cx(0, 1)
        after = Circuit(2).rz(0.7, 1).cx(0, 1)
        cert = certify_rewrite(before, after)
        assert cert.ok, cert.diagnostics
        assert cert.max_support == 1

    def test_cross_gap_cancellation_absorbs_entangling_gap(self):
        # Here the interleaved gap shares a qubit with the cancelled
        # pair, so it cannot be commuted out: the site must absorb the
        # CX on both sides (support widens to 2) and still certify.
        before = Circuit(2).x(0).x(1).cx(0, 1).x(1).x(0)
        after = Circuit(2).cx(0, 1)
        # x(0) and x(1) each self-cancel only because x commutes with
        # its own CX role here: x0 (control side) does NOT commute with
        # CX, so equivalence must be judged on the joint 2-qubit site.
        cert = certify_rewrite(before, after)
        # This particular rewrite is NOT equivalent (X on the control
        # does not commute through CX) — the certifier must say so
        # rather than certify it from the hunk structure alone.
        assert not cert.ok
        assert cert.diagnostics[0].code == "certify-not-equivalent"

    def test_commuting_gap_with_shared_qubit_certifies(self):
        # rz(0) commutes with rz(t) on the same qubit: the pair
        # rz(t)...rz(-t) cancels across it and the merged site proves it.
        before = Circuit(1).rz(0.4, 0).z(0).rz(-0.4, 0)
        after = Circuit(1).z(0)
        cert = certify_rewrite(before, after)
        assert cert.ok, cert.diagnostics

    def test_fusion_rewrite(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).rz(0.3, 0)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        cert = certify_rewrite(circuit, fused, "FuseAdjacentGates")
        assert cert.ok, cert.diagnostics
        assert cert.max_support <= 2

    def test_global_phase_option(self):
        phase = np.exp(1j * 0.9)
        before = Circuit(1).unitary(np.eye(2), (0,)).x(0)
        after = Circuit(1).unitary(phase * np.eye(2), (0,)).x(0)
        assert not certify_rewrite(before, after).ok
        assert certify_rewrite(before, after, up_to_global_phase=True).ok


class TestMutationsFailByExactCode:
    """A broken pass must fail certification with its precise code."""

    def test_dropped_gate_is_not_equivalent(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        cert = certify_rewrite(circuit, _DropFirstGate().run(circuit), "drop")
        assert not cert.ok
        assert [d.code for d in cert.diagnostics] == ["certify-not-equivalent"]

    def test_flipped_gate_is_not_equivalent(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        cert = certify_rewrite(circuit, _FlipFirstToX().run(circuit), "flip")
        assert not cert.ok
        assert cert.diagnostics[0].code == "certify-not-equivalent"
        assert cert.diagnostics[0].site is not None

    def test_register_width_change(self):
        cert = certify_rewrite(Circuit(2).h(0), Circuit(3).h(0), "widen")
        assert [d.code for d in cert.diagnostics] == ["certify-register-width"]

    def test_clbit_width_change(self):
        before = Circuit(1, num_clbits=1).measure(0, 0)
        after = Circuit(1, num_clbits=2).measure(0, 0)
        cert = certify_rewrite(before, after)
        assert [d.code for d in cert.diagnostics] == ["certify-register-width"]

    def test_dropped_measure_moves_a_barrier(self):
        before = Circuit(1, num_clbits=1).h(0).measure(0, 0)
        after = Circuit(1, num_clbits=1).h(0)
        cert = certify_rewrite(before, after)
        assert [d.code for d in cert.diagnostics] == ["certify-barrier-moved"]
        assert "1 -> 0 barrier" in cert.diagnostics[0].message

    def test_dropped_channel_moves_a_barrier(self):
        noise = depolarizing(0.05)
        before = Circuit(1).h(0).channel(noise, (0,))
        after = Circuit(1).h(0)
        cert = certify_rewrite(before, after)
        assert [d.code for d in cert.diagnostics] == ["certify-barrier-moved"]
        assert "barrier" in cert.diagnostics[0].message

    def test_reordered_conditional_moves_a_barrier(self):
        branch = Instruction(get_gate("x"), (0,))
        before = (
            Circuit(2, num_clbits=1).measure(0, 0).if_bit(0, 1, branch).h(1)
        )
        after = (
            Circuit(2, num_clbits=1).if_bit(0, 1, branch).measure(0, 0).h(1)
        )
        cert = certify_rewrite(before, after)
        assert [d.code for d in cert.diagnostics] == ["certify-barrier-moved"]

    def test_oversized_site_fails_support_width(self):
        before = Circuit(3).cx(0, 1).cx(1, 2)
        after = transpile(before, passes=(FuseAdjacentGates(max_width=3),))
        cert = certify_rewrite(before, after, max_support=2)
        assert not cert.ok
        assert [d.code for d in cert.diagnostics] == ["certify-support-width"]
        # The same rewrite proves fine once the cap admits its width.
        assert certify_rewrite(before, after, max_support=3).ok

    def test_broken_pass_raises_through_pass_manager(self):
        manager = PassManager([_DropFirstGate()], certify=True)
        with pytest.raises(CertificationError) as excinfo:
            manager.run(Circuit(2).h(0).cx(0, 1))
        codes = [d.code for d in excinfo.value.diagnostics]
        assert codes == ["certify-not-equivalent"]

    def test_uncertified_run_lets_the_broken_pass_through(self):
        # The mutation control: without certify the bug sails through,
        # which is exactly why the certificate exists.
        manager = PassManager([_DropFirstGate()])
        out = manager.run(Circuit(2).h(0).cx(0, 1))
        assert len(out) == 1


class TestPipelineCertification:
    def test_all_builtin_passes_on_bench_workloads(self):
        # Every built-in pass over every smoke workload — channel
        # circuits included — must carry a certified Certificate.
        manager = PassManager(default_passes(), certify=True)
        for workload in default_workloads(smoke=True):
            manager.run(workload.build())
            stats = manager.last_stats
            assert len(stats) == 3
            for entry in stats:
                assert entry.certificate is not None
                assert entry.certificate.ok, entry.certificate.diagnostics

    def test_dynamic_circuit_certifies_across_barriers(self):
        circuit = Circuit(2, num_clbits=2)
        circuit.h(0).cx(0, 1)
        circuit.rz(0.3, 0).rz(-0.3, 0)
        circuit.measure(0, 0)
        circuit.if_bit(0, 1, Instruction(get_gate("x"), (1,)))
        circuit.reset(0)
        circuit.h(1).h(1)
        circuit.measure(1, 1)
        manager = PassManager(default_passes(), certify=True)
        out = manager.run(circuit)
        assert all(s.certificate.ok for s in manager.last_stats)
        # The h(1) pair after the measurement cancelled *within* its
        # segment; the barrier subsequence survived verbatim.
        assert out.stats().num_dynamic == circuit.stats().num_dynamic

    def test_support_stays_local_on_wide_registers(self):
        # The acceptance bound: certifying a 16-qubit workload must
        # never widen a site anywhere near the register — the proof
        # obligation stays a handful of qubits (no dense 2^n operator).
        from repro.bench.workloads import layered_rotations, random_dense

        manager = PassManager(default_passes(), certify=True)
        for circuit in (random_dense(16), layered_rotations(16)):
            manager.run(circuit)
            for entry in manager.last_stats:
                assert entry.certificate.ok, entry.certificate.diagnostics
                assert entry.certificate.max_support <= 4

    def test_identity_pass_certifies_with_zero_sites(self):
        manager = PassManager([_Identity()], certify=True)
        manager.run(Circuit(3).h(0).cx(0, 1).cx(1, 2))
        (stats,) = manager.last_stats
        assert stats.certificate.ok and stats.certificate.sites == 0

    def test_per_run_override_beats_manager_default(self):
        manager = PassManager([_DropFirstGate()], certify=True)
        # certify=False on the call disables the manager default...
        out = manager.run(Circuit(2).h(0).cx(0, 1), certify=False)
        assert len(out) == 1
        assert manager.last_stats[0].certificate is None
        # ...and certify=True on an uncertified manager enables it.
        relaxed = PassManager([_DropFirstGate()])
        with pytest.raises(CertificationError):
            relaxed.run(Circuit(2).h(0).cx(0, 1), certify=True)

    def test_certificates_ride_on_pass_stats_dicts(self):
        manager = PassManager(default_passes(), certify=True)
        manager.run(Circuit(2).h(0).h(0).cx(0, 1))
        for row in manager.last_stats_dicts():
            assert row["certificate"] is not None
            assert row["certificate"]["status"] == "certified"

    def test_uncertified_stats_have_none_certificate(self):
        manager = PassManager(default_passes())
        manager.run(Circuit(2).h(0))
        assert all(
            row["certificate"] is None for row in manager.last_stats_dicts()
        )


class TestParametricBarriers:
    def test_unbound_parametric_gate_is_preserved(self):
        from repro.circuit import Parameter

        theta = Parameter("theta")
        circuit = Circuit(1).h(0).h(0)
        circuit.rz(theta, 0)
        out = PassManager(default_passes(), certify=True).run(circuit)
        assert any(inst.is_parametric for inst in out)

    def test_rewriting_a_parametric_gate_fails(self):
        from repro.circuit import Parameter

        theta = Parameter("theta")
        phi = Parameter("phi")
        before = Circuit(1)
        before.rz(theta, 0)
        after = Circuit(1)
        after.rz(phi, 0)
        cert = certify_rewrite(before, after)
        assert [d.code for d in cert.diagnostics] == ["certify-barrier-moved"]
