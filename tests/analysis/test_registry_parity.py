"""One lookup contract across all three registries.

The gate, backend, and analysis-rule registries grew at different times;
this parity suite pins the shared contract so they cannot drift apart:
case-insensitive lookup (lower-cased keys on register *and* lookup), an
``unknown ... ; available: ...`` error message enumerating what exists,
and a sorted ``available_*()`` listing.
"""

import pytest

from repro.analysis import available_rules, get_rule
from repro.gates import available_gates, get_gate
from repro.sim import available_backends, get_backend
from repro.utils import AnalysisError, CircuitError, SimulationError

_REGISTRIES = {
    "gates": (get_gate, available_gates, "h", CircuitError, "unknown gate"),
    "backends": (
        get_backend,
        available_backends,
        "statevector",
        SimulationError,
        "unknown backend",
    ),
    "rules": (
        get_rule,
        available_rules,
        "unused-qubit",
        AnalysisError,
        "unknown analysis rule",
    ),
}


@pytest.mark.parametrize("registry", sorted(_REGISTRIES))
class TestRegistryContract:
    def test_lookup_is_case_insensitive(self, registry):
        get, _, sample, _, _ = _REGISTRIES[registry]
        assert get(sample.upper()) is get(sample)
        assert get(sample.title()) is get(sample)

    def test_available_listing_is_sorted_and_lowercase(self, registry):
        _, available, sample, _, _ = _REGISTRIES[registry]
        names = available()
        assert isinstance(names, tuple)
        assert list(names) == sorted(names)
        assert all(name == name.lower() for name in names)
        assert sample in names

    def test_unknown_name_error_enumerates_available(self, registry):
        get, available, _, error, prefix = _REGISTRIES[registry]
        with pytest.raises(error, match="available:") as excinfo:
            get("no-such-entry")
        message = str(excinfo.value)
        assert prefix in message
        assert "'no-such-entry'" in message
        for name in available():
            assert name in message
