"""One lookup contract across all three registries.

The gate, backend, and analysis-rule registries grew at different times;
this parity suite pins the shared contract so they cannot drift apart:
case-insensitive lookup (lower-cased keys on register *and* lookup), an
``unknown ... ; available: ...`` error message enumerating what exists,
and a sorted ``available_*()`` listing.

The per-backend suite below parametrizes over ``available_backends()``
rather than a hard-coded name list, so a newly registered backend is
covered (singleton identity, pickling, plan mode, public export) the
moment it exists — no test edit required.
"""

import pickle

import pytest

import repro
from repro.analysis import available_rules, get_rule
from repro.gates import available_gates, get_gate
from repro.sim import available_backends, get_backend
from repro.utils import AnalysisError, CircuitError, SimulationError

_REGISTRIES = {
    "gates": (get_gate, available_gates, "h", CircuitError, "unknown gate"),
    "backends": (
        get_backend,
        available_backends,
        "statevector",
        SimulationError,
        "unknown backend",
    ),
    "rules": (
        get_rule,
        available_rules,
        "unused-qubit",
        AnalysisError,
        "unknown analysis rule",
    ),
}


@pytest.mark.parametrize("registry", sorted(_REGISTRIES))
class TestRegistryContract:
    def test_lookup_is_case_insensitive(self, registry):
        get, _, sample, _, _ = _REGISTRIES[registry]
        assert get(sample.upper()) is get(sample)
        assert get(sample.title()) is get(sample)

    def test_available_listing_is_sorted_and_lowercase(self, registry):
        _, available, sample, _, _ = _REGISTRIES[registry]
        names = available()
        assert isinstance(names, tuple)
        assert list(names) == sorted(names)
        assert all(name == name.lower() for name in names)
        assert sample in names

    def test_unknown_name_error_enumerates_available(self, registry):
        get, available, _, error, prefix = _REGISTRIES[registry]
        with pytest.raises(error, match="available:") as excinfo:
            get("no-such-entry")
        message = str(excinfo.value)
        assert prefix in message
        assert "'no-such-entry'" in message
        for name in available():
            assert name in message


@pytest.mark.parametrize("name", available_backends())
class TestEveryBackend:
    """Contract every registered backend satisfies, present and future."""

    def test_lookup_is_case_insensitive_singleton(self, name):
        backend = get_backend(name)
        assert get_backend(name.upper()) is backend
        assert get_backend(name.title()) is backend

    def test_name_and_plan_mode_declared(self, name):
        backend = get_backend(name)
        assert backend.name == name
        # plan_mode must be a mode compile_plan accepts, or lowering
        # would fail on the first run.
        assert backend.plan_mode in (
            "statevector",
            "density",
            "trajectory",
            "ptm",
        )

    def test_pickles_for_worker_pools(self, name):
        # The service layer ships backends to process-pool workers.
        backend = get_backend(name)
        clone = pickle.loads(pickle.dumps(backend))
        assert type(clone) is type(backend)
        assert clone.name == backend.name
        assert clone.plan_mode == backend.plan_mode

    def test_backend_class_is_publicly_exported(self, name):
        class_name = type(get_backend(name)).__name__
        assert class_name in repro.__all__
        assert getattr(repro, class_name) is type(get_backend(name))
