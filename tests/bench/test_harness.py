"""Tests for the bench harness and its CLI."""

import json
import math
import os
import subprocess
import sys

import pytest

import repro

from repro.bench import SCHEMA_VERSION, Workload, run_suite
from repro.bench.__main__ import main
from repro.bench.workloads import ghz, ghz_depolarizing, layered_rotations

_ROW_KEYS = {
    "name",
    "num_qubits",
    "backend",
    "noise",
    "gates_unfused",
    "gates_fused",
    "depth_unfused",
    "depth_fused",
    "transpile_time_s",
    "plan_compile_ms",
    "run_time_unfused_s",
    "run_time_fused_s",
    "speedup",
    "counts_match",
    "expectation_z0",
    "expectations_match",
    "eager_matches_plan",
    "run_time_ptm_s",
    "ptm_speedup_vs_density",
    "ptm_counts_match",
    "ptm_expectations_match",
    "plan_ops_density",
    "plan_ops_ptm",
    "ptm_fewer_ops",
}

_SWEEP_KEYS = {
    "name",
    "num_qubits",
    "points",
    "parameters",
    "transpile_calls",
    "plan_compile_ms",
    "run_time_batched_s",
    "run_time_per_element_s",
    "batched_speedup",
    "expectations",
    "expectations_match",
    "reproducible",
}

_PARALLEL_SWEEP_KEYS = {
    "name",
    "backend",
    "num_qubits",
    "points",
    "shots",
    "run_time_serial_s",
    "run_time_parallel_s",
    "parallel_speedup",
    "results_match",
    "workers1_matches_serial",
}

_PARALLEL_SHARD_KEYS = {
    "name",
    "num_qubits",
    "shots",
    "shard_shots",
    "run_time_serial_s",
    "run_time_parallel_s",
    "parallel_speedup",
    "counts_match",
    "unsharded_matches_shard1",
}


def _strict_loads(payload: str):
    """json.loads rejecting the non-standard Infinity/NaN tokens."""

    def _reject(token):
        raise ValueError(f"non-standard JSON constant: {token}")

    return json.loads(payload, parse_constant=_reject)


@pytest.fixture(scope="module")
def smoke_report():
    return run_suite(smoke=True, shots=256, repeats=1)


class TestRunSuite:
    def test_schema(self, smoke_report):
        assert smoke_report["schema_version"] == SCHEMA_VERSION == 7
        assert smoke_report["config"]["smoke"] is True
        assert smoke_report["config"]["backend"] == "statevector"
        assert smoke_report["config"]["sweep"] is False
        assert smoke_report["config"]["parallel"] is False
        assert smoke_report["config"]["workers"] == 2
        assert smoke_report["config"]["trajectory"] is False
        assert smoke_report["sweep"] is None
        assert smoke_report["parallel"] is None
        assert smoke_report["trajectory"] is None
        for row in smoke_report["workloads"]:
            assert set(row) == _ROW_KEYS

    def test_json_serialisable(self, smoke_report):
        round_trip = _strict_loads(json.dumps(smoke_report))
        assert round_trip["schema_version"] == SCHEMA_VERSION

    def test_counts_match_everywhere(self, smoke_report):
        assert all(row["counts_match"] for row in smoke_report["workloads"])

    def test_expectations_match_everywhere(self, smoke_report):
        for row in smoke_report["workloads"]:
            assert row["expectations_match"]
            assert -1.0 - 1e-9 <= row["expectation_z0"] <= 1.0 + 1e-9

    def test_sweep_section(self):
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            smoke=True,
            shots=64,
            sweep=True,
        )
        sweep = report["sweep"]
        assert report["config"]["sweep"] is True
        assert set(sweep) == _SWEEP_KEYS
        assert sweep["transpile_calls"] == 1
        assert sweep["reproducible"] is True
        assert sweep["expectations_match"] is True
        assert sweep["plan_compile_ms"] >= 0
        assert sweep["run_time_batched_s"] > 0
        assert sweep["run_time_per_element_s"] > 0
        assert len(sweep["expectations"]) == sweep["points"]
        _strict_loads(json.dumps(report))

    def test_eager_matches_plan_everywhere(self, smoke_report):
        # The refactor invariant, per workload: run() and precompiled-plan
        # execution are one code path, bit for bit.
        for row in smoke_report["workloads"]:
            assert row["eager_matches_plan"] is True

    def test_plan_compile_measured_separately(self, smoke_report):
        # compile_ms and run_ms are split so speedups are attributed
        # honestly; both must be present and non-negative on every row.
        for row in smoke_report["workloads"]:
            assert row["plan_compile_ms"] >= 0
            assert row["transpile_time_s"] >= 0

    def test_sweep_batched_speedup_is_finite_or_null(self):
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            smoke=True,
            shots=16,
            sweep=True,
        )
        speedup = report["sweep"]["batched_speedup"]
        assert speedup is None or (math.isfinite(speedup) and speedup > 0)

    def test_layered_rotations_fuses(self, smoke_report):
        rows = [
            r for r in smoke_report["workloads"] if r["name"] == "layered_rotations"
        ]
        assert rows
        for row in rows:
            assert row["gates_fused"] < row["gates_unfused"]

    def test_explicit_workloads(self):
        report = run_suite(
            workloads=[Workload("ghz", 3, lambda: ghz(3))], shots=64, repeats=1
        )
        assert len(report["workloads"]) == 1
        assert report["workloads"][0]["name"] == "ghz"
        assert report["workloads"][0]["backend"] == "statevector"
        assert report["workloads"][0]["noise"] is None

    def test_timings_positive(self, smoke_report):
        for row in smoke_report["workloads"]:
            assert row["run_time_unfused_s"] > 0
            assert row["run_time_fused_s"] > 0
            assert row["transpile_time_s"] >= 0

    def test_smoke_defaults_to_one_repeat(self):
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))], smoke=True, shots=16
        )
        assert report["config"]["repeats"] == 1

    def test_smoke_repeats_overridable(self):
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            smoke=True,
            shots=16,
            repeats=2,
        )
        assert report["config"]["repeats"] == 2

    def test_non_smoke_defaults_to_three_repeats(self):
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))], shots=16
        )
        assert report["config"]["repeats"] == 3

    def test_zero_fused_time_emits_null_speedup(self, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "_best_time", lambda fn, repeats: 0.0)
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))], shots=16, repeats=1
        )
        row = report["workloads"][0]
        assert row["speedup"] is None
        # The regression this guards: float("inf") serialises as the
        # non-standard ``Infinity`` token and breaks strict JSON parsers.
        payload = json.dumps(report)
        assert "Infinity" not in payload
        assert _strict_loads(payload)["workloads"][0]["speedup"] is None

    def test_speedup_never_non_finite(self, smoke_report):
        for row in smoke_report["workloads"]:
            assert row["speedup"] is None or math.isfinite(row["speedup"])


class TestParallelSection:
    @pytest.fixture(scope="class")
    def parallel_report(self):
        return run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            smoke=True,
            shots=32,
            parallel=True,
            workers=2,
        )

    def test_section_shape(self, parallel_report):
        section = parallel_report["parallel"]
        assert parallel_report["config"]["parallel"] is True
        assert parallel_report["config"]["workers"] == 2
        assert set(section) == {"workers", "cpu_count", "sweep", "sharded_shots"}
        assert section["workers"] == 2
        assert section["cpu_count"] is None or section["cpu_count"] >= 1
        assert set(section["sweep"]) == _PARALLEL_SWEEP_KEYS
        assert set(section["sharded_shots"]) == _PARALLEL_SHARD_KEYS

    def test_parity_booleans_hold(self, parallel_report):
        section = parallel_report["parallel"]
        assert section["sweep"]["results_match"] is True
        assert section["sweep"]["workers1_matches_serial"] is True
        assert section["sharded_shots"]["counts_match"] is True
        assert section["sharded_shots"]["unsharded_matches_shard1"] is True

    def test_timings_and_speedups_sane(self, parallel_report):
        for leg in (
            parallel_report["parallel"]["sweep"],
            parallel_report["parallel"]["sharded_shots"],
        ):
            assert leg["run_time_serial_s"] > 0
            assert leg["run_time_parallel_s"] > 0
            speedup = leg["parallel_speedup"]
            assert speedup is None or (math.isfinite(speedup) and speedup > 0)

    def test_strict_json_round_trip(self, parallel_report):
        payload = json.dumps(parallel_report)
        assert "Infinity" not in payload
        section = _strict_loads(payload)["parallel"]
        assert section["sweep"]["results_match"] is True


class TestDensityWorkloads:
    def test_smoke_suite_includes_density_rows(self, smoke_report):
        density = [
            r for r in smoke_report["workloads"] if r["backend"] == "density_matrix"
        ]
        assert {r["name"] for r in density} == {
            "ghz_depolarizing",
            "layered_damped",
            "brickwork_depolarized",
        }
        for row in density:
            assert row["noise"] is not None
            assert row["counts_match"]

    def test_workload_backend_overrides_suite_default(self):
        report = run_suite(
            workloads=[
                Workload(
                    "ghz_depolarizing",
                    2,
                    lambda: ghz_depolarizing(2),
                    backend="density_matrix",
                    noise="depolarizing(p=0.02)",
                )
            ],
            shots=32,
            repeats=1,
            backend="statevector",
        )
        row = report["workloads"][0]
        assert row["backend"] == "density_matrix"
        assert row["noise"] == "depolarizing(p=0.02)"
        assert row["counts_match"]

    def test_layered_damped_still_fuses(self, smoke_report):
        rows = [r for r in smoke_report["workloads"] if r["name"] == "layered_damped"]
        assert rows
        for row in rows:
            assert row["gates_fused"] < row["gates_unfused"]

    def test_density_width_cap_refuses_wide_workloads(self):
        from repro.utils.exceptions import SimulationError

        with pytest.raises(SimulationError, match="4\\*\\*n"):
            run_suite(
                workloads=[Workload("ghz", 16, lambda: ghz(16))],
                shots=16,
                repeats=1,
                backend="density_matrix",
            )

    def test_backend_instance_is_normalised_to_name(self):
        from repro.sim import DensityMatrixBackend
        from repro.utils.exceptions import SimulationError

        # An instance must hit the same width cap as its name...
        with pytest.raises(SimulationError, match="4\\*\\*n"):
            run_suite(
                workloads=[Workload("ghz", 16, lambda: ghz(16))],
                shots=16,
                repeats=1,
                backend=DensityMatrixBackend(),
            )
        # ...and the report must carry the name (JSON-serialisable), not
        # the object.
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            shots=16,
            repeats=1,
            backend=DensityMatrixBackend(),
        )
        assert report["config"]["backend"] == "density_matrix"
        assert report["workloads"][0]["backend"] == "density_matrix"
        json.dumps(report)

    def test_full_default_suite_respects_density_cap(self):
        from repro.bench.harness import DENSITY_WIDTH_CAP
        from repro.bench.workloads import default_workloads

        for workload in default_workloads():
            if workload.backend == "density_matrix":
                assert workload.num_qubits <= DENSITY_WIDTH_CAP

    def test_gate_noise_model_requires_density_backend(self):
        from repro.noise import NoiseModel, bit_flip
        from repro.utils.exceptions import SimulationError

        model = NoiseModel().add_channel(bit_flip(0.1))
        with pytest.raises(SimulationError, match="density_matrix"):
            run_suite(
                workloads=[Workload("ghz", 2, lambda: ghz(2))],
                shots=16,
                repeats=1,
                noise_model=model,
            )
        # The documented usage: density backend accepts the model (the
        # fused circuit is a different open system, so counts may differ —
        # no assertion on counts_match here).
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            shots=16,
            repeats=1,
            backend="density_matrix",
            noise_model=model,
        )
        assert report["workloads"][0]["backend"] == "density_matrix"
        # The applied model is recorded, both suite-wide and per row.
        assert report["config"]["noise_model"] == "noise_model"
        assert report["workloads"][0]["noise"] == "noise_model"

    def test_named_noise_model_label_combines_with_embedded_noise(self):
        from repro.noise import NoiseModel, bit_flip

        model = NoiseModel("flippy").add_channel(bit_flip(0.05))
        report = run_suite(
            workloads=[
                Workload(
                    "ghz_depolarizing",
                    2,
                    lambda: ghz_depolarizing(2),
                    backend="density_matrix",
                    noise="depolarizing(p=0.02)",
                )
            ],
            shots=16,
            repeats=1,
            noise_model=model,
        )
        assert report["config"]["noise_model"] == "flippy"
        assert report["workloads"][0]["noise"] == "depolarizing(p=0.02) + flippy"

    def test_channel_workload_on_statevector_refused_upfront(self):
        from repro.utils.exceptions import SimulationError

        # No backend pin: a channel-bearing circuit would land on the
        # statevector default — the plan validation must refuse before
        # benching anything.
        with pytest.raises(SimulationError, match="density_matrix"):
            run_suite(
                workloads=[
                    Workload("ghz", 3, lambda: ghz(3)),
                    Workload("noisy", 2, lambda: ghz_depolarizing(2)),
                ],
                shots=16,
                repeats=1,
            )


class TestPTMColumns:
    """Schema-7 PTM race: every density row carries the comparison."""

    def test_ptm_columns_null_on_statevector_rows(self, smoke_report):
        for row in smoke_report["workloads"]:
            if row["backend"] == "density_matrix":
                continue
            assert row["run_time_ptm_s"] is None
            assert row["ptm_speedup_vs_density"] is None
            assert row["ptm_counts_match"] is None
            assert row["ptm_expectations_match"] is None
            assert row["plan_ops_density"] is None
            assert row["plan_ops_ptm"] is None
            assert row["ptm_fewer_ops"] is None

    def test_ptm_equivalence_on_density_rows(self, smoke_report):
        density = [
            r for r in smoke_report["workloads"] if r["backend"] == "density_matrix"
        ]
        assert density
        for row in density:
            assert row["ptm_counts_match"] is True
            assert row["ptm_expectations_match"] is True

    def test_ptm_fuses_through_channels(self, smoke_report):
        # The headline structural claim: PTM lowering folds gate+channel
        # runs into single real ops, so its plans are strictly shorter
        # than the density plans for the same fused circuit.
        for row in smoke_report["workloads"]:
            if row["backend"] != "density_matrix":
                continue
            assert row["plan_ops_ptm"] < row["plan_ops_density"]
            assert row["ptm_fewer_ops"] is True

    def test_ptm_timings_sane(self, smoke_report):
        for row in smoke_report["workloads"]:
            if row["backend"] != "density_matrix":
                continue
            assert row["run_time_ptm_s"] > 0
            speedup = row["ptm_speedup_vs_density"]
            assert speedup is None or (math.isfinite(speedup) and speedup > 0)

    def test_strict_json_round_trip(self, smoke_report):
        payload = json.dumps(smoke_report)
        assert "Infinity" not in payload
        rows = _strict_loads(payload)["workloads"]
        assert any(r["ptm_speedup_vs_density"] is not None for r in rows)


class TestCli:
    def test_main_json_smoke(self, capsys):
        exit_code = main(["--json", "--smoke", "--shots", "64"])
        assert exit_code == 0
        report = _strict_loads(capsys.readouterr().out)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["repeats"] == 1  # smoke defaults to one repeat

    def test_main_json_smoke_sweep(self, capsys):
        # The CI sweep leg, in-process: the schema-3 sweep section must
        # report exactly one transpile for the whole batch.
        exit_code = main(["--json", "--smoke", "--sweep", "--shots", "64"])
        assert exit_code == 0
        report = _strict_loads(capsys.readouterr().out)
        assert report["config"]["sweep"] is True
        assert report["sweep"]["transpile_calls"] == 1
        assert report["sweep"]["reproducible"] is True

    def test_main_json_smoke_parallel(self, capsys):
        # The CI parallel leg, in-process: both legs present, parity
        # booleans green, and the exit code reflects them.
        exit_code = main(
            ["--json", "--smoke", "--parallel", "--workers", "2", "--shots", "64"]
        )
        assert exit_code == 0
        report = _strict_loads(capsys.readouterr().out)
        assert report["config"]["parallel"] is True
        assert report["parallel"]["workers"] == 2
        assert report["parallel"]["sweep"]["results_match"] is True
        assert report["parallel"]["sharded_shots"]["counts_match"] is True

    def test_main_parallel_table_line(self, capsys):
        exit_code = main(["--smoke", "--parallel", "--shots", "64"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "parallel/sweep" in out
        assert "parallel/shards" in out

    def test_main_density_backend_full_size_refused_cleanly(self, capsys):
        # --backend density_matrix without --smoke targets n=16 workloads:
        # the CLI must refuse with a message, not die in np.zeros.
        exit_code = main(["--backend", "density_matrix", "--shots", "16"])
        assert exit_code == 2
        assert "density-matrix" in capsys.readouterr().err

    def test_main_table_output(self, capsys):
        exit_code = main(["--smoke", "--shots", "64"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "layered_rotations" in out
        assert "density_matrix" in out

    def test_main_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        exit_code = main(["--json", "--smoke", "--shots", "64", "--out", str(out_file)])
        assert exit_code == 0
        capsys.readouterr()
        report = _strict_loads(out_file.read_text())
        assert report["schema_version"] == SCHEMA_VERSION

    def test_module_entry_point(self):
        # The acceptance-criteria invocation, exactly as CI runs it.  The
        # subprocess does not inherit pytest's pythonpath option, so point
        # PYTHONPATH at whatever src directory this repro was imported from.
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "--json", "--smoke", "--shots", "64"],
            capture_output=True,
            text=True,
            check=False,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        report = _strict_loads(result.stdout)
        layered = [
            r for r in report["workloads"] if r["name"] == "layered_rotations"
        ]
        assert all(r["gates_fused"] < r["gates_unfused"] for r in layered)

    def test_custom_workload_keeps_layered_invariant(self):
        report = run_suite(
            workloads=[
                Workload("layered_rotations", 4, lambda: layered_rotations(4, layers=2))
            ],
            shots=64,
            repeats=1,
        )
        row = report["workloads"][0]
        assert row["gates_fused"] < row["gates_unfused"]


class TestTrajectorySection:
    """The --trajectory leg, shrunk to n=4 so the test stays fast.

    The real leg runs at DENSITY_WIDTH_CAP (n=10, seconds of density
    wall-time per run); monkeypatching the cap keeps the *code path*
    identical while the state sizes stay test-sized.
    """

    @pytest.fixture()
    def small_cap(self, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "DENSITY_WIDTH_CAP", 4)

    def test_bench_trajectory_rows(self, small_cap):
        from repro.bench.harness import _bench_trajectory

        section = _bench_trajectory(smoke=True, seed=5, repeats=1)
        assert section["trajectories"] == 128
        rows = section["workloads"]
        assert [row["name"] for row in rows] == [
            "ghz_depolarizing_4",
            "layered_damped_4",
        ]
        for row in rows:
            assert row["num_qubits"] == 4
            assert row["agreement"] is True
            assert row["std_error"] >= 0.0
            assert row["run_time_density_s"] > 0.0
            assert row["run_time_trajectory_s"] > 0.0
            assert -1.0 - 1e-9 <= row["expectation_density"] <= 1.0 + 1e-9

    def test_run_suite_trajectory_flag(self, small_cap):
        report = run_suite(
            workloads=[Workload("ghz", 2, lambda: ghz(2))],
            smoke=True,
            shots=16,
            repeats=1,
            trajectory=True,
        )
        assert report["config"]["trajectory"] is True
        section = report["trajectory"]
        assert section is not None
        round_trip = _strict_loads(json.dumps(report))
        assert round_trip["trajectory"]["workloads"]

    def test_trajectory_off_by_default(self, smoke_report):
        assert smoke_report["trajectory"] is None
