"""Tests for the bench harness and its CLI."""

import json
import os
import subprocess
import sys

import pytest

import repro

from repro.bench import SCHEMA_VERSION, Workload, run_suite
from repro.bench.__main__ import main
from repro.bench.workloads import ghz, layered_rotations

_ROW_KEYS = {
    "name",
    "num_qubits",
    "gates_unfused",
    "gates_fused",
    "depth_unfused",
    "depth_fused",
    "transpile_time_s",
    "run_time_unfused_s",
    "run_time_fused_s",
    "speedup",
    "counts_match",
}


@pytest.fixture(scope="module")
def smoke_report():
    return run_suite(smoke=True, shots=256, repeats=1)


class TestRunSuite:
    def test_schema(self, smoke_report):
        assert smoke_report["schema_version"] == SCHEMA_VERSION
        assert smoke_report["config"]["smoke"] is True
        for row in smoke_report["workloads"]:
            assert set(row) == _ROW_KEYS

    def test_json_serialisable(self, smoke_report):
        round_trip = json.loads(json.dumps(smoke_report))
        assert round_trip["schema_version"] == SCHEMA_VERSION

    def test_counts_match_everywhere(self, smoke_report):
        assert all(row["counts_match"] for row in smoke_report["workloads"])

    def test_layered_rotations_fuses(self, smoke_report):
        rows = [
            r for r in smoke_report["workloads"] if r["name"] == "layered_rotations"
        ]
        assert rows
        for row in rows:
            assert row["gates_fused"] < row["gates_unfused"]

    def test_explicit_workloads(self):
        report = run_suite(
            workloads=[Workload("ghz", 3, lambda: ghz(3))], shots=64, repeats=1
        )
        assert len(report["workloads"]) == 1
        assert report["workloads"][0]["name"] == "ghz"

    def test_timings_positive(self, smoke_report):
        for row in smoke_report["workloads"]:
            assert row["run_time_unfused_s"] > 0
            assert row["run_time_fused_s"] > 0
            assert row["transpile_time_s"] >= 0


class TestCli:
    def test_main_json_smoke(self, capsys):
        exit_code = main(["--json", "--smoke", "--shots", "64"])
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["config"]["repeats"] == 1  # smoke defaults to one repeat

    def test_main_table_output(self, capsys):
        exit_code = main(["--smoke", "--shots", "64"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "layered_rotations" in out

    def test_main_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        exit_code = main(["--json", "--smoke", "--shots", "64", "--out", str(out_file)])
        assert exit_code == 0
        capsys.readouterr()
        report = json.loads(out_file.read_text())
        assert report["schema_version"] == SCHEMA_VERSION

    def test_module_entry_point(self):
        # The acceptance-criteria invocation, exactly as CI runs it.  The
        # subprocess does not inherit pytest's pythonpath option, so point
        # PYTHONPATH at whatever src directory this repro was imported from.
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "--json", "--smoke", "--shots", "64"],
            capture_output=True,
            text=True,
            check=False,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        layered = [
            r for r in report["workloads"] if r["name"] == "layered_rotations"
        ]
        assert all(r["gates_fused"] < r["gates_unfused"] for r in layered)

    def test_custom_workload_keeps_layered_invariant(self):
        report = run_suite(
            workloads=[
                Workload("layered_rotations", 4, lambda: layered_rotations(4, layers=2))
            ],
            shots=64,
            repeats=1,
        )
        row = report["workloads"][0]
        assert row["gates_fused"] < row["gates_unfused"]
