"""Tests for the canonical benchmark workloads."""

import pytest

from repro.bench import (
    brickwork_depolarized,
    default_workloads,
    ghz,
    ghz_depolarizing,
    layered_damped,
    layered_rotations,
    random_dense,
)
from repro.sim import run


class TestGhz:
    def test_structure(self):
        circuit = ghz(5)
        assert circuit.num_qubits == 5
        assert circuit.count_ops() == {"h": 1, "cx": 4}

    def test_produces_ghz_state(self):
        probs = run(ghz(4)).probabilities_dict()
        assert probs == pytest.approx({"0000": 0.5, "1111": 0.5})


class TestLayeredRotations:
    def test_deterministic(self):
        a = layered_rotations(5, layers=3, seed=7)
        b = layered_rotations(5, layers=3, seed=7)
        assert a == b

    def test_seed_changes_circuit(self):
        assert layered_rotations(5, seed=1) != layered_rotations(5, seed=2)

    def test_contains_single_qubit_runs(self):
        ops = layered_rotations(4, layers=2).count_ops()
        assert ops["rz"] == 2 * 4 * 2  # two rz per qubit per layer
        assert ops["ry"] == 4 * 2
        assert ops["cx"] > 0

    def test_runs_on_backend(self):
        state = run(layered_rotations(4, layers=2))
        assert state.num_qubits == 4


class TestRandomDense:
    def test_deterministic(self):
        assert random_dense(5, 40, seed=3) == random_dense(5, 40, seed=3)

    def test_gate_count(self):
        assert len(random_dense(6, 50)) == 50

    def test_valid_two_qubit_gates(self):
        for instruction in random_dense(4, 80, seed=5):
            assert len(set(instruction.qubits)) == len(instruction.qubits)


class TestNoisyBuilders:
    def test_ghz_depolarizing_structure(self):
        circuit = ghz_depolarizing(4, p=0.05)
        ops = circuit.count_ops()
        assert ops["h"] == 1
        assert ops["cx"] == 3
        assert ops["depolarizing"] == 1 + 2 * 3  # one per gate-qubit touch
        assert circuit.has_channels()

    def test_ghz_depolarizing_deterministic(self):
        assert ghz_depolarizing(3) == ghz_depolarizing(3)

    def test_layered_damped_structure(self):
        circuit = layered_damped(3, layers=2, gamma=0.1)
        ops = circuit.count_ops()
        assert ops["amplitude_damping"] == 3 * 2  # every qubit, every layer
        assert ops["rz"] == 2 * 3 * 2

    def test_noisy_builders_run_on_density_backend(self):
        state = run(ghz_depolarizing(3), backend="density_matrix")
        assert state.num_qubits == 3
        assert state.purity() < 1.0

    def test_brickwork_depolarized_structure(self):
        circuit = brickwork_depolarized(3, layers=2, p=0.05)
        ops = circuit.count_ops()
        assert ops["rz"] == 3 * 2
        assert ops["ry"] == 3 * 2
        # One channel behind every gate: 2 per single-qubit pair per
        # qubit per layer, plus 2 per brickwork CX.
        assert ops["depolarizing"] == 2 * 3 * 2 + 2 * ops["cx"]
        assert circuit.has_channels()

    def test_brickwork_depolarized_deterministic(self):
        assert brickwork_depolarized(4, layers=2) == brickwork_depolarized(4, layers=2)

    def test_brickwork_depolarized_ptm_matches_density(self):
        circuit = brickwork_depolarized(3, layers=2)
        rho = run(circuit, backend="density_matrix")
        pauli = run(circuit, backend="ptm")
        assert pauli.to_density_matrix() == rho


class TestDefaultWorkloads:
    def test_full_sizes(self):
        workloads = default_workloads()
        statevector_sizes = sorted(
            {w.num_qubits for w in workloads if w.backend is None}
        )
        density_sizes = sorted(
            {w.num_qubits for w in workloads if w.backend == "density_matrix"}
        )
        assert statevector_sizes == [8, 12, 16]
        assert density_sizes == [6, 8]
        assert {w.name for w in workloads} == {
            "ghz",
            "layered_rotations",
            "random_dense",
            "ghz_depolarizing",
            "layered_damped",
            "brickwork_depolarized",
        }

    def test_noisy_workloads_are_labelled(self):
        for workload in default_workloads(smoke=True):
            if workload.backend == "density_matrix":
                assert workload.noise is not None
                assert workload.build().has_channels()
            else:
                assert workload.noise is None

    def test_smoke_is_smaller(self):
        smoke = default_workloads(smoke=True)
        assert max(w.num_qubits for w in smoke) < 8

    def test_workload_builds_circuit(self):
        workload = default_workloads(smoke=True)[0]
        circuit = workload.build()
        assert circuit.num_qubits == workload.num_qubits
        assert "Workload(" in repr(workload)

    def test_builders_are_independent(self):
        # Late-binding bug guard: each Workload must build its own size.
        for workload in default_workloads(smoke=True):
            assert workload.build().num_qubits == workload.num_qubits
