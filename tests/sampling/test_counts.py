"""Counts mapping semantics."""

import pytest

from repro.sampling import Counts
from repro.utils.exceptions import SimulationError


def test_behaves_like_a_dict():
    counts = Counts({"00": 3, "11": 5})
    assert counts["11"] == 5
    assert set(counts) == {"00", "11"}
    assert counts.num_qubits == 2


def test_shots_and_probabilities():
    counts = Counts({"00": 1, "11": 3})
    assert counts.shots == 4
    assert counts.probabilities() == {"00": 0.25, "11": 0.75}
    assert Counts().probabilities() == {}


def test_zero_count_outcomes_dropped():
    counts = Counts({"0": 0, "1": 2})
    assert "0" not in counts
    assert counts.shots == 2


def test_zero_count_keys_do_not_veto_width_consistency():
    counts = Counts({"00": 0, "111": 5})
    assert counts == {"111": 5}
    assert counts.num_qubits == 3


def test_counts_is_read_only():
    counts = Counts({"00": 3})
    with pytest.raises(TypeError):
        counts["banana"] = -5
    with pytest.raises(TypeError):
        counts.update({"00": 1})
    with pytest.raises(TypeError):
        del counts["00"]
    with pytest.raises(TypeError):
        counts |= {"xx!": -5}  # dict.__ior__ must not bypass the freeze
    assert counts == {"00": 3}


def test_copy_preserves_type_and_width():
    counts = Counts({"00": 3}, num_qubits=2)
    duplicate = counts.copy()
    assert isinstance(duplicate, Counts)
    assert duplicate.num_qubits == 2
    assert duplicate.shots == 3


def test_invalid_keys_rejected():
    with pytest.raises(SimulationError):
        Counts({"0x": 1})  # bad characters surface as SimulationError, not ValueError
    with pytest.raises(SimulationError):
        Counts({"0": 1, "00": 1})
    with pytest.raises(SimulationError):
        Counts({"00": -1})
    with pytest.raises(SimulationError):
        Counts({"00": 1}, num_qubits=3)


def test_non_integer_counts_rejected():
    with pytest.raises(SimulationError):
        Counts({"0": 2.7})
    with pytest.raises(SimulationError):
        Counts({"0": 0.5})  # would otherwise be silently dropped
    assert Counts({"0": 2.0}) == {"0": 2}  # integral floats are fine


def test_most_frequent_with_tie_break():
    assert Counts({"01": 5, "10": 2}).most_frequent() == "01"
    assert Counts({"01": 5, "00": 5}).most_frequent() == "00"
    with pytest.raises(SimulationError):
        Counts().most_frequent()


def test_int_outcomes():
    assert Counts({"10": 7}).int_outcomes() == {2: 7}


def test_merged():
    merged = Counts({"00": 1}).merged(Counts({"00": 2, "11": 3}))
    assert merged == {"00": 3, "11": 3}
    assert merged.num_qubits == 2
    with pytest.raises(SimulationError):
        Counts({"0": 1}).merged(Counts({"00": 1}))


def test_merged_with_empty_operands():
    """Empty (width-0) Counts merge as neutral elements on either side."""
    empty = Counts()
    assert empty.num_qubits == 0
    populated = Counts({"01": 4}, num_qubits=2)

    left = empty.merged(populated)
    assert left == populated
    assert left.num_qubits == 2  # width adopted from the populated side

    right = populated.merged(empty)
    assert right == populated
    assert right.num_qubits == 2

    both = empty.merged(Counts())
    assert both == {}
    assert both.num_qubits == 0
    assert both.shots == 0


def test_merged_width_zero_from_dropped_outcomes():
    """A Counts whose every outcome was zero-count behaves as width-0."""
    ghost = Counts({"11": 0})
    assert ghost.num_qubits == 0
    merged = ghost.merged(Counts({"101": 2}))
    assert merged == {"101": 2}
    assert merged.num_qubits == 3


def test_merged_returns_counts_instance():
    merged = Counts().merged(Counts({"1": 1}))
    assert isinstance(merged, Counts)
    with pytest.raises(TypeError):
        merged["1"] = 5  # merged results stay frozen


def test_repr_shows_shots():
    assert "shots=4" in repr(Counts({"0": 4}))
