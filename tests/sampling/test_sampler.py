"""Shot sampling: reproducibility contract and statistical sanity."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.sampling import sample_counts, sample_memory
from repro.sim import run
from repro.utils.exceptions import SimulationError
from repro.utils.rng import derive_seed


def bell() -> Circuit:
    return Circuit(2).h(0).cx(0, 1)


def test_deterministic_outcome_gets_all_shots():
    counts = sample_counts(Circuit(2).x(1), shots=100, seed=0)
    assert counts == {"01": 100}
    assert counts.shots == 100


def test_same_seed_same_counts():
    assert sample_counts(bell(), 500, seed=7) == sample_counts(bell(), 500, seed=7)


def test_different_seeds_differ():
    a = sample_counts(bell(), 500, seed=1)
    b = sample_counts(bell(), 500, seed=2)
    assert a != b  # astronomically unlikely to collide


def test_repetitions_are_independent_but_reproducible():
    rep0 = sample_counts(bell(), 500, seed=7, repetition=0)
    rep1 = sample_counts(bell(), 500, seed=7, repetition=1)
    assert rep0 != rep1
    assert rep1 == sample_counts(bell(), 500, seed=7, repetition=1)


def test_repetition_stream_matches_derive_seed():
    """The (seed, repetition) stream is exactly derive_seed's contract.

    Integer seeds are always mixed with the repetition index, so the derived
    seed is fed back through a Generator (passthrough, no re-mixing).
    """
    direct = sample_counts(bell(), 300, seed=np.random.default_rng(derive_seed(9, 4)))
    via_repetition = sample_counts(bell(), 300, seed=9, repetition=4)
    assert direct == via_repetition


def test_statevector_source_skips_resimulation():
    state = run(bell())
    assert sample_counts(state, 200, seed=3) == sample_counts(bell(), 200, seed=3)


def test_bell_sampling_statistics():
    counts = sample_counts(bell(), 10_000, seed=11)
    assert set(counts) == {"00", "11"}
    assert counts["00"] == pytest.approx(5000, abs=300)


def test_generator_seed_accepted():
    rng = np.random.default_rng(5)
    counts = sample_counts(bell(), 100, seed=rng)
    assert counts.shots == 100


def test_seed_sequence_respects_repetition():
    """SeedSequence seeds must get independent per-repetition streams too."""
    seq = np.random.SeedSequence(42)
    rep0 = sample_counts(bell(), 500, seed=np.random.SeedSequence(42), repetition=0)
    rep1 = sample_counts(bell(), 500, seed=seq, repetition=1)
    assert rep0 != rep1
    assert rep1 == sample_counts(bell(), 500, seed=np.random.SeedSequence(42), repetition=1)


def test_validation():
    with pytest.raises(SimulationError):
        sample_counts(bell(), 0)
    with pytest.raises(SimulationError):
        sample_counts(bell(), 10, repetition=-1)
    with pytest.raises(SimulationError):
        sample_counts("nope", 10)


def test_sample_memory_order_and_determinism():
    memory = sample_memory(bell(), 50, seed=13)
    assert len(memory) == 50
    assert set(memory) <= {"00", "11"}
    assert memory == sample_memory(bell(), 50, seed=13)


def test_sample_memory_aggregates_to_counts_distribution():
    memory = sample_memory(Circuit(1).x(0), 20, seed=0)
    assert memory == ["1"] * 20


class TestExplicitGeneratorWithRepetition:
    """An explicit Generator seed is used as-is; repetition only validates."""

    def test_counts_consume_generator_stream(self):
        # Two identically seeded Generators must reproduce each other even
        # with a nonzero repetition (which must NOT re-mix an explicit rng).
        a = sample_counts(bell(), 400, seed=np.random.default_rng(21), repetition=3)
        b = sample_counts(bell(), 400, seed=np.random.default_rng(21), repetition=3)
        assert a == b

    def test_repetition_does_not_remix_generator(self):
        rep0 = sample_counts(bell(), 400, seed=np.random.default_rng(21), repetition=0)
        rep5 = sample_counts(bell(), 400, seed=np.random.default_rng(21), repetition=5)
        assert rep0 == rep5

    def test_memory_consume_generator_stream(self):
        a = sample_memory(bell(), 60, seed=np.random.default_rng(8), repetition=2)
        b = sample_memory(bell(), 60, seed=np.random.default_rng(8), repetition=2)
        assert a == b

    def test_negative_repetition_still_rejected(self):
        with pytest.raises(SimulationError):
            sample_counts(bell(), 10, seed=np.random.default_rng(1), repetition=-1)

    def test_shared_generator_advances_between_calls(self):
        rng = np.random.default_rng(33)
        first = sample_counts(bell(), 400, seed=rng, repetition=1)
        second = sample_counts(bell(), 400, seed=rng, repetition=1)
        assert first != second  # the stream moved on


class TestBackendSelection:
    def test_density_backend_counts_match_statevector(self):
        sv = sample_counts(bell(), 300, seed=5, backend="statevector")
        dm = sample_counts(bell(), 300, seed=5, backend="density_matrix")
        assert sv == dm

    def test_density_matrix_source(self):
        state = run(bell(), backend="density_matrix")
        assert sample_counts(state, 200, seed=3) == sample_counts(bell(), 200, seed=3)

    def test_sample_memory_density_backend(self):
        sv = sample_memory(bell(), 40, seed=5, backend="statevector")
        dm = sample_memory(bell(), 40, seed=5, backend="density_matrix")
        assert sv == dm

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            sample_counts(bell(), 10, backend="nope")


class TestNoiseModelSampling:
    def test_gate_noise_requires_circuit_source(self):
        from repro.noise import NoiseModel, bit_flip

        model = NoiseModel().add_channel(bit_flip(0.1))
        with pytest.raises(SimulationError, match="Circuit"):
            sample_counts(run(bell()), 10, noise_model=model)

    def test_gate_noise_with_density_backend_changes_distribution(self):
        from repro.noise import NoiseModel, bit_flip

        model = NoiseModel().add_channel(bit_flip(0.25))
        noisy = sample_counts(
            bell(), 2000, seed=5, backend="density_matrix", noise_model=model
        )
        assert set(noisy) == {"00", "01", "10", "11"}

    def test_readout_error_applies_to_state_sources(self):
        from repro.noise import NoiseModel, ReadoutError

        model = NoiseModel().set_readout_error(ReadoutError(0.5, 0.5))
        counts = sample_counts(run(Circuit(1).x(0)), 2000, seed=5, noise_model=model)
        assert counts["0"] == pytest.approx(1000, abs=150)


class TestDynamicCircuitGuard:
    def test_sample_counts_rejects_dynamic_circuits(self):
        circuit = Circuit(1, num_clbits=1).h(0).measure(0, 0)
        with pytest.raises(SimulationError, match="dynamic"):
            sample_counts(circuit, 10)

    def test_sample_memory_rejects_dynamic_circuits(self):
        circuit = Circuit(1).h(0).reset(0)
        with pytest.raises(SimulationError, match="dynamic"):
            sample_memory(circuit, 10)
