"""Instruction binding: arity/duplicate/range validation and remapping."""

import numpy as np
import pytest

from repro.circuit import Instruction
from repro.gates import get_gate
from repro.utils.exceptions import CircuitError


def test_arity_mismatch_rejected():
    with pytest.raises(CircuitError):
        Instruction(get_gate("cx"), (0,))
    with pytest.raises(CircuitError):
        Instruction(get_gate("h"), (0, 1))


def test_duplicate_qubits_rejected():
    with pytest.raises(CircuitError):
        Instruction(get_gate("cx"), (1, 1))


def test_negative_qubits_rejected():
    with pytest.raises(CircuitError):
        Instruction(get_gate("h"), (-1,))


def test_non_gate_rejected():
    with pytest.raises(CircuitError):
        Instruction(np.eye(2), (0,))


def test_qubit_order_preserved():
    instruction = Instruction(get_gate("cx"), (3, 1))
    assert instruction.qubits == (3, 1)


def test_inverse_inverts_gate_in_place():
    instruction = Instruction(get_gate("s"), (2,))
    inv = instruction.inverse()
    assert inv.qubits == (2,)
    assert np.allclose(inv.gate.matrix @ instruction.gate.matrix, np.eye(2))


def test_remapped():
    instruction = Instruction(get_gate("cx"), (0, 1))
    moved = instruction.remapped((2, 0))
    assert moved.qubits == (2, 0)
    assert moved.gate is instruction.gate
    with pytest.raises(CircuitError):
        instruction.remapped((0,))  # mapping too short


def test_equality():
    a = Instruction(get_gate("h"), (0,))
    b = Instruction(get_gate("h"), (0,))
    c = Instruction(get_gate("h"), (1,))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
