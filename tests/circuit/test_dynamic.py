"""Dynamic-circuit IR: Measure / Reset / Conditional leaves + clbit register."""

import pickle

import pytest

from repro import Circuit, Conditional, Instruction, Measure, Parameter, Reset
from repro.circuit.dynamic import clbits_used
from repro.gates import get_gate
from repro.utils.exceptions import CircuitError


class TestMeasure:
    def test_value_object_semantics(self):
        assert Measure(2) == Measure(2)
        assert Measure(2) != Measure(3)
        assert hash(Measure(2)) == hash(Measure(2))
        assert Measure(0).num_qubits == 1
        assert Measure(0).name == "measure"
        assert "clbit=2" in repr(Measure(2))

    @pytest.mark.parametrize("bad", [-1, 1.5, "0", True, None])
    def test_invalid_clbit_rejected(self, bad):
        with pytest.raises(CircuitError, match="clbit"):
            Measure(bad)

    def test_not_invertible(self):
        instruction = Instruction(Measure(0), (0,))
        with pytest.raises(CircuitError, match="invert"):
            instruction.inverse()


class TestReset:
    def test_value_object_semantics(self):
        assert Reset() == Reset()
        assert hash(Reset()) == hash(Reset())
        assert Reset().num_qubits == 1
        assert Reset().name == "reset"

    def test_not_invertible(self):
        with pytest.raises(CircuitError, match="invert"):
            Instruction(Reset(), (0,)).inverse()


class TestConditional:
    def test_wraps_concrete_gate(self):
        gate = get_gate("x")
        conditional = Conditional(1, 1, gate)
        assert conditional.clbit == 1
        assert conditional.value == 1
        assert conditional.operation is gate
        assert conditional.num_qubits == 1
        assert conditional.name == "if[x]"

    def test_value_object_semantics(self):
        a = Conditional(0, 1, get_gate("x"))
        b = Conditional(0, 1, get_gate("x"))
        c = Conditional(0, 0, get_gate("x"))
        assert a == b and hash(a) == hash(b)
        assert a != c

    @pytest.mark.parametrize("value", [-1, 2, "1"])
    def test_value_must_be_binary(self, value):
        with pytest.raises(CircuitError, match="0 or 1"):
            Conditional(0, value, get_gate("x"))

    def test_parametric_gate_rejected(self):
        theta = Parameter("theta")
        with pytest.raises(CircuitError, match="parametric"):
            Conditional(0, 1, get_gate("rx", theta))

    def test_non_gate_rejected(self):
        with pytest.raises(CircuitError, match="Gate"):
            Conditional(0, 1, Measure(0))


class TestCircuitBuilders:
    def test_measure_widens_classical_register(self):
        circuit = Circuit(2).h(0).measure(0, 3)
        assert circuit.num_clbits == 4
        assert circuit.has_dynamic_ops()

    def test_explicit_num_clbits(self):
        circuit = Circuit(2, num_clbits=5)
        assert circuit.num_clbits == 5
        circuit.measure(0, 1)  # within register: no widening
        assert circuit.num_clbits == 5

    def test_negative_num_clbits_rejected(self):
        with pytest.raises(CircuitError, match="clbits"):
            Circuit(1, num_clbits=-1)

    def test_if_bit_requires_instruction(self):
        with pytest.raises(CircuitError, match="Instruction"):
            Circuit(1).if_bit(0, 1, get_gate("x"))

    def test_if_bit_widens_register(self):
        circuit = Circuit(2).if_bit(2, 1, Instruction(get_gate("x"), (1,)))
        assert circuit.num_clbits == 3

    def test_reset_does_not_touch_classical_register(self):
        circuit = Circuit(1).reset(0)
        assert circuit.num_clbits == 0
        assert circuit.has_dynamic_ops()

    def test_static_circuit_has_no_dynamic_ops(self):
        assert not Circuit(2).h(0).cx(0, 1).has_dynamic_ops()

    def test_stats_counts_dynamic_ops(self):
        circuit = (
            Circuit(3)
            .h(0)
            .measure(0, 0)
            .measure(1, 1)
            .reset(2)
            .if_bit(0, 1, Instruction(get_gate("x"), (2,)))
        )
        stats = circuit.stats()
        assert stats.num_measurements == 2
        assert stats.num_resets == 1
        assert stats.num_conditionals == 1
        assert stats.num_clbits == 2
        assert stats.gate_counts["measure"] == 2
        assert stats.gate_counts["if[x]"] == 1

    def test_copy_and_compose_preserve_clbits(self):
        circuit = Circuit(2).measure(0, 1)
        assert circuit.copy().num_clbits == 2
        wide = Circuit(3).compose(circuit, qubits=(1, 2))
        assert wide.num_clbits == 2
        assert wide.has_dynamic_ops()

    def test_pickle_round_trip(self):
        circuit = (
            Circuit(2, num_clbits=2)
            .h(0)
            .measure(0, 0)
            .reset(1)
            .if_bit(0, 1, Instruction(get_gate("z"), (1,)))
        )
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.num_clbits == 2
        assert list(clone) == list(circuit)


class TestClbitsUsed:
    def test_widths(self):
        assert clbits_used(Measure(4)) == 5
        assert clbits_used(Conditional(2, 0, get_gate("x"))) == 3
        assert clbits_used(Reset()) == 0
        assert clbits_used(get_gate("h")) == 0


class TestPinnedClassicalRegister:
    def test_default_register_is_unpinned(self):
        assert Circuit(2).clbits_pinned is False

    def test_explicit_width_pins(self):
        assert Circuit(2, num_clbits=3).clbits_pinned is True
        assert Circuit(2, num_clbits=0).clbits_pinned is True

    def test_pinned_measure_out_of_range_raises_eagerly(self):
        circuit = Circuit(2, num_clbits=2)
        with pytest.raises(CircuitError, match="pinned"):
            circuit.measure(0, 2)
        assert len(circuit) == 0  # the bad append left no trace

    def test_pinned_if_bit_out_of_range_raises_eagerly(self):
        circuit = Circuit(2, num_clbits=1)
        with pytest.raises(CircuitError, match="pinned"):
            circuit.if_bit(4, 1, Instruction(get_gate("x"), (0,)))

    def test_pinned_within_range_appends(self):
        circuit = Circuit(2, num_clbits=2).measure(0, 1)
        assert circuit.num_clbits == 2

    def test_unpinned_still_widens(self):
        circuit = Circuit(2).measure(0, 5)
        assert circuit.num_clbits == 6

    def test_copy_preserves_pin(self):
        assert Circuit(1, num_clbits=1).copy().clbits_pinned is True
        assert Circuit(1).copy().clbits_pinned is False

    def test_remapped_preserves_pin(self):
        assert Circuit(2, num_clbits=1).remapped([1, 0]).clbits_pinned is True
        assert Circuit(2).remapped([1, 0]).clbits_pinned is False

    def test_bind_preserves_pin(self):
        theta = Parameter("theta")
        template = Circuit(1, num_clbits=1).ry(theta, 0).measure(0, 0)
        assert template.bind({"theta": 0.5}).clbits_pinned is True

    def test_compose_pins_if_either_side_is_pinned(self):
        pinned = Circuit(1, num_clbits=1).measure(0, 0)
        auto = Circuit(1).measure(0, 0)
        assert auto.compose(pinned).clbits_pinned is True
        assert pinned.compose(auto).clbits_pinned is True
        assert auto.compose(auto.copy()).clbits_pinned is False

    def test_compose_merges_to_the_wider_register(self):
        wide = Circuit(1, num_clbits=4)
        narrow = Circuit(1, num_clbits=1).measure(0, 0)
        assert narrow.compose(wide).num_clbits == 4

    def test_pickle_preserves_pin(self):
        pinned = pickle.loads(pickle.dumps(Circuit(1, num_clbits=2)))
        assert pinned.clbits_pinned is True
        auto = pickle.loads(pickle.dumps(Circuit(1)))
        assert auto.clbits_pinned is False

    def test_transpile_preserves_pin(self):
        from repro.transpile import transpile

        pinned = Circuit(2, num_clbits=1).h(0).h(0).measure(0, 0)
        assert transpile(pinned).clbits_pinned is True
        auto = Circuit(2).h(0).h(0).measure(0, 0)
        assert transpile(auto).clbits_pinned is False

    def test_extend_respects_pin(self):
        source = Circuit(1).measure(0, 3)
        with pytest.raises(CircuitError, match="pinned"):
            Circuit(1, num_clbits=1).extend(source.instructions)
