"""Gate value-object semantics: immutability, validation, inverse."""

import numpy as np
import pytest

from repro.circuit import Gate
from repro.utils.exceptions import CircuitError

X = np.array([[0, 1], [1, 0]], dtype=complex)
S = np.array([[1, 0], [0, 1j]], dtype=complex)


def test_matrix_shape_validated():
    with pytest.raises(CircuitError):
        Gate("bad", 2, X)  # 2-qubit gate needs a 4x4 matrix
    with pytest.raises(CircuitError):
        Gate("bad", 1, np.eye(3))


def test_name_and_arity_validated():
    with pytest.raises(CircuitError):
        Gate("", 1, X)
    with pytest.raises(CircuitError):
        Gate("x", 0, np.eye(1))


def test_matrix_is_read_only_and_decoupled():
    source = X.copy()
    gate = Gate("x", 1, source)
    source[0, 0] = 99  # mutating the input must not affect the gate
    assert gate.matrix[0, 0] == 0
    with pytest.raises(ValueError):
        gate.matrix[0, 0] = 1


def test_params_are_bound_floats():
    gate = Gate("rz", 1, np.eye(2), params=(np.float64(0.5),))
    assert gate.params == (0.5,)
    assert isinstance(gate.params[0], float)


def test_self_inverse_gate_keeps_name():
    gate = Gate("x", 1, X)
    inv = gate.inverse()
    assert inv.name == "x"
    assert np.allclose(inv.matrix, X)


def test_non_self_inverse_gate_gets_dagger_suffix():
    gate = Gate("s", 1, S)
    inv = gate.inverse()
    assert inv.name == "sdg"
    assert np.allclose(inv.matrix @ S, np.eye(2))
    assert inv.inverse().name == "s"


def test_inverse_names_resolve_through_the_gate_library():
    """Adjoint naming must match the registry ('sdg'/'tdg', not 's_dg')."""
    from repro.gates import get_gate

    for name in ("s", "t"):
        inv = get_gate(name).inverse()
        assert np.allclose(get_gate(inv.name).matrix, inv.matrix)
        assert get_gate(inv.name).inverse().name == name


def test_parametric_inverse_stays_registry_resolvable():
    """(name, params) of an inverted rotation must still denote its matrix."""
    from repro.gates import get_gate

    for name, params in [
        ("rx", (1.0,)), ("ry", (0.4,)), ("rz", (-0.7,)),
        ("p", (0.3,)), ("u3", (0.1, 0.2, 0.3)),
    ]:
        gate = get_gate(name, *params)
        inv = gate.inverse()
        round_tripped = get_gate(inv.name, *inv.params)
        assert np.allclose(round_tripped.matrix, gate.matrix.conj().T, atol=1e-12)
        assert np.allclose(
            inv.matrix @ gate.matrix, np.eye(1 << gate.num_qubits), atol=1e-12
        )


def test_is_unitary():
    assert Gate("x", 1, X).is_unitary()
    assert not Gate("proj", 1, np.array([[1, 0], [0, 0]])).is_unitary()


def test_equality_and_hash():
    a = Gate("x", 1, X)
    b = Gate("x", 1, X)
    c = Gate("s", 1, S)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
