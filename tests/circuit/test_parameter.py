"""Tests for Parameter symbols, parametric gates, and Circuit.bind."""

import numpy as np
import pytest

from repro.circuit import Circuit, Parameter
from repro.gates import get_gate
from repro.utils.exceptions import CircuitError


class TestParameter:
    def test_name_identity(self):
        theta = Parameter("theta")
        assert theta.name == "theta"
        assert theta == Parameter("theta")
        assert theta != Parameter("phi")
        assert hash(theta) == hash(Parameter("theta"))

    def test_invalid_name(self):
        with pytest.raises(CircuitError):
            Parameter("")
        with pytest.raises(CircuitError):
            Parameter(3)

    def test_float_coercion_refused(self):
        with pytest.raises(CircuitError, match="unbound"):
            float(Parameter("theta"))

    def test_repr(self):
        assert repr(Parameter("theta")) == "Parameter('theta')"


class TestParametricGate:
    def test_registry_builds_deferred_gate(self):
        gate = get_gate("rz", Parameter("theta"))
        assert gate.is_parametric
        assert gate.parameters == (Parameter("theta"),)
        assert gate.params == (Parameter("theta"),)

    def test_matrix_access_raises(self):
        gate = get_gate("rx", Parameter("theta"))
        with pytest.raises(CircuitError, match="unbound"):
            gate.matrix

    def test_inverse_raises(self):
        gate = get_gate("ry", Parameter("theta"))
        with pytest.raises(CircuitError, match="inverse"):
            gate.inverse()

    def test_is_unitary_raises(self):
        gate = get_gate("rz", Parameter("theta"))
        with pytest.raises(CircuitError):
            gate.is_unitary()

    def test_parametric_gates_cached_by_identity(self):
        assert get_gate("rz", Parameter("a")) is get_gate("rz", Parameter("a"))
        assert get_gate("rz", Parameter("a")) is not get_gate("rz", Parameter("b"))

    def test_bound_gate_never_deferred(self):
        assert not get_gate("rz", 0.5).is_parametric
        assert get_gate("rz", 0.5).parameters == ()

    def test_gate_with_matrix_rejects_unbound_params(self):
        from repro.circuit import Gate

        with pytest.raises(CircuitError, match="unbound"):
            Gate("rz", 1, np.eye(2), (Parameter("theta"),))

    def test_gate_without_matrix_requires_parameters(self):
        from repro.circuit import Gate

        with pytest.raises(CircuitError, match="no unbound parameters"):
            Gate("rz", 1, None, (0.5,))

    def test_mixed_bound_and_unbound_params(self):
        gate = get_gate("u3", 0.1, Parameter("phi"), 0.3)
        assert gate.is_parametric
        assert gate.parameters == (Parameter("phi"),)
        assert gate.params == (0.1, Parameter("phi"), 0.3)


class TestCircuitBind:
    def test_parameters_in_first_use_order(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = Circuit(2).rz(b, 0).rx(a, 1).ry(b, 0)
        assert circuit.parameters() == (b, a)
        assert circuit.is_parametric()

    def test_bind_produces_concrete_circuit(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        bound = circuit.bind({theta: 0.7})
        assert not bound.is_parametric()
        reference = Circuit(1).ry(0.7, 0)
        assert bound == reference
        # Binding is non-destructive: the template stays symbolic.
        assert circuit.is_parametric()

    def test_bind_by_name(self):
        circuit = Circuit(1).rz(Parameter("theta"), 0)
        assert circuit.bind({"theta": 1.2}) == Circuit(1).rz(1.2, 0)

    def test_partial_binding_keeps_rest_symbolic(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = Circuit(2).rx(a, 0).ry(b, 1)
        partial = circuit.bind({a: 0.5})
        assert partial.parameters() == (b,)
        full = partial.bind({b: 0.25})
        assert full == Circuit(2).rx(0.5, 0).ry(0.25, 1)

    def test_shared_symbol_binds_everywhere(self):
        theta = Parameter("theta")
        circuit = Circuit(2).rz(theta, 0).rz(theta, 1)
        bound = circuit.bind({theta: 0.3})
        assert bound == Circuit(2).rz(0.3, 0).rz(0.3, 1)

    def test_stray_key_rejected(self):
        circuit = Circuit(1).rz(Parameter("theta"), 0)
        with pytest.raises(CircuitError, match="unknown parameter"):
            circuit.bind({"theta": 0.1, "typo": 0.2})

    def test_conflicting_values_rejected(self):
        theta = Parameter("theta")
        circuit = Circuit(1).rz(theta, 0)
        with pytest.raises(CircuitError, match="conflicting"):
            circuit.bind({theta: 0.1, "theta": 0.2})

    def test_non_parametric_instructions_survive_bind(self):
        from repro.noise import depolarizing

        theta = Parameter("theta")
        circuit = (
            Circuit(2)
            .h(0)
            .channel(depolarizing(0.05), (0,))
            .ry(theta, 1)
            .unitary(np.eye(4), (0, 1))
        )
        bound = circuit.bind({theta: 0.4})
        assert bound.count_ops() == circuit.count_ops()
        assert bound.has_channels()

    def test_simulating_unbound_circuit_fails_loudly(self):
        from repro import run
        from repro.utils.exceptions import SimulationError

        circuit = Circuit(1).ry(Parameter("theta"), 0)
        with pytest.raises(SimulationError, match="unbound parameter"):
            run(circuit)

    def test_transpile_treats_parametric_gates_as_barriers(self):
        from repro.transpile import transpile

        theta = Parameter("theta")
        # h·h around the parametric gate must not cancel through it, and
        # the parametric gate itself must survive fusion untouched.
        circuit = Circuit(1).h(0).ry(theta, 0).h(0).rz(0.0, 0)
        out = transpile(circuit)
        assert any(inst.is_parametric for inst in out)
        bound = out.bind({theta: 0.0})
        from repro import run

        expected = run(circuit.bind({theta: 0.0}))
        np.testing.assert_allclose(run(bound).data, expected.data, atol=1e-10)
