"""Tests for the Channel IR leaf and channel-bearing instructions/circuits."""

import numpy as np
import pytest

from repro.circuit import Channel, Circuit, Instruction
from repro.gates import get_gate
from repro.utils.exceptions import CircuitError, NoiseModelError

_I = np.eye(2)
_X = np.array([[0.0, 1.0], [1.0, 0.0]])


def _flip(p=0.25):
    return Channel("flip", 1, [np.sqrt(1 - p) * _I, np.sqrt(p) * _X], params=(p,))


class TestChannelConstruction:
    def test_basic_properties(self):
        channel = _flip(0.25)
        assert channel.name == "flip"
        assert channel.num_qubits == 1
        assert channel.params == (0.25,)
        assert len(channel.kraus) == 2

    def test_kraus_matrices_read_only(self):
        channel = _flip()
        with pytest.raises(ValueError):
            channel.kraus[0][0, 0] = 9.0

    def test_trace_preserving_check(self):
        assert _flip().is_trace_preserving()

    def test_non_trace_preserving_rejected(self):
        with pytest.raises(NoiseModelError):
            Channel("bad", 1, [0.5 * _I])

    def test_validate_false_skips_check(self):
        channel = Channel("bad", 1, [0.5 * _I], validate=False)
        assert not channel.is_trace_preserving()

    def test_empty_kraus_rejected(self):
        with pytest.raises(CircuitError):
            Channel("empty", 1, [])

    def test_wrong_shape_rejected(self):
        with pytest.raises(CircuitError):
            Channel("bad", 2, [np.eye(2)])

    def test_bad_name_rejected(self):
        with pytest.raises(CircuitError):
            Channel("", 1, [_I])

    def test_bad_arity_rejected(self):
        with pytest.raises(CircuitError):
            Channel("bad", 0, [np.eye(1)])

    def test_unital_query(self):
        assert _flip().is_unital()
        damping = Channel(
            "damp",
            1,
            [
                np.array([[1.0, 0.0], [0.0, np.sqrt(0.5)]]),
                np.array([[0.0, np.sqrt(0.5)], [0.0, 0.0]]),
            ],
        )
        assert not damping.is_unital()

    def test_equality_and_hash(self):
        assert _flip(0.25) == _flip(0.25)
        assert _flip(0.25) != _flip(0.5)
        assert hash(_flip(0.25)) == hash(_flip(0.25))

    def test_repr(self):
        assert "flip" in repr(_flip())
        assert "kraus=2" in repr(_flip())


class TestChannelInstruction:
    def test_instruction_accepts_channel(self):
        instruction = Instruction(_flip(), (1,))
        assert instruction.is_channel
        assert instruction.operation.name == "flip"
        assert instruction.qubits == (1,)

    def test_gate_property_raises_for_channel(self):
        instruction = Instruction(_flip(), (0,))
        with pytest.raises(CircuitError, match="not a gate"):
            instruction.gate

    def test_gate_property_still_works_for_gates(self):
        instruction = Instruction(get_gate("h"), (0,))
        assert not instruction.is_channel
        assert instruction.gate is instruction.operation

    def test_channel_instruction_not_invertible(self):
        with pytest.raises(CircuitError, match="not invertible"):
            Instruction(_flip(), (0,)).inverse()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            Instruction(_flip(), (0, 1))

    def test_remap(self):
        moved = Instruction(_flip(), (0,)).remapped([2])
        assert moved.qubits == (2,)
        assert moved.is_channel


class TestChannelInCircuit:
    def test_channel_method_appends(self):
        circuit = Circuit(2).h(0).channel(_flip(), (0,)).cx(0, 1)
        assert len(circuit) == 3
        assert circuit.has_channels()
        assert circuit.count_ops() == {"h": 1, "flip": 1, "cx": 1}

    def test_channel_method_rejects_gates(self):
        with pytest.raises(CircuitError):
            Circuit(1).channel(get_gate("h"), (0,))

    def test_noiseless_circuit_has_no_channels(self):
        assert not Circuit(2).h(0).cx(0, 1).has_channels()

    def test_channel_out_of_range(self):
        with pytest.raises(CircuitError):
            Circuit(1).channel(_flip(), (3,))

    def test_compose_carries_channels(self):
        noisy = Circuit(1).channel(_flip(), (0,))
        combined = Circuit(2).h(0).compose(noisy, qubits=[1])
        assert combined.has_channels()
        assert combined[-1].qubits == (1,)

    def test_remapped_carries_channels(self):
        circuit = Circuit(2).channel(_flip(), (0,)).remapped([1, 0])
        assert circuit[0].qubits == (1,)
        assert circuit[0].is_channel

    def test_inverse_raises_with_channels(self):
        with pytest.raises(CircuitError):
            Circuit(1).channel(_flip(), (0,)).inverse()

    def test_extend_carries_channels(self):
        source = Circuit(1).channel(_flip(), (0,))
        circuit = Circuit(1).extend(source.instructions)
        assert circuit.has_channels()

    def test_depth_counts_channels(self):
        circuit = Circuit(1).h(0).channel(_flip(), (0,)).h(0)
        assert circuit.depth() == 3


class TestChannelUnpickling:
    def test_round_trip_re_freezes_kraus(self):
        import pickle

        clone = pickle.loads(pickle.dumps(_flip()))
        assert clone == _flip()
        for operator in clone.kraus:
            assert not operator.flags.writeable

    def test_corrupted_state_shape_rejected(self):
        channel = _flip()
        slots = {
            "_name": "flip",
            "_num_qubits": 1,
            "_kraus": (np.eye(4),),  # wrong dim for 1 qubit
            "_params": (0.25,),
        }
        clone = Channel.__new__(Channel)
        with pytest.raises(CircuitError, match="shape"):
            clone.__setstate__((None, slots))

    def test_valid_state_restores(self):
        source = _flip()
        slots = {
            "_name": source.name,
            "_num_qubits": source.num_qubits,
            "_kraus": tuple(np.array(k) for k in source.kraus),
            "_params": source.params,
        }
        clone = Channel.__new__(Channel)
        clone.__setstate__((None, slots))
        assert clone == source
        for operator in clone.kraus:
            assert not operator.flags.writeable
