"""Circuit container: append validation, transforms, structural queries."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.gates import get_gate
from repro.utils.exceptions import CircuitError


def bell() -> Circuit:
    return Circuit(2, name="bell").h(0).cx(0, 1)


class TestConstruction:
    def test_width_validated(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_append_range_checked(self):
        circuit = Circuit(2)
        with pytest.raises(CircuitError):
            circuit.append(get_gate("h"), (2,))
        with pytest.raises(CircuitError):
            circuit.cx(0, 5)

    def test_append_chains_and_records_order(self):
        circuit = bell()
        assert len(circuit) == 2
        assert [i.gate.name for i in circuit] == ["h", "cx"]
        assert circuit[1].qubits == (0, 1)

    def test_convenience_methods_cover_standard_library(self):
        circuit = Circuit(3)
        circuit.x(0).y(0).z(0).h(0).s(0).t(0)
        circuit.rx(0.1, 1).ry(0.2, 1).rz(0.3, 1).u3(0.1, 0.2, 0.3, 1)
        circuit.cx(0, 1).cz(1, 2).swap(0, 2)
        assert len(circuit) == 13

    def test_extend_revalidates_against_width(self):
        wide = Circuit(3).cx(1, 2)
        narrow = Circuit(2)
        with pytest.raises(CircuitError):
            narrow.extend(wide.instructions)

    def test_copy_is_independent(self):
        a = bell()
        b = a.copy()
        b.x(0)
        assert len(a) == 2 and len(b) == 3
        assert a.name == b.name


class TestTransforms:
    def test_compose_identity_mapping(self):
        combined = bell().compose(Circuit(2).x(1))
        assert [i.gate.name for i in combined] == ["h", "cx", "x"]

    def test_compose_with_mapping(self):
        big = Circuit(3)
        combined = big.compose(bell(), qubits=(2, 0))
        assert combined[0].qubits == (2,)
        assert combined[1].qubits == (2, 0)

    def test_compose_validates_mapping(self):
        with pytest.raises(CircuitError):
            Circuit(2).compose(bell(), qubits=(0,))
        with pytest.raises(CircuitError):
            Circuit(2).compose(bell(), qubits=(0, 0))
        with pytest.raises(CircuitError):
            Circuit(1).compose(bell())

    def test_inverse_reverses_and_daggers(self):
        circuit = Circuit(1).h(0).s(0)
        inv = circuit.inverse()
        assert [i.gate.name for i in inv] == ["sdg", "h"]
        # circuit ∘ inverse == identity
        matrix = np.eye(2, dtype=complex)
        for instruction in circuit.compose(inv):
            matrix = instruction.gate.matrix @ matrix
        assert np.allclose(matrix, np.eye(2), atol=1e-10)

    def test_remapped(self):
        moved = bell().remapped((1, 2), num_qubits=3)
        assert moved.num_qubits == 3
        assert moved[1].qubits == (1, 2)


class TestQueries:
    def test_depth_parallel_gates_share_a_layer(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1

    def test_depth_chains_through_shared_qubits(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(0)
        assert circuit.depth() == 3
        assert Circuit(2).depth() == 0

    def test_count_ops(self):
        assert bell().count_ops() == {"h": 1, "cx": 1}

    def test_active_qubits(self):
        circuit = Circuit(5).h(3).cx(3, 1)
        assert circuit.active_qubits() == (1, 3)

    def test_equality_ignores_name(self):
        assert bell() == Circuit(2).h(0).cx(0, 1)
        assert bell() != Circuit(2).h(0)

    def test_repr_mentions_shape(self):
        text = repr(bell())
        assert "2 qubits" in text and "depth 2" in text


class TestStats:
    def test_stats_of_plain_circuit(self):
        from repro.circuit import CircuitStats

        stats = bell().stats()
        assert isinstance(stats, CircuitStats)
        assert stats.num_qubits == 2
        assert stats.num_instructions == 2
        assert stats.depth == 2
        assert stats.gate_counts == {"h": 1, "cx": 1}
        assert stats.num_parametric == 0
        assert stats.num_parameters == 0
        assert stats.num_channels == 0

    def test_stats_counts_parametric_slots_and_symbols(self):
        from repro.circuit import Parameter

        theta = Parameter("theta")
        circuit = Circuit(2).ry(theta, 0).rz(theta, 1).rx(0.5, 0)
        stats = circuit.stats()
        assert stats.num_parametric == 2  # two slots...
        assert stats.num_parameters == 1  # ...sharing one symbol
        assert stats.gate_counts == {"ry": 1, "rz": 1, "rx": 1}

    def test_stats_counts_channels(self):
        from repro.noise import depolarizing

        circuit = Circuit(1).h(0).channel(depolarizing(0.1), (0,))
        stats = circuit.stats()
        assert stats.num_channels == 1
        assert stats.gate_counts == {"h": 1, "depolarizing": 1}

    def test_stats_key_is_hashable_and_discriminates(self):
        a, b = bell().stats(), Circuit(2).h(0).cx(0, 1).stats()
        assert a == b and hash(a) == hash(b)
        assert {a.key()} == {b.key()}
        assert a.key() != Circuit(2).h(0).stats().key()

    def test_stats_as_dict_round_trips_json(self):
        import json

        payload = json.dumps(bell().stats().as_dict())
        assert json.loads(payload)["gate_counts"] == {"h": 1, "cx": 1}

    def test_stats_immutable_and_defensive(self):
        stats = bell().stats()
        with pytest.raises(AttributeError):
            stats.depth = 99
        stats.as_dict()["gate_counts"]["h"] = 5
        assert stats.gate_counts == {"h": 1, "cx": 1}

    def test_stats_gate_counts_read_only(self):
        stats = bell().stats()
        with pytest.raises(TypeError):
            stats.gate_counts["h"] = 99
        assert hash(stats) == hash(bell().stats())
