"""Tests for the standard Kraus channel library."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.noise import (
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.sim import DensityMatrix, get_backend
from repro.utils.exceptions import NoiseModelError

ALL_BUILDERS = [
    lambda: depolarizing(0.1),
    lambda: depolarizing(0.1, num_qubits=2),
    lambda: bit_flip(0.1),
    lambda: phase_flip(0.1),
    lambda: bit_phase_flip(0.1),
    lambda: amplitude_damping(0.1),
    lambda: phase_damping(0.1),
]


class TestTracePreservation:
    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_every_shipped_channel_is_trace_preserving(self, build):
        channel = build()
        assert channel.is_trace_preserving()
        # Explicitly verify sum(K†K) == I, not just the cached flag.
        dim = 1 << channel.num_qubits
        total = sum(k.conj().T @ k for k in channel.kraus)
        assert np.allclose(total, np.eye(dim), atol=1e-12)

    @pytest.mark.parametrize("build", ALL_BUILDERS)
    def test_edge_probabilities(self, build):
        assert build().is_trace_preserving()

    @pytest.mark.parametrize(
        "builder",
        [depolarizing, bit_flip, phase_flip, bit_phase_flip, amplitude_damping, phase_damping],
    )
    def test_zero_and_one_probability_trace_preserving(self, builder):
        assert builder(0.0).is_trace_preserving()
        assert builder(1.0).is_trace_preserving()


class TestValidation:
    @pytest.mark.parametrize(
        "builder",
        [depolarizing, bit_flip, phase_flip, bit_phase_flip, amplitude_damping, phase_damping],
    )
    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_out_of_range_probability_rejected(self, builder, p):
        with pytest.raises(NoiseModelError):
            builder(p)

    def test_depolarizing_bad_arity(self):
        with pytest.raises(NoiseModelError):
            depolarizing(0.1, num_qubits=0)


class TestChannelPhysics:
    def _evolve(self, channel, rho_in):
        """Apply ``channel`` to a 1-qubit density matrix directly."""
        return sum(k @ rho_in @ k.conj().T for k in channel.kraus)

    def test_depolarizing_mixes_towards_identity(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        out = self._evolve(depolarizing(1.0), rho)
        assert np.allclose(out, np.eye(2) / 2)

    def test_depolarizing_zero_is_identity_channel(self):
        channel = depolarizing(0.0)
        assert len(channel.kraus) == 1
        rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
        assert np.allclose(self._evolve(channel, rho), rho)

    def test_two_qubit_depolarizing_kraus_count(self):
        assert len(depolarizing(0.5, num_qubits=2).kraus) == 16

    def test_bit_flip_flips_population(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        out = self._evolve(bit_flip(1.0), rho)
        assert np.allclose(out, [[0.0, 0.0], [0.0, 1.0]])

    def test_phase_flip_kills_coherence(self):
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = self._evolve(phase_flip(0.5), rho)
        assert np.allclose(np.diag(out), [0.5, 0.5])
        assert abs(out[0, 1]) < 1e-12

    def test_amplitude_damping_decays_to_ground(self):
        rho = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
        out = self._evolve(amplitude_damping(1.0), rho)
        assert np.allclose(out, [[1.0, 0.0], [0.0, 0.0]])

    def test_amplitude_damping_fixes_ground_state(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        assert np.allclose(self._evolve(amplitude_damping(0.3), rho), rho)

    def test_phase_damping_preserves_populations(self):
        rho = np.array([[0.6, 0.3], [0.3, 0.4]], dtype=complex)
        out = self._evolve(phase_damping(0.5), rho)
        assert np.allclose(np.diag(out), np.diag(rho))
        assert abs(out[0, 1]) < abs(rho[0, 1])

    def test_params_recorded(self):
        assert depolarizing(0.25).params == (0.25,)
        assert amplitude_damping(0.5).params == (0.5,)


class TestChannelsOnBackend:
    def test_full_depolarizing_yields_maximally_mixed(self):
        circuit = Circuit(1).h(0).channel(depolarizing(1.0), (0,))
        state = get_backend("density_matrix").run(circuit)
        assert np.allclose(state.data, np.eye(2) / 2)
        assert state.purity() == pytest.approx(0.5)

    def test_damping_ghz_biases_towards_zero(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        circuit.channel(amplitude_damping(0.4), (0,))
        circuit.channel(amplitude_damping(0.4), (1,))
        state = get_backend("density_matrix").run(circuit)
        assert isinstance(state, DensityMatrix)
        probs = state.probabilities_dict()
        assert probs["00"] > probs["11"]
        assert sum(probs.values()) == pytest.approx(1.0)
