"""Tests for NoiseModel rule matching and ReadoutError."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.noise import NoiseModel, ReadoutError, bit_flip, depolarizing
from repro.sampling import sample_counts
from repro.execution import RunOptions
from repro.sim import get_backend, run
from repro.utils.exceptions import NoiseModelError, SimulationError


class TestNoiseModelRules:
    def test_empty_model(self):
        model = NoiseModel()
        assert not model.has_gate_noise
        assert model.readout_error is None

    def test_add_channel_chains(self):
        model = NoiseModel().add_channel(bit_flip(0.1)).add_channel(depolarizing(0.1))
        assert model.has_gate_noise

    def test_all_gates_one_qubit_channel_fans_out(self):
        model = NoiseModel().add_channel(bit_flip(0.1))
        circuit = Circuit(2).cx(0, 1)
        fired = model.channels_for(circuit[0])
        assert [qubits for _, qubits in fired] == [(0,), (1,)]

    def test_gate_name_filter(self):
        model = NoiseModel().add_channel(bit_flip(0.1), gates=["cx"])
        circuit = Circuit(2).h(0).cx(0, 1)
        assert model.channels_for(circuit[0]) == []
        assert len(model.channels_for(circuit[1])) == 2

    def test_qubit_filter(self):
        model = NoiseModel().add_channel(bit_flip(0.1), qubits=[1])
        circuit = Circuit(2).cx(0, 1)
        fired = model.channels_for(circuit[0])
        assert [qubits for _, qubits in fired] == [(1,)]

    def test_two_qubit_channel_only_fires_on_two_qubit_gates(self):
        model = NoiseModel().add_channel(depolarizing(0.1, num_qubits=2))
        circuit = Circuit(2).h(0).cx(0, 1)
        assert model.channels_for(circuit[0]) == []
        fired = model.channels_for(circuit[1])
        assert [qubits for _, qubits in fired] == [(0, 1)]

    def test_channel_instructions_not_renoised(self):
        model = NoiseModel().add_channel(bit_flip(0.1))
        circuit = Circuit(1).channel(bit_flip(0.2), (0,))
        assert model.channels_for(circuit[0]) == []

    def test_rules_fire_in_insertion_order(self):
        a, b = bit_flip(0.1), bit_flip(0.2)
        model = NoiseModel().add_channel(a).add_channel(b)
        circuit = Circuit(1).h(0)
        fired = [channel for channel, _ in model.channels_for(circuit[0])]
        assert fired == [a, b]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(NoiseModelError):
            NoiseModel().add_channel("not a channel")
        with pytest.raises(NoiseModelError):
            NoiseModel().add_channel(bit_flip(0.1), gates=[])
        with pytest.raises(NoiseModelError):
            NoiseModel().add_channel(bit_flip(0.1), qubits=[-1])
        with pytest.raises(NoiseModelError):
            NoiseModel().set_readout_error("nope")

    def test_repr(self):
        model = NoiseModel("depol").add_channel(bit_flip(0.1))
        model.set_readout_error(ReadoutError(0.01, 0.02))
        text = repr(model)
        assert "1 rule(s)" in text and "readout" in text and "depol" in text


class TestNoiseModelOnBackend:
    def test_model_noise_mixes_state(self):
        model = NoiseModel().add_channel(depolarizing(0.2))
        circuit = Circuit(2).h(0).cx(0, 1)
        state = get_backend("density_matrix").run(
            circuit, options=RunOptions(noise_model=model)
        )
        assert state.purity() < 0.999
        assert state.trace() == pytest.approx(1.0)

    def test_statevector_backend_rejects_gate_noise(self):
        model = NoiseModel().add_channel(bit_flip(0.1))
        with pytest.raises(SimulationError, match="density_matrix"):
            run(Circuit(1).h(0), options=RunOptions(noise_model=model))

    def test_statevector_backend_accepts_readout_only_model(self):
        model = NoiseModel().set_readout_error(ReadoutError(0.1, 0.1))
        state = run(Circuit(1).h(0), options=RunOptions(noise_model=model))
        assert state.num_qubits == 1

    def test_gate_filtered_noise_matches_explicit_channels(self):
        channel = depolarizing(0.1)
        model = NoiseModel().add_channel(channel, gates=["h"])
        circuit = Circuit(1).h(0)
        via_model = get_backend("density_matrix").run(
            circuit, options=RunOptions(noise_model=model)
        )
        explicit = Circuit(1).h(0).channel(channel, (0,))
        via_circuit = get_backend("density_matrix").run(explicit)
        assert np.allclose(via_model.data, via_circuit.data)


class TestReadoutError:
    def test_confusion_matrix_column_stochastic(self):
        matrix = ReadoutError(0.1, 0.3).confusion_matrix
        assert np.allclose(matrix.sum(axis=0), [1.0, 1.0])
        assert matrix[1, 0] == pytest.approx(0.1)  # observed 1 | true 0
        assert matrix[0, 1] == pytest.approx(0.3)  # observed 0 | true 1

    def test_probabilities_out_of_range_rejected(self):
        with pytest.raises(NoiseModelError):
            ReadoutError(-0.1, 0.0)
        with pytest.raises(NoiseModelError):
            ReadoutError(0.0, 1.5)

    def test_apply_preserves_total_probability(self):
        error = ReadoutError(0.07, 0.13)
        probs = np.array([0.5, 0.0, 0.25, 0.25])
        corrupted = error.apply(probs, 2)
        assert corrupted.sum() == pytest.approx(1.0)
        assert (corrupted >= 0).all()

    def test_apply_on_deterministic_outcome(self):
        # True outcome |00>: each qubit independently misreads as 1 with
        # probability 0.1.
        error = ReadoutError(0.1, 0.0)
        probs = np.zeros(4)
        probs[0] = 1.0
        corrupted = error.apply(probs, 2)
        assert corrupted[0] == pytest.approx(0.81)
        assert corrupted[3] == pytest.approx(0.01)

    def test_apply_size_mismatch(self):
        with pytest.raises(NoiseModelError):
            ReadoutError(0.1, 0.1).apply(np.ones(3) / 3, 2)

    def test_equality_and_repr(self):
        assert ReadoutError(0.1, 0.2) == ReadoutError(0.1, 0.2)
        assert ReadoutError(0.1, 0.2) != ReadoutError(0.2, 0.1)
        assert "0.1" in repr(ReadoutError(0.1, 0.2))

    def test_sampling_applies_readout_error(self):
        # A |0> state read out with heavy 0 -> 1 misassignment must show
        # ones in the record.
        model = NoiseModel().set_readout_error(ReadoutError(0.5, 0.0))
        circuit = Circuit(1).x(0).x(0)  # identity, stays |0>
        counts = sample_counts(circuit, 2000, seed=11, noise_model=model)
        assert counts["1"] > 800
