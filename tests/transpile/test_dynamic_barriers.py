"""Transpiler passes treat dynamic ops as barriers and keep the clbit register."""

from repro import Circuit, Instruction, transpile
from repro.gates import get_gate
from repro.transpile import CancelInversePairs, DropIdentities, FuseAdjacentGates


def _names(circuit):
    return [instruction.operation.name for instruction in circuit]


class TestDynamicBarriers:
    def test_measure_blocks_inverse_cancellation(self):
        # h . measure . h must NOT cancel: the collapse between them makes
        # the pair observably different from identity.
        circuit = Circuit(1).h(0).measure(0, 0).h(0)
        out = CancelInversePairs().run(circuit)
        assert _names(out) == ["h", "measure", "h"]

    def test_reset_blocks_inverse_cancellation(self):
        circuit = Circuit(1).x(0).reset(0).x(0)
        out = CancelInversePairs().run(circuit)
        assert _names(out) == ["x", "reset", "x"]

    def test_conditional_blocks_fusion(self):
        circuit = (
            Circuit(1)
            .h(0)
            .if_bit(0, 1, Instruction(get_gate("x"), (0,)))
            .h(0)
        )
        out = FuseAdjacentGates().run(circuit)
        # The classical branch resolves per trajectory, so the flanking
        # unitaries must not merge across it.
        assert _names(out) == ["h", "if[x]", "h"]

    def test_dynamic_ops_survive_identity_dropping(self):
        circuit = Circuit(1).append(get_gate("id"), (0,)).measure(0, 0).reset(0)
        out = DropIdentities().run(circuit)
        assert _names(out) == ["measure", "reset"]

    def test_default_pipeline_preserves_clbit_register(self):
        circuit = Circuit(2, num_clbits=3).h(0).h(0).measure(1, 2)
        out = transpile(circuit)
        assert out.num_clbits == 3
        assert out.has_dynamic_ops()

    def test_cancellation_still_works_between_barriers(self):
        circuit = Circuit(1).measure(0, 0).h(0).h(0).measure(0, 1)
        out = CancelInversePairs().run(circuit)
        assert _names(out) == ["measure", "measure"]
