"""Tests for DropIdentities and CancelInversePairs."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.gates import unitary_gate
from repro.sim import run
from repro.transpile import CancelInversePairs, DropIdentities
from repro.utils.exceptions import TranspilerError


class TestDropIdentities:
    def test_drops_id_gate_and_zero_rotations(self):
        circuit = Circuit(2)
        circuit._append_std("id", (0,))
        circuit.rz(0.0, 0).rx(0.0, 1).ry(0.0, 1).h(0)
        result = DropIdentities().run(circuit)
        assert [i.gate.name for i in result] == ["h"]

    def test_keeps_non_identities(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.1, 1)
        result = DropIdentities().run(circuit)
        assert len(result) == 3

    def test_global_phase_identity_kept_by_default(self):
        circuit = Circuit(1).rz(2 * np.pi, 0)  # = -I, a pure global phase
        assert len(DropIdentities().run(circuit)) == 1

    def test_global_phase_identity_dropped_when_enabled(self):
        circuit = Circuit(1).rz(2 * np.pi, 0)
        result = DropIdentities(up_to_global_phase=True).run(circuit)
        assert len(result) == 0

    def test_explicit_unitary_identity_dropped(self):
        circuit = Circuit(1).unitary(np.eye(2), [0])
        assert len(DropIdentities().run(circuit)) == 0

    def test_negative_atol_rejected(self):
        with pytest.raises(TranspilerError):
            DropIdentities(atol=-1.0)

    def test_tight_atol_is_absolute(self):
        # Regression: np.allclose's default rtol must not override a tight
        # atol — rz(2e-6) deviates from I by ~1e-6 and must survive.
        circuit = Circuit(1).rz(2e-6, 0)
        assert len(DropIdentities(atol=1e-12).run(circuit)) == 1


class TestCancelInversePairs:
    def test_self_inverse_pairs_cancel(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1)
        assert len(CancelInversePairs().run(circuit)) == 0

    def test_registry_inverse_pairs_cancel(self):
        circuit = Circuit(1).s(0)
        circuit._append_std("sdg", (0,))
        circuit.rx(0.4, 0).rx(-0.4, 0)
        assert len(CancelInversePairs().run(circuit)) == 0

    def test_cascading_cancellation(self):
        circuit = Circuit(1).h(0).x(0).x(0).h(0)
        assert len(CancelInversePairs().run(circuit)) == 0

    def test_non_inverse_pairs_survive(self):
        circuit = Circuit(1).h(0).t(0)
        assert len(CancelInversePairs().run(circuit)) == 2

    def test_interposing_gate_on_same_qubit_blocks(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        assert len(CancelInversePairs().run(circuit)) == 3

    def test_disjoint_interposer_commutes_past(self):
        # The x(1) between the two h(0) acts on a disjoint qubit, so the
        # pair still cancels.
        circuit = Circuit(2).h(0).x(1).h(0)
        result = CancelInversePairs().run(circuit)
        assert [i.gate.name for i in result] == ["x"]

    def test_overlapping_two_qubit_gate_blocks(self):
        circuit = Circuit(2).cx(0, 1).h(0).cx(0, 1)
        assert len(CancelInversePairs().run(circuit)) == 3

    def test_same_gate_different_qubit_order_not_cancelled(self):
        # cx(0,1) then cx(1,0) do not compose to identity.
        circuit = Circuit(2).cx(0, 1).cx(1, 0)
        result = CancelInversePairs().run(circuit)
        assert len(result) == 2
        state = run(circuit)
        assert run(result).fidelity(state) == pytest.approx(1.0)

    def test_explicit_unitary_inverse_cancels_numerically(self):
        matrix = np.array([[0, 1j], [1j, 0]])
        circuit = Circuit(1)
        circuit.append(unitary_gate(matrix), (0,))
        circuit.append(unitary_gate(matrix.conj().T), (0,))
        assert len(CancelInversePairs().run(circuit)) == 0

    def test_negative_atol_rejected(self):
        with pytest.raises(TranspilerError):
            CancelInversePairs(atol=-0.1)

    def test_tight_atol_is_absolute(self):
        # Regression: rz(0.5)·rz(-0.5 + 2e-6) is not an inverse pair at
        # atol=1e-12 and must not be cancelled by np.allclose's default rtol.
        circuit = Circuit(1).rz(0.5, 0).rz(-0.5 + 2e-6, 0)
        assert len(CancelInversePairs(atol=1e-12).run(circuit)) == 2

    def test_preserves_semantics_on_partial_cancel(self):
        circuit = Circuit(2).h(0).cx(0, 1).cx(0, 1).t(1)
        result = CancelInversePairs().run(circuit)
        assert [i.gate.name for i in result] == ["h", "t"]
        assert run(result).fidelity(run(circuit)) == pytest.approx(1.0)
