"""Tests for the Pass / PassManager / transpile core."""

import pytest

from repro.circuit import Circuit
from repro.transpile import (
    DropIdentities,
    FuseAdjacentGates,
    Pass,
    PassManager,
    default_passes,
    transpile,
)
from repro.utils.exceptions import TranspilerError


class _Renamer(Pass):
    """Test pass: returns a copy with a new name (no instruction changes)."""

    def run(self, circuit):
        return circuit.copy(name="renamed")


class _WidthChanger(Pass):
    """Broken pass: silently changes the register width."""

    def run(self, circuit):
        return Circuit(circuit.num_qubits + 1)


class _NotACircuit(Pass):
    """Broken pass: returns the wrong type."""

    def run(self, circuit):
        return [i for i in circuit]


class TestPass:
    def test_name_defaults_to_class_name(self):
        assert _Renamer().name == "_Renamer"
        assert DropIdentities().name == "DropIdentities"

    def test_call_invokes_run(self):
        circuit = Circuit(2).h(0)
        assert _Renamer()(circuit).name == "renamed"

    def test_pass_is_abstract(self):
        with pytest.raises(TypeError):
            Pass()


class TestPassManager:
    def test_runs_passes_in_order(self):
        circuit = Circuit(2).h(0).h(0).rz(0.0, 1)
        manager = PassManager(default_passes())
        result = manager.run(circuit)
        assert len(result) == 0

    def test_append_chains(self):
        manager = PassManager().append(DropIdentities()).append(FuseAdjacentGates())
        assert len(manager) == 2
        assert [p.name for p in manager.passes] == [
            "DropIdentities",
            "FuseAdjacentGates",
        ]

    def test_rejects_non_pass(self):
        with pytest.raises(TranspilerError):
            PassManager([DropIdentities(), "not a pass"])

    def test_rejects_non_circuit_input(self):
        with pytest.raises(TranspilerError):
            PassManager().run("not a circuit")

    def test_width_change_detected(self):
        with pytest.raises(TranspilerError, match="register width"):
            PassManager([_WidthChanger()]).run(Circuit(2).h(0))

    def test_non_circuit_result_detected(self):
        with pytest.raises(TranspilerError, match="expected a Circuit"):
            PassManager([_NotACircuit()]).run(Circuit(2).h(0))

    def test_last_stats_records_each_pass(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1)
        manager = PassManager(default_passes())
        manager.run(circuit)
        stats = manager.last_stats
        assert [s.pass_name for s in stats] == [
            "DropIdentities",
            "CancelInversePairs",
            "FuseAdjacentGates",
        ]
        assert stats[0].gates_before == 3
        assert stats[1].gates_after == 1  # h·h cancelled
        assert stats[-1].as_dict()["pass"] == "FuseAdjacentGates"

    def test_empty_manager_is_identity(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        assert PassManager().run(circuit) == circuit


class TestTranspile:
    def test_default_pipeline(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        result = transpile(circuit)
        assert len(result) < len(circuit)

    def test_input_never_mutated(self):
        circuit = Circuit(2).h(0).h(0)
        before = circuit.instructions
        transpile(circuit)
        assert circuit.instructions == before

    def test_explicit_pass_sequence(self):
        circuit = Circuit(2).rz(0.0, 0).h(1)
        result = transpile(circuit, passes=[DropIdentities()])
        assert len(result) == 1

    def test_prebuilt_pass_manager(self):
        manager = PassManager([DropIdentities()])
        circuit = Circuit(2).rz(0.0, 0).h(1)
        assert len(transpile(circuit, passes=manager)) == 1
        assert manager.last_stats[0].gates_after == 1

    def test_max_fused_width_forwarded(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        wide = transpile(circuit, max_fused_width=3)
        assert len(wide) == 1  # everything fuses into one 3-qubit unitary

    def test_pass_manager_out_exposes_stats(self):
        sink = []
        transpile(Circuit(2).h(0).h(0), pass_manager_out=sink)
        assert len(sink) == 1
        assert sink[0].last_stats[1].gates_after == 0
