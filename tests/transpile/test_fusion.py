"""Tests for FuseAdjacentGates and the matrix-embedding helper."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.gates import get_gate
from repro.sim import run
from repro.transpile import FuseAdjacentGates, embed_matrix
from repro.utils.exceptions import TranspilerError


def _fidelity(a, b):
    return run(a).fidelity(run(b))


class TestEmbedMatrix:
    def test_identity_embedding_is_noop(self):
        m = get_gate("h").matrix
        assert np.array_equal(embed_matrix(m, [0], 1), m)

    def test_single_qubit_into_two(self):
        x = get_gate("x").matrix
        # X on the most significant qubit of a 2-qubit space.
        expected = np.kron(x, np.eye(2))
        assert np.allclose(embed_matrix(x, [0], 2), expected)
        # X on the least significant qubit.
        assert np.allclose(embed_matrix(x, [1], 2), np.kron(np.eye(2), x))

    def test_qubit_order_permutation(self):
        cx = get_gate("cx").matrix
        # cx with control = LSB slot, target = MSB slot: |a b> -> |a^b b>.
        swapped = embed_matrix(cx, [1, 0], 2)
        basis = np.eye(4)
        # |01> (index 1: qubit0=0, qubit1=1) -> |11> (index 3)
        assert np.allclose(swapped @ basis[:, 1], basis[:, 3])
        # |10> -> |10> (control qubit1 = 0)
        assert np.allclose(swapped @ basis[:, 2], basis[:, 2])

    def test_invalid_positions_rejected(self):
        m = get_gate("h").matrix
        with pytest.raises(TranspilerError):
            embed_matrix(m, [0, 0], 2)
        with pytest.raises(TranspilerError):
            embed_matrix(m, [2], 2)
        with pytest.raises(TranspilerError):
            embed_matrix(get_gate("cx").matrix, [0], 2)
        with pytest.raises(TranspilerError):
            embed_matrix(get_gate("cx").matrix, [0, 1], 1)


class TestFuseAdjacentGates:
    def test_single_qubit_run_fuses_to_one_unitary(self):
        circuit = Circuit(1).h(0).t(0).s(0).rz(0.3, 0)
        fused = FuseAdjacentGates().run(circuit)
        assert len(fused) == 1
        assert fused[0].gate.name == "unitary"
        assert _fidelity(circuit, fused) == pytest.approx(1.0)

    def test_h_cx_pair_fuses(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert len(fused) == 1
        assert fused[0].qubits == (0, 1)
        assert _fidelity(circuit, fused) == pytest.approx(1.0)

    def test_disjoint_gates_do_not_fuse(self):
        circuit = Circuit(2).h(0).h(1)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert [i.gate.name for i in fused] == ["h", "h"]

    def test_width_cap_respected(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert [i.gate.name for i in fused] == ["cx", "cx"]
        wide = FuseAdjacentGates(max_width=3).run(circuit)
        assert len(wide) == 1
        assert wide[0].qubits == (0, 1, 2)
        assert _fidelity(circuit, wide) == pytest.approx(1.0)

    def test_gate_wider_than_cap_passes_through(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(1)
        fused = FuseAdjacentGates(max_width=1).run(circuit)
        assert [i.gate.name for i in fused] == ["h", "cx", "h"]

    def test_singleton_groups_keep_original_gate(self):
        circuit = Circuit(3).h(0).cx(1, 2)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert [i.gate.name for i in fused] == ["h", "cx"]
        assert fused.instructions == circuit.instructions

    def test_fused_qubit_order_is_first_touch(self):
        # cx(2, 0) then x(2): group qubits should be (2, 0).
        circuit = Circuit(3).cx(2, 0).x(2)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert len(fused) == 1
        assert fused[0].qubits == (2, 0)
        assert _fidelity(circuit, fused) == pytest.approx(1.0)

    def test_interleaved_two_qubit_gates(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.7, 1).cx(0, 1).h(0)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert len(fused) == 1
        assert _fidelity(circuit, fused) == pytest.approx(1.0)

    def test_empty_circuit(self):
        assert len(FuseAdjacentGates().run(Circuit(2))) == 0

    def test_invalid_max_width(self):
        with pytest.raises(TranspilerError):
            FuseAdjacentGates(max_width=0)

    def test_fused_matrix_is_unitary(self):
        circuit = Circuit(2).h(0).cx(0, 1).s(1).cx(0, 1)
        fused = FuseAdjacentGates(max_width=2).run(circuit)
        assert all(i.gate.is_unitary() for i in fused)

    def test_repr_mentions_width(self):
        assert "max_width=3" in repr(FuseAdjacentGates(max_width=3))
