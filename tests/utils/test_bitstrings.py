"""Bitstring <-> index conventions, including the reshape-layout contract."""

import numpy as np
import pytest

from repro.utils.bitstrings import (
    all_bitstrings,
    bitstring_to_index,
    flip_bit,
    hamming_weight,
    index_to_bitstring,
    iter_bitstrings,
)


@pytest.mark.parametrize("num_qubits", [1, 2, 3, 5])
def test_round_trip_index_bitstring(num_qubits):
    for index in range(1 << num_qubits):
        bitstring = index_to_bitstring(index, num_qubits)
        assert len(bitstring) == num_qubits
        assert bitstring_to_index(bitstring) == index


def test_qubit_zero_is_most_significant():
    # "100" = qubit 0 set -> index 4 for 3 qubits.
    assert bitstring_to_index("100") == 4
    assert index_to_bitstring(4, 3) == "100"
    assert bitstring_to_index("001") == 1


def test_index_matches_reshape_layout():
    """Axis q of the (2,)*n reshape indexes qubit q — the documented contract."""
    num_qubits = 4
    flat = np.arange(1 << num_qubits)
    tensor = flat.reshape((2,) * num_qubits)
    for index in range(1 << num_qubits):
        bits = tuple(int(c) for c in index_to_bitstring(index, num_qubits))
        assert tensor[bits] == index


def test_index_to_bitstring_range_checks():
    with pytest.raises(ValueError):
        index_to_bitstring(-1, 2)
    with pytest.raises(ValueError):
        index_to_bitstring(4, 2)


@pytest.mark.parametrize("bad", ["", "012", "ab", "10x"])
def test_bitstring_to_index_rejects_invalid(bad):
    with pytest.raises(ValueError):
        bitstring_to_index(bad)


def test_hamming_weight():
    assert hamming_weight("0000") == 0
    assert hamming_weight("1011") == 3


def test_all_bitstrings_in_index_order():
    assert all_bitstrings(2) == ["00", "01", "10", "11"]


def test_iter_bitstrings_matches_all_bitstrings():
    assert list(iter_bitstrings(3)) == all_bitstrings(3)


def test_flip_bit():
    assert flip_bit("000", 0) == "100"
    assert flip_bit("111", 2) == "110"
    with pytest.raises(ValueError):
        flip_bit("01", 2)
    with pytest.raises(ValueError):
        flip_bit("01", -1)


def test_flip_bit_changes_index_by_power_of_two():
    bitstring = "0110"
    for position in range(4):
        delta = abs(
            bitstring_to_index(flip_bit(bitstring, position))
            - bitstring_to_index(bitstring)
        )
        assert delta == 1 << (len(bitstring) - 1 - position)


def test_utils_package_exports_bitstring_helpers():
    import repro.utils as utils

    for name in ("iter_bitstrings", "flip_bit"):
        assert name in utils.__all__
        assert callable(getattr(utils, name))
