"""The exception hierarchy: every subsystem error is a ReproError."""

import pytest

from repro.utils.exceptions import (
    CircuitError,
    ExecutionError,
    NoiseModelError,
    ReproError,
    SimulationError,
    TranspilerError,
)

SUBSYSTEM_ERRORS = [
    CircuitError,
    TranspilerError,
    SimulationError,
    NoiseModelError,
    ExecutionError,
]


@pytest.mark.parametrize("exc", SUBSYSTEM_ERRORS)
def test_subsystem_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


@pytest.mark.parametrize("exc", SUBSYSTEM_ERRORS)
def test_catching_repro_error_catches_subsystem_error(exc):
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_does_not_mask_programming_errors():
    assert not issubclass(ReproError, (TypeError, ValueError))


def test_all_exceptions_importable_from_package_root():
    import repro

    for exc in SUBSYSTEM_ERRORS + [ReproError]:
        assert getattr(repro, exc.__name__) is exc
