"""RNG plumbing: normalisation, determinism, spawn independence."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs, spawn_seeds


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123).random(8)
        b = ensure_rng(123).random(8)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = ensure_rng(np.random.SeedSequence(7)).random(4)
        b = ensure_rng(seq).random(4)
        assert np.array_equal(a, b)

    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnSeeds:
    def test_deterministic_for_int_seed(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_children_are_distinct(self):
        seeds = spawn_seeds(42, 50)
        assert len(set(seeds)) == 50

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_zero_count_returns_empty(self):
        assert spawn_seeds(42, 0) == []

    def test_zero_count_does_not_consume_generator_stream(self):
        """spawn_seeds(gen, 0) must be a true no-op on the caller's stream."""
        rng = np.random.default_rng(7)
        reference = np.random.default_rng(7).random(4)
        assert spawn_seeds(rng, 0) == []
        assert np.array_equal(rng.random(4), reference)

    def test_spawned_streams_are_independent(self):
        rngs = spawn_rngs(1, 2)
        a = rngs[0].random(100)
        b = rngs[1].random(100)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_matches_spawn_seeds(self):
        seeds = spawn_seeds(9, 3)
        expected = [np.random.default_rng(s).random() for s in seeds]
        got = [rng.random() for rng in spawn_rngs(9, 3)]
        assert got == expected


class TestDeriveSeed:
    def test_none_propagates(self):
        assert derive_seed(None, 0) is None
        assert derive_seed(None) is None

    def test_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)

    def test_components_change_result(self):
        base = derive_seed(5, 0)
        assert derive_seed(5, 1) != base
        assert derive_seed(6, 0) != base

    def test_exported_from_utils_package(self):
        import repro.utils as utils

        assert "derive_seed" in utils.__all__
        assert utils.derive_seed is derive_seed
