"""Tests for the async front door: queue, backpressure, job lifecycle."""

import threading

import pytest

from repro import Circuit, RunOptions, execute, execute_async
from repro.service import ExecutionService, configure_default_service
from repro.service.futures import JobState
from repro.utils.exceptions import (
    ExecutionError,
    ExecutionQueueFullError,
    ExecutionTimeoutError,
)


def _bell() -> Circuit:
    return Circuit(2).h(0).cx(0, 1)


class TestJobState:
    def test_status_machine_only_advances(self):
        state = JobState()
        assert state.status == "created"
        state.mark_running()
        state.mark_queued()  # late queued must not regress running
        assert state.status == "running"
        state.mark_done("x")
        assert state.status == "done"
        assert state.outcome() == "x"

    def test_error_outcome_reraises(self):
        state = JobState()
        state.mark_error(ValueError("boom"))
        assert state.status == "error"
        with pytest.raises(ValueError):
            state.outcome()

    def test_wait_times_out_then_succeeds(self):
        state = JobState()
        assert not state.wait(0.01)
        state.mark_done(1)
        assert state.wait(0.01)


class TestManualService:
    """dispatchers=0: fully deterministic queue behaviour."""

    def test_jobs_wait_until_processed(self):
        service = ExecutionService(max_pending=4, dispatchers=0)
        job = service.submit(_bell(), shots=20, seed=1)
        assert job.status == "queued"
        assert service.pending == 1
        assert service.process_one()
        assert job.status == "done"
        assert job.result().counts == execute(_bell(), shots=20, seed=1).counts

    def test_backpressure_raises_typed_error(self):
        service = ExecutionService(max_pending=2, dispatchers=0)
        service.submit(_bell(), shots=1, seed=1)
        service.submit(_bell(), shots=1, seed=1)
        with pytest.raises(ExecutionQueueFullError):
            service.submit(_bell(), shots=1, seed=1)
        # Draining frees capacity again.
        assert service.process_one()
        job = service.submit(_bell(), shots=1, seed=1)
        assert job.status == "queued"

    def test_result_timeout_on_unprocessed_job(self):
        service = ExecutionService(max_pending=2, dispatchers=0)
        job = service.submit(_bell(), shots=5, seed=2)
        with pytest.raises(ExecutionTimeoutError):
            job.result(timeout=0.02)
        # The job is untouched and can still be collected later.
        assert job.status == "queued"
        service.process_one()
        assert job.result(timeout=1).counts.shots == 5

    def test_failed_job_reraises_from_result(self):
        service = ExecutionService(max_pending=2, dispatchers=0)
        # Unbound parameter at *run* time: submit-time validation passes
        # (sweep jobs defer the work), bad backend fails in the runner.
        job = service.submit(_bell(), RunOptions(backend="no-such-backend"))
        service.process_one()
        assert job.status == "error"
        with pytest.raises(Exception):
            job.result()

    def test_process_one_empty_queue_returns_false(self):
        service = ExecutionService(dispatchers=0)
        assert not service.process_one()

    def test_invalid_construction_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionService(max_pending=0)
        with pytest.raises(ExecutionError):
            ExecutionService(dispatchers=-1)

    def test_submit_validates_eagerly(self):
        service = ExecutionService(dispatchers=0)
        with pytest.raises(ExecutionError):
            service.submit([])  # empty batch fails in the caller, not async


class TestDispatchedService:
    def test_background_dispatch_completes(self):
        with ExecutionService(max_pending=8, dispatchers=2) as service:
            jobs = [
                service.submit(_bell(), shots=30, seed=seed)
                for seed in range(4)
            ]
            results = [job.result(timeout=30) for job in jobs]
        for seed, result in enumerate(results):
            expected = execute(_bell(), shots=30, seed=seed)
            assert result.counts == expected.counts

    def test_async_matches_sync_with_parallel_options(self):
        with ExecutionService(dispatchers=1) as service:
            job = service.submit(
                [_bell(), Circuit(3).h(0).cx(0, 1).cx(1, 2)],
                shots=100,
                seed=6,
                max_workers=2,
            )
            batch = job.result(timeout=60)
        expected = execute(
            [_bell(), Circuit(3).h(0).cx(0, 1).cx(1, 2)], shots=100, seed=6
        )
        for a, b in zip(batch, expected):
            assert a.counts == b.counts

    def test_shutdown_rejects_new_submissions(self):
        service = ExecutionService(dispatchers=1)
        service.shutdown()
        with pytest.raises(ExecutionError):
            service.submit(_bell(), shots=1)

    def test_many_waiters_on_one_job(self):
        with ExecutionService(dispatchers=1) as service:
            job = service.submit(_bell(), shots=40, seed=8)
            collected = []

            def wait():
                collected.append(job.result(timeout=30).counts)

            threads = [threading.Thread(target=wait) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(collected) == 3
        assert collected[0] == collected[1] == collected[2]


class TestDefaultService:
    def test_execute_async_uses_default_service(self):
        job = execute_async(_bell(), shots=25, seed=3)
        result = job.result(timeout=30)
        assert result.counts == execute(_bell(), shots=25, seed=3).counts

    def test_explicit_service_override(self):
        service = ExecutionService(dispatchers=0)
        job = execute_async(_bell(), shots=5, seed=1, service=service)
        assert job.status == "queued"
        service.process_one()
        assert job.result().counts.shots == 5

    def test_configure_default_service_replaces(self):
        replacement = configure_default_service(max_pending=3, dispatchers=1)
        try:
            job = execute_async(_bell(), shots=10, seed=2)
            assert job.result(timeout=30).counts.shots == 10
            assert replacement.max_pending == 3
        finally:
            configure_default_service()  # restore defaults for other tests

    def test_sync_job_ignores_timeout_and_runs_inline(self):
        from repro.execution import submit

        job = submit(_bell(), shots=15, seed=4)
        assert job.status == "created"
        result = job.result(timeout=0.0)  # inline: timeout is ignored
        assert job.status == "done"
        assert result.counts.shots == 15
