"""Pickle round-trip guarantees for everything that crosses a worker pipe.

The parallel service works by shipping compiled plans, options, and
result payloads between processes, so every type on that path must
survive ``pickle.dumps``/``loads`` *semantically* intact: equal values,
immutability flags restored, and — for plans — bitwise-identical
execution on the other side.
"""

import pickle

import numpy as np
import pytest

from repro import (
    Circuit,
    Counts,
    DensityMatrix,
    NoiseModel,
    Parameter,
    Pauli,
    ReadoutError,
    RunOptions,
    Statevector,
    compile_plan,
    depolarizing,
    execute,
    get_backend,
)
from repro.bench.workloads import random_dense


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestCircuitRoundTrip:
    def test_bell_circuit_equal_and_frozen(self):
        circuit = Circuit(2, name="bell").h(0).cx(0, 1)
        copy = roundtrip(circuit)
        assert copy.instructions == circuit.instructions
        assert copy.num_qubits == 2
        for instruction in copy.instructions:
            matrix = instruction.gate.matrix
            assert not matrix.flags.writeable

    @pytest.mark.parametrize("trial", range(5))
    def test_random_circuits_simulate_identically(self, trial):
        circuit = random_dense(3, num_gates=15, seed=500 + trial)
        copy = roundtrip(circuit)
        original = execute(circuit).state.data
        restored = execute(copy).state.data
        assert np.array_equal(original, restored)

    def test_parametric_circuit_keeps_symbols(self):
        theta = Parameter("theta")
        circuit = Circuit(2).h(0).rz(theta, 1)
        copy = roundtrip(circuit)
        assert {p.name for p in copy.parameters()} == {"theta"}
        a = execute(circuit.bind({"theta": 0.7})).state.data
        b = execute(copy.bind({"theta": 0.7})).state.data
        assert np.array_equal(a, b)

    def test_stats_round_trip(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        stats = roundtrip(circuit.stats())
        assert stats.key() == circuit.stats().key()
        assert dict(stats.gate_counts) == dict(circuit.stats().gate_counts)


class TestPlanRoundTrip:
    def test_concrete_plan_executes_bitwise(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        backend = get_backend("statevector")
        plan = compile_plan(circuit, backend)
        copy = roundtrip(plan)
        assert np.array_equal(
            backend.execute_plan(plan).data, backend.execute_plan(copy).data
        )

    @pytest.mark.parametrize("value", (0.0, 0.3, 2.9))
    def test_parametric_plan_binds_bitwise_after_round_trip(self, value):
        theta = Parameter("theta")
        circuit = Circuit(2).h(0).rz(theta, 1).cx(0, 1)
        backend = get_backend("statevector")
        plan = compile_plan(circuit, backend)
        copy = roundtrip(plan)
        original = backend.execute_plan(plan.bind({"theta": value}))
        restored = backend.execute_plan(copy.bind({"theta": value}))
        assert np.array_equal(original.data, restored.data)

    def test_bound_plan_round_trips_with_slots_filled(self):
        # A plan that was already bound (slots resolved) must also ship.
        theta = Parameter("theta")
        circuit = Circuit(2).h(0).rz(theta, 1)
        backend = get_backend("statevector")
        bound = compile_plan(circuit, backend).bind({"theta": 1.1})
        copy = roundtrip(bound)
        assert np.array_equal(
            backend.execute_plan(bound).data, backend.execute_plan(copy).data
        )

    def test_noisy_density_plan_round_trips(self):
        model = NoiseModel().add_channel(depolarizing(0.05), gates=["h"])
        circuit = Circuit(2).h(0).cx(0, 1)
        backend = get_backend("density_matrix")
        plan = compile_plan(circuit, backend, RunOptions(noise_model=model))
        copy = roundtrip(plan)
        a = backend.execute_plan(plan)
        b = backend.execute_plan(copy)
        assert np.array_equal(a.data, b.data)


class TestOptionsAndModelRoundTrip:
    def test_run_options_round_trip(self):
        options = RunOptions(
            shots=128,
            seed=7,
            memory=True,
            observables=(Pauli("ZZ"),),
            max_workers=3,
            shard_shots=4,
        )
        copy = roundtrip(options)
        assert copy == options

    def test_noise_model_round_trip_preserves_rules_and_freeze(self):
        model = (
            NoiseModel("demo")
            .add_channel(depolarizing(0.02), gates=["h", "cx"])
            .set_readout_error(ReadoutError(0.01, 0.03))
        )
        copy = roundtrip(model)
        assert copy.readout_error.p1_given_0 == 0.01
        assert not copy.readout_error.confusion_matrix.flags.writeable
        instruction = Circuit(1).h(0).instructions[0]
        channels = copy.channels_for(instruction)
        assert len(channels) == len(model.channels_for(instruction))


class TestResultTypesRoundTrip:
    def test_counts_round_trip_stays_read_only(self):
        counts = Counts({"00": 5, "11": 3})
        copy = roundtrip(counts)
        assert copy == counts
        assert copy.num_qubits == 2
        assert copy.shots == 8
        with pytest.raises(TypeError):
            copy["01"] = 1

    def test_states_round_trip_frozen(self):
        sv = roundtrip(Statevector.zero_state(2))
        assert not sv.tensor().flags.writeable
        dm = roundtrip(DensityMatrix.zero_state(2))
        assert not dm.tensor().flags.writeable

    def test_result_round_trip(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        result = execute(circuit, shots=64, seed=3, observables=Pauli("ZZ"))
        copy = roundtrip(result)
        assert copy.counts == result.counts
        assert copy.expectation_values == result.expectation_values
        assert np.array_equal(copy.state.data, result.state.data)
        assert copy.metadata["seed"] == result.metadata["seed"]

    def test_sweep_result_with_deferred_circuit_round_trips(self):
        # Sweep results hold a circuit *factory*; pickling must resolve
        # it (closures don't cross process boundaries).
        theta = Parameter("theta")
        circuit = Circuit(2).h(0).rz(theta, 1)
        batch = execute(
            circuit, shots=32, seed=5, parameter_sweep=[{"theta": 0.4}]
        )
        copy = roundtrip(batch[0])
        assert copy.counts == batch[0].counts
        assert copy.parameters == {"theta": 0.4}
        assert copy.circuit.num_qubits == 2
