"""Worker-count invariance: parallel execution is bitwise-identical.

Element and shard seeds derive from positions (element index, shard
index), never from scheduling, so for any fixed options the results of
``max_workers=N`` must equal ``max_workers=1`` — which in turn takes
literally the serial code path.  These tests pin that contract for
sweeps, batches, and sharded shots, on both backends, with and without
noise, plus the compile-once guarantee for parallel sweeps.
"""

import numpy as np
import pytest

from repro import (
    Circuit,
    NoiseModel,
    Parameter,
    Pauli,
    ReadoutError,
    clear_plan_cache,
    depolarizing,
    execute,
    plan_cache_info,
)
from repro.plan import add_lower_hook, remove_lower_hook
from repro.service.pool import resolve_max_workers, run_tasks, shutdown_pool
from repro.utils.exceptions import ParallelExecutionError

WORKERS = 2


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture(autouse=True)
def no_ambient_workers(monkeypatch):
    # These tests compare explicit worker counts against the serial
    # default; an ambient REPRO_MAX_WORKERS (e.g. the CI leg that flips
    # the whole suite parallel) would silently change the "serial" side.
    # Tests that *want* the env var set it themselves, after this runs.
    monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)


@pytest.fixture()
def lowering_counter():
    calls = []
    hook = lambda circuit, plan: calls.append(circuit)  # noqa: E731
    add_lower_hook(hook)
    yield calls
    remove_lower_hook(hook)


def _template(num_qubits: int = 3) -> Circuit:
    theta = Parameter("theta")
    circuit = Circuit(num_qubits).h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.rz(theta, num_qubits - 1)
    return circuit


def _sweep(points: int = 5):
    return [{"theta": 0.3 * index} for index in range(points)]


def _assert_results_equal(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.counts == b.counts
        if a.memory is not None or b.memory is not None:
            assert a.memory == b.memory
        assert a.expectation_values == b.expectation_values
        assert np.array_equal(a.state.tensor(), b.state.tensor())
        assert a.metadata["seed"] == b.metadata["seed"]


class TestSweepParity:
    def test_statevector_sweep_with_shots(self):
        template = _template()
        kwargs = dict(shots=200, seed=11, observables=Pauli("ZZZ"))
        serial = execute(template, parameter_sweep=_sweep(), **kwargs)
        parallel = execute(
            template, parameter_sweep=_sweep(), max_workers=WORKERS, **kwargs
        )
        _assert_results_equal(serial, parallel)
        assert parallel.metadata["workers"] == WORKERS
        assert serial.metadata["workers"] == 1

    def test_density_sweep_with_noise_and_readout(self):
        model = (
            NoiseModel()
            .add_channel(depolarizing(0.03), gates=["h", "cx"])
            .set_readout_error(ReadoutError(0.02, 0.01))
        )
        template = _template()
        kwargs = dict(
            backend="density_matrix", noise_model=model, shots=100, seed=4
        )
        serial = execute(template, parameter_sweep=_sweep(), **kwargs)
        parallel = execute(
            template, parameter_sweep=_sweep(), max_workers=WORKERS, **kwargs
        )
        _assert_results_equal(serial, parallel)

    def test_sweep_with_memory(self):
        template = _template()
        kwargs = dict(shots=50, seed=9, memory=True)
        serial = execute(template, parameter_sweep=_sweep(3), **kwargs)
        parallel = execute(
            template, parameter_sweep=_sweep(3), max_workers=WORKERS, **kwargs
        )
        for a, b in zip(serial, parallel):
            assert a.memory == b.memory

    def test_parallel_sweep_compiles_template_exactly_once(
        self, lowering_counter
    ):
        template = _template()
        execute(
            template,
            parameter_sweep=_sweep(6),
            shots=50,
            seed=1,
            max_workers=WORKERS,
        )
        # One lowering in the parent; workers receive the pickled plan
        # and only bind it (binding never fires lower hooks).
        assert len(lowering_counter) == 1
        assert plan_cache_info()["misses"] == 1

    def test_parallel_results_keep_lazy_circuit_field(self):
        template = _template()
        batch = execute(
            template,
            parameter_sweep=_sweep(3),
            shots=20,
            seed=2,
            max_workers=WORKERS,
        )
        bound = batch[1].circuit
        assert not bound.parameters()
        assert bound.num_qubits == template.num_qubits


class TestBatchParity:
    def _circuits(self):
        circuits = []
        for num_qubits in (2, 3, 4):
            circuit = Circuit(num_qubits).h(0)
            for qubit in range(num_qubits - 1):
                circuit.cx(qubit, qubit + 1)
            circuits.append(circuit)
        return circuits

    def test_statevector_batch(self):
        serial = execute(self._circuits(), shots=150, seed=21)
        parallel = execute(
            self._circuits(), shots=150, seed=21, max_workers=WORKERS
        )
        _assert_results_equal(serial, parallel)
        assert parallel.metadata["workers"] == WORKERS

    def test_density_batch_with_noise(self):
        model = NoiseModel().add_channel(depolarizing(0.02), gates=["h"])
        kwargs = dict(
            backend="density_matrix", noise_model=model, shots=80, seed=13
        )
        serial = execute(self._circuits(), **kwargs)
        parallel = execute(self._circuits(), max_workers=WORKERS, **kwargs)
        _assert_results_equal(serial, parallel)


class TestShardedShots:
    def _ghz(self) -> Circuit:
        return Circuit(3).h(0).cx(0, 1).cx(1, 2)

    def test_shard_count_one_is_bitwise_serial(self):
        plain = execute(self._ghz(), shots=500, seed=42)
        sharded = execute(self._ghz(), shots=500, seed=42, shard_shots=1)
        assert plain.counts == sharded.counts

    def test_merged_counts_independent_of_workers(self):
        serial = execute(self._ghz(), shots=1000, seed=42, shard_shots=4)
        parallel = execute(
            self._ghz(), shots=1000, seed=42, shard_shots=4, max_workers=WORKERS
        )
        assert serial.counts == parallel.counts
        assert serial.counts.shots == 1000

    def test_sharded_memory_preserves_shard_order(self):
        serial = execute(
            self._ghz(), shots=64, seed=7, shard_shots=3, memory=True
        )
        parallel = execute(
            self._ghz(),
            shots=64,
            seed=7,
            shard_shots=3,
            memory=True,
            max_workers=WORKERS,
        )
        assert serial.memory == parallel.memory
        assert serial.counts == parallel.counts
        assert len(serial.memory) == 64

    def test_shard_count_is_reproducible(self):
        a = execute(self._ghz(), shots=300, seed=5, shard_shots=4)
        b = execute(self._ghz(), shots=300, seed=5, shard_shots=4)
        assert a.counts == b.counts

    def test_sharding_in_sweep_elements(self):
        template = _template()
        kwargs = dict(shots=120, seed=3, shard_shots=3)
        serial = execute(template, parameter_sweep=_sweep(4), **kwargs)
        parallel = execute(
            template, parameter_sweep=_sweep(4), max_workers=WORKERS, **kwargs
        )
        _assert_results_equal(serial, parallel)


class TestWorkerResolution:
    def test_explicit_value_wins(self):
        assert resolve_max_workers(3) == 3
        assert resolve_max_workers(1) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "4")
        assert resolve_max_workers(None) == 4
        monkeypatch.delenv("REPRO_MAX_WORKERS")
        assert resolve_max_workers(None) == 1

    def test_env_applies_to_execute(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", str(WORKERS))
        batch = execute(
            [Circuit(2).h(0), Circuit(2).h(0).cx(0, 1)], shots=40, seed=1
        )
        assert batch.metadata["workers"] == WORKERS


def _unpicklable_task():  # pragma: no cover - never actually runs
    return None


class TestPoolFailureModes:
    def test_unpicklable_payload_raises_typed_error(self):
        payload = lambda: None  # noqa: E731 - deliberately unpicklable
        with pytest.raises(ParallelExecutionError):
            run_tasks(_unpicklable_task, [(payload,)], WORKERS)
        # The pool survives a pickling failure and runs the next job.
        batch = execute(
            [Circuit(2).h(0), Circuit(2).h(0).cx(0, 1)],
            shots=10,
            seed=1,
            max_workers=WORKERS,
        )
        assert len(batch) == 2

    def test_shutdown_pool_is_idempotent(self):
        shutdown_pool()
        shutdown_pool()
        result = execute(
            [Circuit(2).h(0), Circuit(2).h(0).cx(0, 1)],
            shots=10,
            seed=1,
            max_workers=WORKERS,
        )
        assert len(result) == 2
