"""Tests for deterministic shard arithmetic (sizes, seeds, merges)."""

import pytest

from repro import Counts
from repro.service.sharding import (
    effective_shard_count,
    merge_counts,
    merge_memory,
    shard_seeds,
    shard_sizes,
)
from repro.utils.exceptions import ExecutionError, SimulationError
from repro.utils.rng import derive_seed


class TestShardSizes:
    @pytest.mark.parametrize(
        "total,num_shards",
        [(0, 1), (1, 1), (10, 3), (10, 10), (1000, 7), (5, 2)],
    )
    def test_sizes_sum_to_total(self, total, num_shards):
        sizes = shard_sizes(total, num_shards)
        assert len(sizes) == num_shards
        assert sum(sizes) == total

    def test_remainder_goes_to_leading_shards(self):
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(11, 4) == [3, 3, 3, 2]

    def test_even_split(self):
        assert shard_sizes(12, 4) == [3, 3, 3, 3]

    def test_negative_total_rejected(self):
        with pytest.raises(ExecutionError):
            shard_sizes(-1, 2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ExecutionError):
            shard_sizes(10, 0)


class TestEffectiveShardCount:
    def test_zero_and_one_mean_no_sharding(self):
        assert effective_shard_count(0, 1000) == 1
        assert effective_shard_count(1, 1000) == 1

    def test_clamped_to_shots(self):
        # No shard ever samples zero shots.
        assert effective_shard_count(8, 3) == 3
        assert effective_shard_count(8, 100) == 8

    def test_tiny_shot_counts_stay_unsharded(self):
        assert effective_shard_count(4, 0) == 1
        assert effective_shard_count(4, 1) == 1


class TestShardSeeds:
    def test_unsharded_matches_classic_element_seed(self):
        # k <= 1 must reproduce the pre-sharding stream bit for bit.
        assert shard_seeds(123, 5, 1) == [derive_seed(123, 5)]

    def test_sharded_seeds_are_positional(self):
        seeds = shard_seeds(123, 5, 4)
        assert seeds == [derive_seed(123, 5, j) for j in range(4)]
        assert len(set(seeds)) == 4

    def test_distinct_elements_get_distinct_shard_seeds(self):
        a = shard_seeds(123, 0, 3)
        b = shard_seeds(123, 1, 3)
        assert not set(a) & set(b)

    def test_none_seed_propagates(self):
        assert shard_seeds(None, 0, 3) == [None, None, None]


class TestMerges:
    def test_merge_counts_sums_shotwise(self):
        parts = [
            Counts({"00": 3, "11": 1}),
            Counts({"00": 2, "01": 4}),
            Counts({"11": 5}),
        ]
        merged = merge_counts(parts)
        assert merged == {"00": 5, "01": 4, "11": 6}
        assert merged.shots == 15

    def test_merge_counts_with_disagreeing_key_sets(self):
        # Shards routinely observe disjoint outcomes; the merge is a
        # union, not an intersection.
        merged = merge_counts([Counts({"00": 1}), Counts({"11": 2})])
        assert merged == {"00": 1, "11": 2}

    def test_merge_counts_width_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            merge_counts([Counts({"00": 1}), Counts({"111": 1})])

    def test_merge_counts_empty_rejected(self):
        with pytest.raises(ExecutionError):
            merge_counts([])

    def test_merge_memory_concatenates_in_shard_order(self):
        assert merge_memory([["00", "11"], ["01"], ["11"]]) == [
            "00",
            "11",
            "01",
            "11",
        ]

    def test_merge_memory_none_stays_none(self):
        assert merge_memory([None, None]) is None
        assert merge_memory([]) is None
