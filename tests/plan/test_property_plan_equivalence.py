"""Property tests: plan execution is bitwise-identical to the eager path.

The eager references below replicate the pre-plan per-instruction loops
(matrix lookup + contraction per gate, noise-rule matching per run)
exactly, so `np.array_equal` — not `allclose` — is the bar: compiling
must change *when* the bookkeeping happens, never the arithmetic.
"""

import numpy as np
import pytest

from repro import Circuit, RunOptions, execute, run
from repro.bench.workloads import (
    parameterized_rotations,
    random_dense,
    sweep_bindings,
)
from repro.sim import (
    apply_channel_to_density,
    apply_gate_tensor,
    apply_matrix_to_density,
)
from repro.utils.rng import ensure_rng

SEEDS = (0, 1, 2, 7, 23)


def _eager_statevector(circuit: Circuit) -> np.ndarray:
    """The original StatevectorBackend._execute loop, verbatim."""
    n = circuit.num_qubits
    state = np.zeros((2,) * n, dtype=np.complex128)
    state[(0,) * n] = 1.0
    for instruction in circuit:
        state = apply_gate_tensor(
            state, instruction.operation.matrix, instruction.qubits
        )
    return state.reshape(-1)


def _eager_density(circuit: Circuit, noise_model=None) -> np.ndarray:
    """The original DensityMatrixBackend._execute loop, verbatim."""
    n = circuit.num_qubits
    rho = np.zeros((2,) * (2 * n), dtype=np.complex128)
    rho[(0,) * (2 * n)] = 1.0
    for instruction in circuit:
        if instruction.is_channel:
            rho = apply_channel_to_density(
                rho, instruction.operation.kraus, instruction.qubits, n
            )
        else:
            rho = apply_matrix_to_density(
                rho, instruction.operation.matrix, instruction.qubits, n
            )
            if noise_model is not None:
                for channel, qubits in noise_model.channels_for(instruction):
                    rho = apply_channel_to_density(rho, channel.kraus, qubits, n)
    return rho.reshape(1 << n, 1 << n)


def _random_channel_circuit(num_qubits: int, seed: int) -> Circuit:
    """A seeded random circuit with noise channels sprinkled between gates."""
    from repro.noise import amplitude_damping, bit_flip, depolarizing

    channels = (depolarizing(0.03), bit_flip(0.05), amplitude_damping(0.02))
    base = random_dense(num_qubits, num_gates=5 * num_qubits, seed=seed)
    rng = ensure_rng(seed + 1000)
    circuit = Circuit(num_qubits, name=f"random_noisy_{num_qubits}")
    for instruction in base:
        circuit.append(instruction.operation, instruction.qubits)
        if rng.random() < 0.3:
            channel = channels[int(rng.integers(len(channels)))]
            circuit.channel(channel, (int(rng.integers(num_qubits)),))
    return circuit


class TestStatevectorBitwise:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_circuits(self, seed):
        circuit = random_dense(4, num_gates=30, seed=seed)
        assert np.array_equal(run(circuit).data, _eager_statevector(circuit))

    def test_wide_register(self):
        circuit = random_dense(8, num_gates=60, seed=5)
        assert np.array_equal(run(circuit).data, _eager_statevector(circuit))


class TestDensityBitwise:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_circuits(self, seed):
        circuit = random_dense(3, num_gates=20, seed=seed)
        assert np.array_equal(
            run(circuit, backend="density_matrix").data, _eager_density(circuit)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_channel_circuits(self, seed):
        circuit = _random_channel_circuit(3, seed)
        assert np.array_equal(
            run(circuit, backend="density_matrix").data, _eager_density(circuit)
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_with_noise_model(self, seed):
        from repro.noise import NoiseModel, depolarizing, phase_damping

        model = (
            NoiseModel()
            .add_channel(depolarizing(0.02))
            .add_channel(phase_damping(0.01), gates=["cx", "cz"])
        )
        circuit = random_dense(3, num_gates=20, seed=seed)
        assert np.array_equal(
            run(
                circuit,
                backend="density_matrix",
                options=RunOptions(noise_model=model),
            ).data,
            _eager_density(circuit, model),
        )


class TestBatchedSweepMatchesIndependentRuns:
    @pytest.mark.parametrize("seed", (3, 11))
    def test_states_match_bind_plus_run(self, seed):
        template, parameters = parameterized_rotations(4, layers=2)
        bindings = sweep_bindings(parameters, 6, seed=seed)
        batch = execute(template, parameter_sweep=bindings)
        assert batch.metadata["sweep_mode"] == "batched"
        for point, result in zip(bindings, batch):
            reference = run(template.bind(point))
            assert np.max(np.abs(result.state.data - reference.data)) < 1e-12

    def test_expectations_match_per_element_mode(self):
        from repro import Pauli, PauliSum

        observable = PauliSum([(0.5, Pauli("ZZII")), (1.5, Pauli("XIII"))])
        template, parameters = parameterized_rotations(4, layers=2)
        bindings = sweep_bindings(parameters, 5, seed=9)
        batched = execute(
            template, observables=observable, parameter_sweep=bindings
        )
        per_element = execute(
            template,
            observables=observable,
            parameter_sweep=bindings,
            sweep_mode="per_element",
        )
        assert batched.metadata["sweep_mode"] == "batched"
        assert per_element.metadata["sweep_mode"] == "per_element"
        for a, b in zip(batched.expectation_values, per_element.expectation_values):
            assert a[0] == pytest.approx(b[0], abs=1e-12)

    def test_density_sweep_matches_bind_plus_run(self):
        # Density sweeps take the per-element path off one compiled plan;
        # the result must still match independent bind()+run() bitwise.
        template, parameters = parameterized_rotations(2, layers=1)
        bindings = sweep_bindings(parameters, 4, seed=2)
        batch = execute(
            template, backend="density_matrix", parameter_sweep=bindings
        )
        assert batch.metadata["sweep_mode"] == "per_element"
        for point, result in zip(bindings, batch):
            reference = run(template.bind(point), backend="density_matrix")
            assert np.array_equal(result.state.data, reference.data)

    def test_batched_respects_transpiled_template(self):
        # optimize=True: the batched evolution runs the *fused* template.
        template, parameters = parameterized_rotations(3, layers=2)
        bindings = sweep_bindings(parameters, 4, seed=6)
        batch = execute(template, optimize=True, parameter_sweep=bindings)
        for point, result in zip(bindings, batch):
            reference = run(template.bind(point))
            assert np.max(np.abs(result.state.data - reference.data)) < 1e-10
