"""Dynamic ops through the plan layer: lowering, execution, batch guard."""

import numpy as np
import pytest

from repro import Circuit, Instruction, NoiseModel, Parameter, compile_plan, depolarizing
from repro.gates import get_gate
from repro.plan import (
    ConditionalOp,
    MeasureOp,
    ResetOp,
    TrajectoryKrausOp,
    execute_dynamic_density,
    execute_dynamic_pure,
    run_batched_sweep,
)
from repro.sim import DensityMatrixBackend, StatevectorBackend, get_backend
from repro.utils.exceptions import SimulationError


def _dynamic_circuit():
    return (
        Circuit(2, num_clbits=1)
        .h(0)
        .measure(0, 0)
        .if_bit(0, 1, Instruction(get_gate("x"), (1,)))
        .reset(0)
    )


class TestLowering:
    def test_statevector_lowering_op_types(self):
        plan = compile_plan(_dynamic_circuit(), StatevectorBackend(), use_cache=False)
        assert plan.has_dynamic_ops
        assert plan.num_clbits == 1
        kinds = [type(op).__name__ for op in plan.ops]
        assert "MeasureOp" in kinds
        assert "ConditionalOp" in kinds
        assert "ResetOp" in kinds

    def test_density_lowering_op_types(self):
        plan = compile_plan(_dynamic_circuit(), DensityMatrixBackend(), use_cache=False)
        assert plan.has_dynamic_ops
        assert plan.num_clbits == 1

    def test_trajectory_mode_lowers_channels_to_sampled_kraus(self):
        from repro import RunOptions

        model = NoiseModel().add_channel(depolarizing(0.1))
        plan = compile_plan(
            Circuit(1).h(0),
            get_backend("trajectory"),
            RunOptions(noise_model=model),
            use_cache=False,
        )
        assert any(isinstance(op, TrajectoryKrausOp) for op in plan.ops)
        assert plan.has_dynamic_ops

    def test_static_plan_reports_no_dynamic_ops(self):
        plan = compile_plan(Circuit(1).h(0), StatevectorBackend(), use_cache=False)
        assert not plan.has_dynamic_ops
        assert plan.num_clbits == 0

    def test_dynamic_ops_refuse_static_apply(self):
        op = MeasureOp(0, 0, 1)
        with pytest.raises(SimulationError):
            op.apply(np.array([1.0, 0.0], dtype=np.complex128))


class TestDynamicExecution:
    def test_pure_trajectory_records_bits(self):
        plan = compile_plan(_dynamic_circuit(), StatevectorBackend(), use_cache=False)
        tensor = np.zeros((2, 2), dtype=np.complex128)
        tensor[0, 0] = 1.0
        state, bits = execute_dynamic_pure(plan, tensor, np.random.default_rng(0))
        assert bits in ((0,), (1,))
        # Qubit 0 was reset; if the measurement read 1, qubit 1 was flipped.
        expected = np.zeros((2, 2), dtype=np.complex128)
        expected[0, bits[0]] = 1.0
        np.testing.assert_allclose(np.abs(state), np.abs(expected), atol=1e-12)

    def test_density_distribution_is_exact(self):
        plan = compile_plan(_dynamic_circuit(), DensityMatrixBackend(), use_cache=False)
        tensor = np.zeros((2, 2, 2, 2), dtype=np.complex128)
        tensor[0, 0, 0, 0] = 1.0
        rho, distribution = execute_dynamic_density(plan, tensor)
        assert distribution["0"] == pytest.approx(0.5)
        assert distribution["1"] == pytest.approx(0.5)
        trace = np.trace(rho.reshape(4, 4))
        assert trace.real == pytest.approx(1.0, abs=1e-12)

    def test_conditional_op_applies_only_on_match(self):
        from repro.plan import UnitaryOp

        inner = UnitaryOp("x", get_gate("x").matrix, (0,), np.complex128)
        op = ConditionalOp(0, 1, inner)
        state = np.array([1.0, 0.0], dtype=np.complex128)
        untouched = op.apply_pure(state, np.random.default_rng(0), [0])
        np.testing.assert_array_equal(untouched, state)
        flipped = op.apply_pure(state, np.random.default_rng(0), [1])
        np.testing.assert_array_equal(flipped, np.array([0.0, 1.0]))


class TestBatchGuard:
    def test_batched_sweep_rejects_dynamic_plans(self):
        theta = Parameter("theta")
        circuit = Circuit(1, num_clbits=1).ry(theta, 0).measure(0, 0)
        plan = compile_plan(circuit, StatevectorBackend(), use_cache=False)
        with pytest.raises(SimulationError, match="dynamic"):
            run_batched_sweep(plan, [{theta: 0.1}, {theta: 0.2}])
