"""Tests for the process-wide plan cache and the compile-once contract."""

import numpy as np
import pytest

from repro import (
    Circuit,
    Parameter,
    RunOptions,
    clear_plan_cache,
    compile_plan,
    execute,
    plan_cache_info,
)
from repro.plan import add_lower_hook, remove_lower_hook


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture()
def lowering_counter():
    calls = []
    hook = lambda circuit, plan: calls.append(circuit)  # noqa: E731
    add_lower_hook(hook)
    yield calls
    remove_lower_hook(hook)


def _bell() -> Circuit:
    return Circuit(2, name="bell").h(0).cx(0, 1)


class TestCacheHits:
    def test_same_circuit_and_options_hits(self):
        circuit = _bell()
        first = compile_plan(circuit, "statevector")
        second = compile_plan(circuit, "statevector")
        assert second is first
        info = plan_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1

    def test_identical_content_hits_across_objects(self):
        # Keying is by instruction content, not object identity: two
        # separately built but equal circuits share one plan.
        compile_plan(_bell(), "statevector")
        compile_plan(_bell(), "statevector")
        assert plan_cache_info()["hits"] == 1

    def test_execute_reuses_cached_plan(self, lowering_counter):
        circuit = _bell()
        execute(circuit)
        execute(circuit)
        assert len(lowering_counter) == 1
        assert plan_cache_info()["hits"] >= 1

    def test_use_cache_false_bypasses(self):
        circuit = _bell()
        compile_plan(circuit, "statevector", use_cache=False)
        compile_plan(circuit, "statevector", use_cache=False)
        info = plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0 and info["size"] == 0


class TestCacheMisses:
    def test_differing_backend_misses(self):
        circuit = _bell()
        compile_plan(circuit, "statevector")
        compile_plan(circuit, "density_matrix")
        info = plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2

    def test_differing_dtype_misses(self):
        from repro.sim import StatevectorBackend

        circuit = _bell()
        compile_plan(circuit, StatevectorBackend())
        compile_plan(circuit, StatevectorBackend(dtype=np.complex64))
        info = plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2

    def test_differing_noise_model_misses(self):
        from repro.noise import NoiseModel, bit_flip

        circuit = _bell()
        model_a = NoiseModel().add_channel(bit_flip(0.1))
        model_b = NoiseModel().add_channel(bit_flip(0.1))
        compile_plan(circuit, "density_matrix", RunOptions(noise_model=model_a))
        compile_plan(circuit, "density_matrix", RunOptions(noise_model=model_b))
        compile_plan(circuit, "density_matrix", RunOptions(noise_model=model_a))
        info = plan_cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 1  # model_a again does hit

    def test_noise_model_mutation_misses(self):
        from repro.noise import NoiseModel, bit_flip

        circuit = _bell()
        model = NoiseModel().add_channel(bit_flip(0.1))
        compile_plan(circuit, "density_matrix", RunOptions(noise_model=model))
        model.add_channel(bit_flip(0.2))
        plan = compile_plan(
            circuit, "density_matrix", RunOptions(noise_model=model)
        )
        assert plan_cache_info()["misses"] == 2
        # And the recompiled plan carries the new rule's Kraus ops.
        from repro.plan import DensityKrausOp

        kraus_ops = [op for op in plan.ops if isinstance(op, DensityKrausOp)]
        assert len(kraus_ops) == 6  # 2 rules x 3 gate-qubit applications

    def test_differing_passes_misses(self):
        from repro.transpile import DropIdentities

        circuit = _bell()
        compile_plan(circuit, "statevector", RunOptions(passes=[DropIdentities()]))
        compile_plan(circuit, "statevector", RunOptions(passes=[DropIdentities()]))
        info = plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2

    def test_same_passes_object_hits(self):
        from repro.transpile import DropIdentities

        circuit = _bell()
        passes = [DropIdentities()]
        compile_plan(circuit, "statevector", RunOptions(passes=passes))
        compile_plan(circuit, "statevector", RunOptions(passes=passes))
        assert plan_cache_info()["hits"] == 1

    def test_optimize_flag_misses(self):
        circuit = _bell()
        compile_plan(circuit, "statevector")
        compile_plan(circuit, "statevector", RunOptions(optimize=True))
        info = plan_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2

    def test_appending_to_circuit_misses(self):
        circuit = _bell()
        compile_plan(circuit, "statevector")
        circuit.h(1)
        compile_plan(circuit, "statevector")
        assert plan_cache_info()["misses"] == 2


class TestBindNeverRelowers:
    def test_cached_parametric_plan_binds_without_lowering(self, lowering_counter):
        theta = Parameter("theta")
        template = Circuit(2).ry(theta, 0).cx(0, 1)
        plan = compile_plan(template, "statevector")
        assert len(lowering_counter) == 1
        for value in (0.1, 0.2, 0.3):
            plan.bind({theta: value})
        assert len(lowering_counter) == 1
        # A second compile is a cache hit: still exactly one lowering.
        again = compile_plan(template, "statevector")
        assert again is plan
        assert len(lowering_counter) == 1

    def test_sweep_through_execute_lowers_once(self, lowering_counter):
        theta = Parameter("theta")
        template = Circuit(2).ry(theta, 0).cx(0, 1)
        sweep = [{theta: v} for v in np.linspace(0.0, np.pi, 7)]
        execute(template, parameter_sweep=sweep)
        execute(template, parameter_sweep=sweep, sweep_mode="per_element")
        assert len(lowering_counter) == 1


class TestCacheBookkeeping:
    def test_clear_resets_counters(self):
        compile_plan(_bell(), "statevector")
        clear_plan_cache()
        info = plan_cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": info["maxsize"],
        }

    def test_lru_bounded(self):
        maxsize = plan_cache_info()["maxsize"]
        for width in range(1, maxsize + 10):
            circuit = Circuit(1)
            for _ in range(width):
                circuit.h(0)
            compile_plan(circuit, "statevector")
        assert plan_cache_info()["size"] == maxsize


class TestPassManagerMutation:
    def test_appending_to_pass_manager_misses(self):
        # PassManager.append() is public: mutating the pipeline must not
        # hand back the stale pre-append plan.
        from repro import Circuit, run
        from repro.transpile import DropIdentities, PassManager

        circuit = Circuit(1).x(0).rz(0.0, 0)
        manager = PassManager([])
        first = run(circuit, options=RunOptions(passes=manager))
        manager.append(DropIdentities())
        second = run(circuit, options=RunOptions(passes=manager))
        assert plan_cache_info()["misses"] == 2  # no stale hit
        assert np.array_equal(first.data, second.data)  # rz(0) is identity

    def test_replacing_a_list_element_misses(self):
        # In-place replacement of a pass inside a caller-held list must
        # not produce a stale hit: the entry pins the old element, so the
        # new pass can never recycle its id.
        from repro import Circuit, run
        from repro.transpile import CancelInversePairs, DropIdentities

        circuit = Circuit(1).x(0).rz(0.0, 0)
        passes = [DropIdentities()]
        run(circuit, options=RunOptions(passes=passes))
        passes[0] = CancelInversePairs()
        run(circuit, options=RunOptions(passes=passes))
        assert plan_cache_info()["misses"] == 2


class TestThreadSafety:
    def test_concurrent_get_put_info_clear(self):
        # The async service compiles from dispatcher threads while the
        # main thread compiles too; hammer every cache entry point at
        # once and require internally consistent counters at the end.
        import threading

        def distinct_circuit(worker: int, step: int) -> Circuit:
            circuit = Circuit(2)
            for _ in range(1 + (worker * 17 + step) % 8):
                circuit.h(0)
            circuit.cx(0, 1)
            return circuit

        errors = []

        def hammer(worker: int):
            try:
                for step in range(30):
                    compile_plan(distinct_circuit(worker, step), "statevector")
                    plan_cache_info()
                    if worker == 0 and step % 10 == 9:
                        clear_plan_cache()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        info = plan_cache_info()
        assert 0 <= info["size"] <= info["maxsize"]
        assert info["hits"] >= 0 and info["misses"] >= 0
