"""Tests for compile_plan / ExecutionPlan structure, binding, and errors."""

import numpy as np
import pytest

from repro import (
    Circuit,
    CircuitStats,
    Parameter,
    RunOptions,
    compile_plan,
    get_backend,
)
from repro.plan import (
    DensityKrausOp,
    DensityUnitaryOp,
    ExecutionPlan,
    ParametricSlotOp,
    UnitaryOp,
)
from repro.utils.exceptions import SimulationError


def _bell() -> Circuit:
    return Circuit(2, name="bell").h(0).cx(0, 1)


class TestLowering:
    def test_statevector_plan_structure(self):
        plan = compile_plan(_bell(), "statevector")
        assert isinstance(plan, ExecutionPlan)
        assert plan.mode == "statevector"
        assert plan.num_qubits == 2
        assert len(plan) == 2
        assert all(isinstance(op, UnitaryOp) for op in plan.ops)
        assert plan.backend_name == "statevector"
        assert not plan.is_parametric

    def test_gate_tensors_prereshaped_with_axes(self):
        plan = compile_plan(_bell(), "statevector")
        h_op, cx_op = plan.ops
        assert h_op.tensor.shape == (2, 2)
        assert h_op.targets == (0,)
        assert cx_op.tensor.shape == (2, 2, 2, 2)
        assert cx_op.targets == (0, 1)
        assert cx_op.in_axes == (2, 3)

    def test_density_plan_structure(self):
        from repro.noise import depolarizing

        circuit = Circuit(2).h(0).channel(depolarizing(0.05), (0,)).cx(0, 1)
        plan = compile_plan(circuit, "density_matrix")
        assert plan.mode == "density"
        kinds = [type(op) for op in plan.ops]
        assert kinds == [DensityUnitaryOp, DensityKrausOp, DensityUnitaryOp]
        # Column axes offset by the register width.
        assert plan.ops[0].row_targets == (0,)
        assert plan.ops[0].col_targets == (2,)

    def test_noise_rules_matched_at_compile_time(self):
        from repro.noise import NoiseModel, bit_flip

        model = NoiseModel().add_channel(bit_flip(0.1), gates=["cx"])
        plan = compile_plan(
            _bell(), "density_matrix", RunOptions(noise_model=model)
        )
        kinds = [type(op) for op in plan.ops]
        # h (no rule), cx, then one bit-flip Kraus op per cx qubit.
        assert kinds == [
            DensityUnitaryOp,
            DensityUnitaryOp,
            DensityKrausOp,
            DensityKrausOp,
        ]

    def test_statevector_rejects_channels_at_compile(self):
        from repro.noise import depolarizing

        circuit = Circuit(1).h(0).channel(depolarizing(0.1), (0,))
        with pytest.raises(SimulationError, match="channel"):
            compile_plan(circuit, "statevector")

    def test_statevector_rejects_gate_noise_at_compile(self):
        from repro.noise import NoiseModel, bit_flip

        model = NoiseModel().add_channel(bit_flip(0.1))
        with pytest.raises(SimulationError, match="density_matrix"):
            compile_plan(_bell(), "statevector", RunOptions(noise_model=model))

    def test_dtype_follows_backend(self):
        from repro.sim import StatevectorBackend

        plan = compile_plan(_bell(), StatevectorBackend(dtype=np.complex64))
        assert plan.dtype == np.dtype(np.complex64)
        assert all(op.tensor.dtype == np.complex64 for op in plan.ops)

    def test_transpile_recorded_on_plan(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1)
        plan = compile_plan(circuit, None, RunOptions(optimize=True))
        assert plan.pass_stats  # per-pass dicts captured
        assert {"pass", "gates_before", "gates_after"} <= set(plan.pass_stats[0])
        assert len(plan.circuit) < len(circuit)  # h·h cancelled
        assert plan.compile_time_s >= plan.transpile_time_s >= 0
        assert isinstance(plan.stats, CircuitStats)

    def test_non_circuit_rejected(self):
        with pytest.raises(SimulationError, match="Circuit"):
            compile_plan("bell", "statevector")

    def test_bad_options_rejected(self):
        with pytest.raises(SimulationError, match="RunOptions"):
            compile_plan(_bell(), "statevector", {"shots": 4})

    def test_backend_without_plan_mode_rejected(self):
        class Weird:
            name = "weird"
            run = staticmethod(lambda *a, **k: None)

        with pytest.raises(SimulationError, match="plan_mode"):
            compile_plan(_bell(), Weird())


class TestParametricPlans:
    def test_slots_and_parameters(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        circuit = Circuit(2).rx(theta, 0).cx(0, 1).rz(phi, 1)
        plan = compile_plan(circuit, "statevector")
        assert plan.is_parametric
        assert [p.name for p in plan.parameters] == ["theta", "phi"]
        slots = [op for op in plan.ops if isinstance(op, ParametricSlotOp)]
        assert len(slots) == 2
        assert slots[0].gate_name == "rx"

    def test_bind_shares_static_ops(self):
        theta = Parameter("theta")
        circuit = Circuit(2).h(0).ry(theta, 1)
        plan = compile_plan(circuit, "statevector")
        bound = plan.bind({"theta": 0.3})
        assert not bound.is_parametric
        assert bound.ops[0] is plan.ops[0]  # static op reused, not rebuilt
        assert isinstance(bound.ops[1], UnitaryOp)

    def test_bind_accepts_parameter_objects_and_names(self):
        theta = Parameter("theta")
        plan = compile_plan(Circuit(1).ry(theta, 0), "statevector")
        by_name = plan.bind({"theta": 0.7})
        by_object = plan.bind({theta: 0.7})
        assert np.array_equal(by_name.ops[0].tensor, by_object.ops[0].tensor)

    def test_bind_missing_parameter_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        plan = compile_plan(Circuit(2).rx(a, 0).ry(b, 1), "statevector")
        with pytest.raises(SimulationError, match="unbound"):
            plan.bind({"a": 0.1})

    def test_bind_stray_key_rejected(self):
        plan = compile_plan(Circuit(1).ry(Parameter("t"), 0), "statevector")
        with pytest.raises(SimulationError, match="unknown"):
            plan.bind({"t": 0.1, "oops": 0.2})

    def test_bind_conflicting_values_rejected(self):
        theta = Parameter("t")
        plan = compile_plan(Circuit(1).ry(theta, 0), "statevector")
        with pytest.raises(SimulationError, match="conflicting"):
            plan.bind({theta: 0.1, "t": 0.2})

    def test_bind_of_bound_plan_is_identity(self):
        plan = compile_plan(_bell(), "statevector")
        assert plan.bind({}) is plan

    def test_density_bind_produces_conjugation_ops(self):
        theta = Parameter("theta")
        circuit = Circuit(1).ry(theta, 0)
        plan = compile_plan(circuit, "density_matrix")
        bound = plan.bind({theta: np.pi})
        assert isinstance(bound.ops[0], DensityUnitaryOp)
        state = get_backend("density_matrix").execute_plan(bound)
        assert state.probability("1") == pytest.approx(1.0)


class TestExecutePlan:
    def test_matches_run(self):
        backend = get_backend("statevector")
        plan = compile_plan(_bell(), backend)
        assert np.array_equal(
            backend.execute_plan(plan).data, backend.run(_bell()).data
        )

    def test_initial_state_respected(self):
        backend = get_backend("statevector")
        plan = compile_plan(Circuit(2).cx(0, 1), backend)
        state = backend.execute_plan(plan, initial_state="10")
        assert state.probability("11") == pytest.approx(1.0)

    def test_unbound_plan_refused(self):
        backend = get_backend("statevector")
        plan = compile_plan(Circuit(1).ry(Parameter("t"), 0), backend)
        with pytest.raises(SimulationError, match="unbound"):
            backend.execute_plan(plan)

    def test_mode_mismatch_refused(self):
        sv_plan = compile_plan(_bell(), "statevector")
        with pytest.raises(SimulationError, match="mode"):
            get_backend("density_matrix").execute_plan(sv_plan)

    def test_non_plan_refused(self):
        with pytest.raises(SimulationError, match="ExecutionPlan"):
            get_backend("statevector").execute_plan(_bell())


class TestLowerHooks:
    def test_hooks_fire_on_lowering_only(self):
        from repro.plan import add_lower_hook, remove_lower_hook

        seen = []
        hook = lambda circuit, plan: seen.append(plan)  # noqa: E731
        add_lower_hook(hook)
        try:
            plan = compile_plan(
                Circuit(1).ry(Parameter("t"), 0), "statevector", use_cache=False
            )
            assert len(seen) == 1
            plan.bind({"t": 0.1})
            plan.bind({"t": 0.2})
            assert len(seen) == 1  # bind never re-lowers
        finally:
            remove_lower_hook(hook)
        compile_plan(_bell(), "statevector", use_cache=False)
        assert len(seen) == 1  # removed hooks stay silent

    def test_non_callable_hook_rejected(self):
        from repro.plan import add_lower_hook

        with pytest.raises(SimulationError, match="callable"):
            add_lower_hook("not a function")


class TestRunBatchedSweep:
    def test_direct_use_matches_independent_runs(self):
        from repro import run, run_batched_sweep

        theta = Parameter("theta")
        template = Circuit(2).h(1).ry(theta, 0).cx(0, 1)
        plan = compile_plan(template, "statevector")
        bindings = [{"theta": v} for v in (0.0, 0.5, 2.5)]
        batch = run_batched_sweep(plan, bindings)
        assert batch.shape == (3, 2, 2)
        for i, binding in enumerate(bindings):
            reference = run(template.bind(binding))
            assert np.max(np.abs(batch[i].reshape(-1) - reference.data)) < 1e-12

    def test_bound_plan_sweeps_too(self):
        from repro import run_batched_sweep

        plan = compile_plan(_bell(), "statevector")
        batch = run_batched_sweep(plan, [{}, {}])
        assert batch.shape == (2, 2, 2)
        assert np.array_equal(batch[0], batch[1])

    def test_density_plan_rejected(self):
        from repro import run_batched_sweep

        plan = compile_plan(_bell(), "density_matrix")
        with pytest.raises(SimulationError, match="statevector"):
            run_batched_sweep(plan, [{}])

    def test_empty_bindings_rejected(self):
        from repro import run_batched_sweep

        plan = compile_plan(_bell(), "statevector")
        with pytest.raises(SimulationError, match="at least one"):
            run_batched_sweep(plan, [])

    def test_missing_parameter_rejected(self):
        from repro import run_batched_sweep

        plan = compile_plan(Circuit(1).ry(Parameter("t"), 0), "statevector")
        with pytest.raises(SimulationError, match="unbound"):
            run_batched_sweep(plan, [{"t": 0.1}, {}])

    def test_non_plan_rejected(self):
        from repro import run_batched_sweep

        with pytest.raises(SimulationError, match="ExecutionPlan"):
            run_batched_sweep(_bell(), [{}])

    def test_stray_binding_key_rejected(self):
        from repro import run_batched_sweep

        plan = compile_plan(Circuit(1).ry(Parameter("t"), 0), "statevector")
        with pytest.raises(SimulationError, match="unknown parameter"):
            run_batched_sweep(plan, [{"t": 0.1, "oops": 0.2}])
