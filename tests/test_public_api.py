"""The top-level ``repro`` namespace: ``__all__`` matches reality."""

import pytest

import repro


class TestAll:
    def test_every_name_in_all_is_importable(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == [], f"__all__ names not importable: {missing}"

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_public_attributes_are_exported(self):
        # Every public (non-underscore, non-module) attribute bound on the
        # package should be deliberate, i.e. listed in __all__.
        import types

        public = {
            name
            for name in vars(repro)
            if not name.startswith("_")
            and not isinstance(getattr(repro, name), types.ModuleType)
        }
        unexported = public - set(repro.__all__)
        assert unexported == set(), f"public names missing from __all__: {unexported}"

    @pytest.mark.parametrize(
        "name",
        [
            "transpile",
            "PassManager",
            "Pass",
            "FuseAdjacentGates",
            "DropIdentities",
            "CancelInversePairs",
            "unitary_gate",
            "run_suite",
            # noise + multi-backend surface
            "Channel",
            "NoiseModel",
            "ReadoutError",
            "depolarizing",
            "bit_flip",
            "phase_flip",
            "bit_phase_flip",
            "amplitude_damping",
            "phase_damping",
            "Backend",
            "DensityMatrix",
            "get_backend",
            "register_backend",
            "available_backends",
            # Pauli-transfer-matrix surface
            "PauliVector",
            # unified execution surface
            "execute",
            "submit",
            "RunOptions",
            "Job",
            "Result",
            "BatchResult",
            "BaseBackend",
            "Parameter",
            "Pauli",
            "PauliSum",
            "expectation",
            # compiled-plan surface
            "CircuitStats",
            "ExecutionPlan",
            "compile_plan",
            "plan_cache_info",
            "clear_plan_cache",
            "run_batched_sweep",
            "expectation_batched",
            # dynamic circuits surface
            "Measure",
            "Reset",
            "Conditional",
            "Circuit",
            "execute_async",
            "ExecutionService",
            "Counts",
            "sample_counts",
            "sample_memory",
        ],
    )
    def test_new_entry_points_exported(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_every_registered_backend_class_exported(self):
        # Derived from the registry, not a hard-coded name list: whatever
        # backend registers itself must also export its class here.
        for backend_name in repro.available_backends():
            class_name = type(repro.get_backend(backend_name)).__name__
            assert class_name in repro.__all__, (
                f"backend {backend_name!r} registered but {class_name} is "
                f"not in repro.__all__"
            )

    def test_star_import(self):
        namespace = {}
        exec("from repro import *", namespace)
        for name in repro.__all__:
            assert name in namespace

    def test_subpackage_all_importable(self):
        # NB: resolve through importlib — the attribute ``repro.transpile``
        # is the transpile *function* (it shadows the submodule, just like
        # ``repro.run`` shadows nothing but is a function too).
        import importlib

        for module_name in (
            "repro.transpile",
            "repro.bench",
            "repro.noise",
            "repro.plan",
            "repro.sim",
            "repro.observables",
            "repro.execution",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name} missing"


class TestExceptionHierarchy:
    """The exported exception set IS the defined hierarchy — no dead names.

    The ``CharterError`` regression this guards: an exception class kept
    (and re-exported) long after the subsystem it belonged to vanished.
    Enumerating both directions makes a stale export *and* an unexported
    subsystem error fail loudly.
    """

    def _defined(self):
        import inspect

        from repro.utils import exceptions as exceptions_module

        return {
            name
            for name, obj in vars(exceptions_module).items()
            if inspect.isclass(obj) and issubclass(obj, exceptions_module.ReproError)
        }

    def _exported(self):
        # Judged by what the name *is*, not what it is called: ReadoutError
        # is a noise-model value object, not an exception.
        import inspect

        return {
            name
            for name in repro.__all__
            if inspect.isclass(getattr(repro, name, None))
            and issubclass(getattr(repro, name), Exception)
        }

    def test_exported_exceptions_equal_defined_hierarchy(self):
        assert self._exported() == self._defined()

    def test_utils_reexports_match_hierarchy(self):
        import inspect

        from repro import utils

        exported = {
            name
            for name in utils.__all__
            if inspect.isclass(getattr(utils, name, None))
            and issubclass(getattr(utils, name), Exception)
        }
        assert exported == self._defined()

    def test_every_exception_subclasses_repro_error(self):
        from repro import ReproError

        for name in self._exported():
            exc = getattr(repro, name)
            assert issubclass(exc, ReproError), name

    def test_execution_error_present_charter_error_gone(self):
        assert "ExecutionError" in repro.__all__
        assert "CharterError" not in repro.__all__
        assert not hasattr(repro, "CharterError")
