"""Tests for expectation values on pure and mixed states."""

import numpy as np
import pytest

from repro import Circuit, run
from repro.observables import Pauli, PauliSum, expectation
from repro.sim import DensityMatrix, Statevector
from repro.utils.exceptions import ExecutionError


class TestStatevectorExpectation:
    def test_z_on_basis_states(self):
        assert expectation(Statevector.from_bitstring("0"), Pauli("Z")) == 1.0
        assert expectation(Statevector.from_bitstring("1"), Pauli("Z")) == -1.0

    def test_x_on_plus_state(self):
        plus = run(Circuit(1).h(0))
        assert expectation(plus, Pauli("X")) == pytest.approx(1.0)
        assert expectation(plus, Pauli("Z")) == pytest.approx(0.0, abs=1e-12)

    def test_identity_string(self):
        state = run(Circuit(2).h(0).cx(0, 1))
        assert expectation(state, Pauli("II")) == pytest.approx(1.0)

    def test_zz_on_bell_state(self):
        bell = run(Circuit(2).h(0).cx(0, 1))
        assert expectation(bell, Pauli("ZZ")) == pytest.approx(1.0)
        assert expectation(bell, Pauli("XX")) == pytest.approx(1.0)
        assert expectation(bell, Pauli("YY")) == pytest.approx(-1.0)
        assert expectation(bell, Pauli("ZI")) == pytest.approx(0.0, abs=1e-12)

    def test_sparse_qubit_targets(self):
        state = run(Circuit(3).x(2))
        assert expectation(state, Pauli("Z", qubits=(2,))) == pytest.approx(-1.0)
        assert expectation(state, Pauli("Z", qubits=(0,))) == pytest.approx(1.0)

    def test_pauli_sum_is_linear(self):
        bell = run(Circuit(2).h(0).cx(0, 1))
        obs = PauliSum([(0.5, Pauli("ZZ")), (2.0, Pauli("XX")), (1.0, Pauli("YY"))])
        assert expectation(bell, obs) == pytest.approx(0.5 + 2.0 - 1.0)

    def test_matches_dense_matrix_expectation(self):
        state = run(Circuit(2).rx(0.3, 0).ry(0.8, 1).cx(0, 1))
        z = np.array([[1, 0], [0, -1]], dtype=complex)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        dense = np.kron(z, x)
        expected = state.expectation(dense, (0, 1)).real
        assert expectation(state, Pauli("ZX")) == pytest.approx(expected, abs=1e-12)

    def test_agrees_with_expectation_z(self):
        state = run(Circuit(2).ry(1.1, 0).cx(0, 1))
        assert expectation(state, Pauli("Z", qubits=(1,))) == pytest.approx(
            state.expectation_z(1), abs=1e-12
        )


class TestDensityMatrixExpectation:
    def test_pure_projector_matches_statevector(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.4, 1)
        psi = run(circuit)
        rho = run(circuit, backend="density_matrix")
        for label in ("ZZ", "XX", "XY", "ZI", "IY"):
            assert expectation(rho, Pauli(label)) == pytest.approx(
                expectation(psi, Pauli(label)), abs=1e-10
            )

    def test_maximally_mixed_state(self):
        rho = DensityMatrix(np.eye(2) / 2)
        assert expectation(rho, Pauli("Z")) == pytest.approx(0.0, abs=1e-12)
        assert expectation(rho, Pauli("X")) == pytest.approx(0.0, abs=1e-12)

    def test_depolarized_z_shrinks(self):
        from repro.noise import depolarizing

        circuit = Circuit(1).x(0).channel(depolarizing(0.3), (0,))
        rho = run(circuit, backend="density_matrix")
        value = expectation(rho, Pauli("Z"))
        assert -1.0 < value < 0.0  # shrunk toward 0 but still negative


class TestValidation:
    def test_observable_wider_than_state(self):
        state = Statevector.zero_state(1)
        with pytest.raises(ExecutionError, match="qubit"):
            expectation(state, Pauli("ZZ"))

    def test_bad_state_type(self):
        with pytest.raises(ExecutionError, match="Statevector"):
            expectation(np.eye(2), Pauli("Z"))

    def test_bad_observable_type(self):
        with pytest.raises(ExecutionError, match="observable"):
            expectation(Statevector.zero_state(1), "Z")


class TestBatchedExpectation:
    def _batch(self, circuits):
        states = [run(c).tensor() for c in circuits]
        return np.stack(states)

    def test_matches_per_element_pauli(self):
        from repro.observables import expectation_batched

        circuits = [
            Circuit(2).h(0),
            Circuit(2).x(0).cx(0, 1),
            Circuit(2).ry(0.4, 0).rz(1.1, 1),
        ]
        batch = self._batch(circuits)
        for observable in (Pauli("ZI"), Pauli("XZ"), Pauli("IY")):
            values = expectation_batched(batch, observable)
            assert values.shape == (3,)
            for i, circuit in enumerate(circuits):
                assert values[i] == pytest.approx(
                    expectation(run(circuit), observable), abs=1e-12
                )

    def test_matches_per_element_pauli_sum(self):
        from repro.observables import expectation_batched

        observable = PauliSum([(0.5, Pauli("ZZ")), (-1.5, Pauli("XX"))])
        circuits = [Circuit(2).h(0).cx(0, 1), Circuit(2).h(1)]
        values = expectation_batched(self._batch(circuits), observable)
        for i, circuit in enumerate(circuits):
            assert values[i] == pytest.approx(
                expectation(run(circuit), observable), abs=1e-12
            )

    def test_rejects_non_batch_shapes(self):
        from repro.observables import expectation_batched

        with pytest.raises(ExecutionError, match="batch"):
            expectation_batched(np.zeros((3, 4)), Pauli("Z"))

    def test_rejects_observable_wider_than_batch(self):
        from repro.observables import expectation_batched

        batch = np.zeros((2, 2), dtype=complex)
        batch[:, 0] = 1.0
        with pytest.raises(ExecutionError, match="qubit"):
            expectation_batched(batch.reshape(2, 2), Pauli("ZZ"))

    def test_rejects_bad_observable(self):
        from repro.observables import expectation_batched

        batch = np.zeros((1, 2), dtype=complex)
        batch[:, 0] = 1.0
        with pytest.raises(ExecutionError, match="observable"):
            expectation_batched(batch, "Z")

    def test_real_dtype_batch_promoted_for_y_factors(self):
        from repro.observables import expectation_batched

        # A hand-built real float batch must not zero Y's imaginary entries.
        bell = np.zeros((1, 2, 2))
        bell[0, 0, 0] = bell[0, 1, 1] = 2 ** -0.5
        values = expectation_batched(bell, Pauli("YY"))
        assert values[0] == pytest.approx(-1.0)
