"""Tests for Pauli / PauliSum observable construction and algebra."""

import pytest

from repro.observables import Pauli, PauliSum
from repro.utils.exceptions import ExecutionError


class TestPauli:
    def test_dense_label(self):
        pauli = Pauli("XIZ")
        assert pauli.factors == ((0, "X"), (2, "Z"))
        assert pauli.qubits == (0, 2)
        assert pauli.weight == 2
        assert pauli.min_width == 3

    def test_sparse_qubits(self):
        assert Pauli("Z", qubits=(3,)).factors == ((3, "Z"),)
        assert Pauli("Z", qubits=(3,)).min_width == 4

    def test_identity_factors_are_normalisation_only(self):
        assert Pauli("IZ") == Pauli("Z", qubits=(1,))
        assert hash(Pauli("IZ")) == hash(Pauli("Z", qubits=(1,)))

    def test_case_insensitive(self):
        assert Pauli("xyz") == Pauli("XYZ")

    def test_factor_order_canonical(self):
        assert Pauli("XZ", qubits=(2, 0)) == Pauli("ZX", qubits=(0, 2))

    def test_label_round_trip(self):
        assert Pauli("XIZ").label() == "XIZ"
        assert Pauli("Z", qubits=(1,)).label(num_qubits=3) == "IZI"
        with pytest.raises(ExecutionError):
            Pauli("XIZ").label(num_qubits=2)

    def test_pure_identity(self):
        identity = Pauli("III")
        assert identity.weight == 0
        assert identity.min_width == 1

    def test_invalid_labels(self):
        with pytest.raises(ExecutionError):
            Pauli("")
        with pytest.raises(ExecutionError):
            Pauli("XQ")
        with pytest.raises(ExecutionError):
            Pauli("XX", qubits=(0,))
        with pytest.raises(ExecutionError):
            Pauli("XX", qubits=(0, 0))
        with pytest.raises(ExecutionError):
            Pauli("X", qubits=(-1,))


class TestPauliSum:
    def test_terms_from_pairs_and_bare_paulis(self):
        obs = PauliSum([(0.5, Pauli("Z")), Pauli("X")])
        assert obs.terms == ((0.5, Pauli("Z")), (1.0, Pauli("X")))
        assert len(obs) == 2

    def test_duplicate_terms_combine(self):
        obs = PauliSum([(0.5, Pauli("Z")), (0.25, Pauli("Z"))])
        assert obs.terms == ((0.75, Pauli("Z")),)

    def test_empty_rejected(self):
        with pytest.raises(ExecutionError, match="at least one term"):
            PauliSum([])

    def test_complex_coefficient_rejected(self):
        with pytest.raises(ExecutionError, match="real"):
            PauliSum([(1j, Pauli("Z"))])
        # A complex with zero imaginary part is fine.
        assert PauliSum([(complex(2, 0), Pauli("Z"))]).terms == ((2.0, Pauli("Z")),)

    def test_arithmetic(self):
        obs = 0.5 * Pauli("Z") + Pauli("X", qubits=(1,))
        assert isinstance(obs, PauliSum)
        assert obs.terms == ((0.5, Pauli("Z")), (1.0, Pauli("X", qubits=(1,))))
        doubled = 2 * obs
        assert doubled.terms == ((1.0, Pauli("Z")), (2.0, Pauli("X", qubits=(1,))))
        assert obs.min_width == 2

    def test_equality_ignores_term_order(self):
        a = PauliSum([(0.5, Pauli("Z")), (1.0, Pauli("X"))])
        b = PauliSum([(1.0, Pauli("X")), (0.5, Pauli("Z"))])
        assert a == b
        assert hash(a) == hash(b)

    def test_malformed_terms(self):
        with pytest.raises(ExecutionError):
            PauliSum([42])
        with pytest.raises(ExecutionError):
            PauliSum([(1.0, "Z")])
