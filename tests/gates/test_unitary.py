"""Tests for explicit-matrix unitary gates, end to end through the stack."""

import numpy as np
import pytest

from repro.circuit import Circuit, Gate
from repro.gates import get_gate, unitary_gate
from repro.sim import run
from repro.utils.exceptions import CircuitError


class TestUnitaryGate:
    def test_wraps_matrix(self):
        m = get_gate("h").matrix
        gate = unitary_gate(m)
        assert isinstance(gate, Gate)
        assert gate.name == "unitary"
        assert gate.num_qubits == 1
        assert np.array_equal(gate.matrix, m)

    def test_two_qubit_matrix(self):
        gate = unitary_gate(get_gate("cx").matrix)
        assert gate.num_qubits == 2

    def test_custom_name(self):
        assert unitary_gate(np.eye(2), name="my_u").name == "my_u"

    def test_rejects_non_unitary(self):
        with pytest.raises(CircuitError, match="not unitary"):
            unitary_gate(np.array([[1, 0], [0, 2]]))

    def test_validate_false_skips_check(self):
        gate = unitary_gate(np.array([[1, 0], [0, 2]]), validate=False)
        assert not gate.is_unitary()

    def test_rejects_non_square(self):
        with pytest.raises(CircuitError, match="square"):
            unitary_gate(np.ones((2, 4)))

    def test_rejects_bad_dimension(self):
        with pytest.raises(CircuitError, match="power of two"):
            unitary_gate(np.eye(3))
        with pytest.raises(CircuitError, match="power of two"):
            unitary_gate(np.eye(1))

    def test_inverse_round_trips(self):
        theta = 0.73
        gate = unitary_gate(get_gate("rx", theta).matrix)
        inv = gate.inverse()
        assert np.allclose(inv.matrix @ gate.matrix, np.eye(2))

    def test_equality_is_matrix_sensitive(self):
        a = unitary_gate(get_gate("h").matrix)
        b = unitary_gate(get_gate("x").matrix)
        assert a != b
        assert a == unitary_gate(get_gate("h").matrix)


class TestCircuitUnitary:
    def test_append_and_run(self):
        circuit = Circuit(1).unitary([[0, 1], [1, 0]], [0])
        assert run(circuit).probabilities_dict() == pytest.approx({"1": 1.0})

    def test_matches_named_gate_semantics(self):
        bell_explicit = Circuit(2)
        bell_explicit.unitary(get_gate("h").matrix, [0])
        bell_explicit.unitary(get_gate("cx").matrix, [0, 1])
        bell_named = Circuit(2).h(0).cx(0, 1)
        assert run(bell_explicit).fidelity(run(bell_named)) == pytest.approx(1.0)

    def test_qubit_order_convention(self):
        # cx matrix with (target, control) order: control is qubit 1.
        circuit = Circuit(2).x(1).unitary(get_gate("cx").matrix, [1, 0])
        assert run(circuit).probabilities_dict() == pytest.approx({"11": 1.0})

    def test_chainable(self):
        circuit = Circuit(1).unitary(np.eye(2), [0]).x(0)
        assert len(circuit) == 2

    def test_width_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).unitary(np.eye(2), [0, 1])

    def test_counts_ops_reports_unitary(self):
        circuit = Circuit(1).unitary(np.eye(2), [0])
        assert circuit.count_ops() == {"unitary": 1}

    def test_inverse_circuit_with_unitary(self):
        circuit = Circuit(2).h(0).unitary(get_gate("cx").matrix, [0, 1])
        round_trip = circuit.compose(circuit.inverse())
        state = run(round_trip)
        assert state.probability("00") == pytest.approx(1.0)
