"""Standard gate library: matrices, unitarity, registry behaviour, caching."""

import numpy as np
import pytest

from repro.gates import available_gates, gate_arity, get_gate, register_gate
from repro.utils.exceptions import CircuitError

EXPECTED_GATES = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
    "rx", "ry", "rz", "p", "u3", "cx", "cz", "swap",
}


def test_standard_library_registered():
    assert EXPECTED_GATES <= set(available_gates())


@pytest.mark.parametrize("name", sorted(EXPECTED_GATES))
def test_every_gate_is_unitary(name):
    params = {"rx": (0.3,), "ry": (0.3,), "rz": (0.3,), "p": (0.3,), "u3": (0.1, 0.2, 0.3)}
    gate = get_gate(name, *params.get(name, ()))
    assert gate.is_unitary()
    assert gate.num_qubits == gate_arity(name)


def test_known_matrices():
    sqrt2 = np.sqrt(2.0)
    assert np.allclose(get_gate("h").matrix, np.array([[1, 1], [1, -1]]) / sqrt2)
    assert np.allclose(get_gate("x").matrix, [[0, 1], [1, 0]])
    assert np.allclose(get_gate("z").matrix, np.diag([1, -1]))
    assert np.allclose(get_gate("cz").matrix, np.diag([1, 1, 1, -1]))


def test_cx_control_is_most_significant_bit():
    cx = get_gate("cx").matrix
    # |10> (control set, target clear) -> |11>
    assert cx[3, 2] == 1 and cx[2, 3] == 1
    # control-clear block is identity
    assert cx[0, 0] == 1 and cx[1, 1] == 1


def test_sdg_tdg_are_adjoints():
    assert np.allclose(get_gate("sdg").matrix, get_gate("s").matrix.conj().T)
    assert np.allclose(get_gate("tdg").matrix, get_gate("t").matrix.conj().T)


def test_rotations_match_exponential_form():
    theta = 0.7
    x = get_gate("x").matrix
    expected = np.cos(theta / 2) * np.eye(2) - 1j * np.sin(theta / 2) * x
    assert np.allclose(get_gate("rx", theta).matrix, expected)


def test_u3_specialises_to_known_gates():
    # u3(pi, 0, pi) == X up to the standard convention (exactly X here).
    assert np.allclose(get_gate("u3", np.pi, 0.0, np.pi).matrix, get_gate("x").matrix, atol=1e-12)
    # u3(0, 0, lam) == phase gate
    assert np.allclose(get_gate("u3", 0.0, 0.0, 0.4).matrix, get_gate("p", 0.4).matrix)


def test_gate_names_case_insensitive():
    assert get_gate("H") is get_gate("h")


def test_same_params_hit_cache_different_params_do_not():
    assert get_gate("rz", 0.5) is get_gate("rz", 0.5)
    assert get_gate("rz", 0.5) is not get_gate("rz", 0.6)


def test_gate_cache_is_bounded():
    from repro.gates import registry

    for i in range(registry._GATE_CACHE_MAX + 50):
        get_gate("rz", 1e-9 * i)
    assert len(registry._GATE_CACHE) <= registry._GATE_CACHE_MAX


def test_unknown_gate_raises_circuit_error():
    with pytest.raises(CircuitError):
        get_gate("nope")


def test_wrong_param_count_raises():
    with pytest.raises(CircuitError):
        get_gate("rz")
    with pytest.raises(CircuitError):
        get_gate("h", 0.1)


def test_register_gate_rejects_duplicates_and_accepts_new():
    with pytest.raises(CircuitError):
        register_gate("x", 1, 0, lambda: np.eye(2))

    register_gate("test_only_sx", 1, 0, lambda: np.array(
        [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex) / 2)
    gate = get_gate("test_only_sx")
    assert gate.is_unitary()
    assert np.allclose(gate.matrix @ gate.matrix, get_gate("x").matrix)
