#!/usr/bin/env python
"""Fork-safety lint for the process-parallel layers.

:mod:`repro.service` ships work to a ``ProcessPoolExecutor``; on POSIX
the default start method is ``fork``, which silently clones parent
state into every worker.  Three bug classes survive review easily and
are miserable to debug after the fact, so this tool blocks them with an
AST walk (no imports are executed), mirroring ``check_layers.py``:

``fork-module-rng``
    A module-level RNG instance (``np.random.default_rng(...)``,
    ``random.Random(...)``, ``np.random.RandomState(...)``) is cloned
    into each forked worker, so all workers draw the *same* stream —
    statistics silently correlate.  RNGs must be created per task from
    spawned seeds (:func:`repro.utils.spawn_seeds`).

``fork-closure-task``
    A lambda or nested function submitted to ``pool.submit`` /
    ``run_tasks`` cannot be pickled; it fails at runtime with a
    transport error that points at pickle, not at the author.  Task
    functions must be module-level.

``fork-lock-held``
    Submitting work (``.submit(...)`` / ``run_tasks(...)``) while a
    lock is held: if the pool ever forks at that moment, the child
    inherits the locked lock with no owner thread to release it —
    a deadlock that only reproduces under load.  Creating or resizing
    the executor under a lock is fine (and ``service.pool.get_pool``
    deliberately does); *submission* under a lock is the hazard.

Exit status is non-zero when any violation is found; CI runs this as a
blocking step over ``src/repro/service`` and ``src/repro/plan``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

ROOT = Path(__file__).resolve().parent.parent

#: Directories scanned by default: the layers whose code runs on both
#: sides of a fork boundary.
DEFAULT_SCAN = ("src/repro/service", "src/repro/plan")

#: Callable names that construct stateful RNGs when called.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "Random"}

#: Attribute names that submit work to an executor.
_SUBMIT_ATTRS = {"submit"}

#: Bare function names that submit work to the shared pool.
_SUBMIT_NAMES = {"run_tasks"}


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_rng_constructor_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _terminal_name(node.func) in _RNG_CONSTRUCTORS
    )


def _looks_like_lock(node: ast.AST) -> bool:
    """Whether a ``with`` context expression is plausibly a lock."""
    name = _terminal_name(node)
    if name is None and isinstance(node, ast.Call):
        name = _terminal_name(node.func)
    return name is not None and "lock" in name.lower()


def _is_submit_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in _SUBMIT_ATTRS
    if isinstance(node.func, ast.Name):
        return node.func.id in _SUBMIT_NAMES
    return False


def _submitted_callable(node: ast.Call) -> Optional[ast.AST]:
    """The task-function argument of a submit-style call, if present."""
    return node.args[0] if node.args else None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path) -> None:
        self.path = path
        self.violations: List[str] = []
        self._function_stack: List[ast.AST] = []
        self._local_defs: List[set] = []
        self._lock_depth = 0

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            f"{self.path}:{node.lineno}: [{code}] {message}"
        )

    # -- fork-module-rng -------------------------------------------------
    def _check_module_rng(self, value: Optional[ast.AST]) -> None:
        if value is None or self._function_stack:
            return
        for node in ast.walk(value):
            if _is_rng_constructor_call(node):
                self._flag(
                    node,
                    "fork-module-rng",
                    "module-level RNG instance is cloned into every "
                    "forked worker (all workers draw the same stream); "
                    "create RNGs per task from spawned seeds",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_module_rng(node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_module_rng(node.value)
        self.generic_visit(node)

    # -- scope tracking --------------------------------------------------
    def _visit_function(self, node: ast.AST, body: Sequence[ast.stmt]) -> None:
        if self._function_stack:
            # A def nested inside a function: its name is fork-unsafe as
            # a task payload within the enclosing scope.
            self._local_defs[-1].add(node.name)  # type: ignore[attr-defined]
        self._function_stack.append(node)
        self._local_defs.append(set())
        for child in body:
            self.visit(child)
        self._local_defs.pop()
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.body)

    # -- fork-lock-held + fork-closure-task ------------------------------
    def _visit_with(self, node) -> None:
        locky = any(
            _looks_like_lock(item.context_expr) for item in node.items
        )
        if locky:
            self._lock_depth += 1
        self.generic_visit(node)
        if locky:
            self._lock_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_submit_call(node):
            if self._lock_depth:
                self._flag(
                    node,
                    "fork-lock-held",
                    "work submitted to the pool while a lock is held; "
                    "a fork at this moment clones a locked lock with "
                    "no owner into the child (deadlock)",
                )
            task = _submitted_callable(node)
            if isinstance(task, ast.Lambda):
                self._flag(
                    node,
                    "fork-closure-task",
                    "lambda submitted as a worker task cannot be "
                    "pickled; use a module-level function",
                )
            elif (
                isinstance(task, ast.Name)
                and self._local_defs
                and any(task.id in defs for defs in self._local_defs)
            ):
                self._flag(
                    node,
                    "fork-closure-task",
                    f"nested function {task.id!r} submitted as a worker "
                    f"task cannot be pickled; move it to module level",
                )
        self.generic_visit(node)


def iter_modules(paths: Sequence[Path]) -> Iterator[Path]:
    for base in paths:
        if base.is_file():
            yield base
        else:
            yield from sorted(base.rglob("*.py"))


def check(paths: Sequence[Path]) -> List[str]:
    violations: List[str] = []
    for path in iter_modules(paths):
        tree = ast.parse(path.read_text(), filename=str(path))
        linter = _Linter(path)
        linter.visit(tree)
        violations.extend(linter.violations)
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(a) for a in args] if args else [
        ROOT / rel for rel in DEFAULT_SCAN
    ]
    for path in paths:
        if not path.exists():
            print(f"fork-safety lint: no such path {path}", file=sys.stderr)
            return 2
    violations = check(paths)
    if violations:
        print(
            f"fork-safety lint: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    count = sum(1 for _ in iter_modules(paths))
    print(f"fork-safety lint: {count} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
