#!/usr/bin/env python
"""Layering lint: enforce the repro module DAG with an AST walk.

The package docstring of :mod:`repro` promises a strict layering — each
layer imports only the layers above it.  That promise is cheap to break
silently: one convenience import in a low layer and suddenly ``repro.circuit``
drags in a simulation backend.  This tool parses every module under
``src/repro`` (no imports are executed), extracts the ``repro.*`` imports,
and checks them against the rank table below.

Rules
-----
- A *module-level* import must target a layer of rank <= the importer's
  rank (equal rank means "same layer", i.e. intra-package imports).
- A *function-level* (lazy) import may point upward only when the
  ``(importer layer, imported layer)`` pair is explicitly whitelisted.
  Lazy upward imports are how the IR resolves gate names without a
  compile-time dependency — but each such hole is declared here, not
  implicit.
- ``__main__`` CLI modules and the ``repro`` facade package sit at the
  top: they may import anything.
- ``typing.TYPE_CHECKING`` blocks are treated as lazy (annotation-only).

``--dot`` additionally emits the *observed* layer graph as Graphviz
source on stdout (solid edges = module-level imports, dashed = lazy;
whitelisted upward lazy edges in blue) — CI archives the rendering so
the diagram in the package docstring can be eyeballed against reality.

Exit status is non-zero when any violation is found; CI runs this as a
blocking step.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

SRC = Path(__file__).resolve().parent.parent / "src"

# Layer rank table, lowest (most fundamental) first.  Longest-prefix match:
# repro.execution.options sits *below* the simulation stack (it is plain
# configuration data), while the rest of repro.execution sits near the top.
RANKS: List[Tuple[str, int]] = [
    ("repro.utils", 0),
    ("repro.circuit", 1),
    ("repro.gates", 2),
    ("repro.noise", 3),
    ("repro.transpile", 4),
    ("repro.execution.options", 5),
    ("repro.plan", 6),
    ("repro.analysis", 7),
    ("repro.sim", 8),
    ("repro.observables", 9),
    ("repro.sampling", 10),
    ("repro.execution", 11),
    ("repro.service", 12),
    ("repro.bench", 13),
]

# CLI entry points and the facade package re-export the world by design.
TOP_RANK = 99

# Declared lazy upward imports: (importer layer, imported layer).  Each is a
# deliberate inversion, documented where it happens:
# - repro.circuit -> repro.gates: convenience builders (Circuit.h, .cx, ...)
#   resolve through the gate registry at call time.
# - repro.plan -> repro.sim: compile_plan(circuit) resolves a backend name
#   through the backend registry at call time.
# - repro.execution -> repro.service: execute(..., workers=N) hands off to
#   the worker pool at call time.
# - repro.transpile -> repro.analysis: PassManager.run(certify=True) proves
#   each rewrite through the certifier at call time; uncertified runs never
#   import it.
LAZY_WHITELIST = {
    ("repro.circuit", "repro.gates"),
    ("repro.plan", "repro.sim"),
    ("repro.execution", "repro.service"),
    ("repro.transpile", "repro.analysis"),
}


def module_name(path: Path) -> str:
    """Dotted module name of ``path`` relative to ``src``."""
    relative = path.relative_to(SRC).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def layer_of(module: str) -> Optional[Tuple[str, int]]:
    """(layer name, rank) by longest prefix, or None for non-repro."""
    if module == "repro" or module.endswith(".__main__"):
        return (module, TOP_RANK)
    best: Optional[Tuple[str, int]] = None
    for prefix, rank in RANKS:
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, rank)
    return best


class _ImportCollector(ast.NodeVisitor):
    """Collect repro imports, tagging each as module-level or lazy."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.package = module.rsplit(".", 1)[0] if "." in module else module
        # (imported module, lineno, lazy?)
        self.imports: List[Tuple[str, int, bool]] = []
        self._depth = 0  # function nesting; >0 means lazy
        self._type_checking = 0

    @property
    def _lazy(self) -> bool:
        return self._depth > 0 or self._type_checking > 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_If(self, node: ast.If) -> None:
        test = ast.dump(node.test)
        if "TYPE_CHECKING" in test:
            self._type_checking += 1
            self.generic_visit(node)
            self._type_checking -= 1
        else:
            self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                self.imports.append((alias.name, node.lineno, self._lazy))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import: resolve against the package
            base = self.package.split(".")
            base = base[: len(base) - (node.level - 1)]
            target = ".".join(base + ([node.module] if node.module else []))
        else:
            target = node.module or ""
        if target == "repro" or target.startswith("repro."):
            self.imports.append((target, node.lineno, self._lazy))


def iter_modules() -> Iterator[Path]:
    yield from sorted((SRC / "repro").rglob("*.py"))


def check() -> List[str]:
    violations: List[str] = []
    for path in iter_modules():
        module = module_name(path)
        importer = layer_of(module)
        if importer is None:
            violations.append(f"{path}: module {module!r} has no layer rank")
            continue
        importer_layer, importer_rank = importer
        if importer_rank == TOP_RANK:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        collector = _ImportCollector(module)
        collector.visit(tree)
        for imported, lineno, lazy in collector.imports:
            target = layer_of(imported)
            if target is None:
                violations.append(
                    f"{path}:{lineno}: import of unranked module {imported!r}"
                )
                continue
            target_layer, target_rank = target
            if target_rank == TOP_RANK:
                violations.append(
                    f"{path}:{lineno}: {module} imports the facade/CLI "
                    f"module {imported} (rank inversion)"
                )
                continue
            if target_rank <= importer_rank:
                continue
            if lazy and (importer_layer, target_layer) in LAZY_WHITELIST:
                continue
            kind = "lazy import" if lazy else "module-level import"
            violations.append(
                f"{path}:{lineno}: {kind} of {imported} "
                f"({target_layer}, rank {target_rank}) from {module} "
                f"({importer_layer}, rank {importer_rank}) inverts the "
                f"layering"
                + (
                    ""
                    if not lazy
                    else " and is not in the lazy whitelist"
                )
            )
    return violations


def collect_edges() -> List[Tuple[str, str, bool]]:
    """Observed (importer layer, imported layer, lazy?) edges, deduped.

    Intra-layer imports and facade/CLI importers are omitted — the graph
    shows the cross-layer structure the docstring diagram promises.
    """
    edges = set()
    for path in iter_modules():
        module = module_name(path)
        importer = layer_of(module)
        if importer is None or importer[1] == TOP_RANK:
            continue
        collector = _ImportCollector(module)
        collector.visit(ast.parse(path.read_text(), filename=str(path)))
        for imported, _, lazy in collector.imports:
            target = layer_of(imported)
            if target is None or target[1] == TOP_RANK:
                continue
            if target[0] == importer[0]:
                continue
            # A module-level edge subsumes a lazy one between the same
            # pair; keep the strongest form only.
            if not lazy:
                edges.discard((importer[0], target[0], True))
            if (importer[0], target[0], False) not in edges:
                edges.add((importer[0], target[0], lazy))
    return sorted(edges)


def dot() -> str:
    """The observed layer graph as Graphviz source."""
    lines = [
        "digraph repro_layers {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
        '  edge [fontname="monospace", fontsize=9];',
    ]
    for layer, rank in RANKS:
        lines.append(f'  "{layer}" [label="{layer}\\nrank {rank}"];')
    for importer, target, lazy in collect_edges():
        attrs = []
        if lazy:
            attrs.append("style=dashed")
        if (importer, target) in LAZY_WHITELIST:
            attrs.append("color=blue")
            attrs.append('label="lazy"')
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{importer}" -> "{target}"{suffix};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    emit_dot = "--dot" in args
    if emit_dot:
        args.remove("--dot")
    if args:
        print(f"usage: check_layers.py [--dot] (got {args})", file=sys.stderr)
        return 2
    violations = check()
    if violations:
        print(f"layering lint: {len(violations)} violation(s)", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    if emit_dot:
        sys.stdout.write(dot())
        return 0
    count = sum(1 for _ in iter_modules())
    print(f"layering lint: {count} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
